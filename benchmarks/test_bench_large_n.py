"""Large-``n`` benchmarks: the implicit engine at (towards-)production scale.

The enumeration engines verify the paper's *formulas* at ``n ≈ 30``; these
benchmarks verify its *asymptotics*.  Closed-form sweeps
(:mod:`repro.analysis.asymptotics`) reproduce the Section 4–5 comparison up
to ``n = 10^4`` — load exponents ``≈ -1/2`` for the load-optimal families,
``1 - log_4 3`` for RT, the threshold/grid availability dichotomy — and the
workload engines run crash scenarios on
:class:`~repro.core.quorum_system.ImplicitQuorumSystem` deployments whose
quorum families are never enumerated (M-Grid at ``side = 64`` has
``C(64, 1)^2 = 4096`` quorums for ``b = 0`` but ``> 10^7`` already at
``b = 3``, and the sweep sizes reach families of ``> 10^{13}``).

``REPRO_BENCH_LARGE_N`` scales the workload-engine benchmark (default 4096;
CI's docs job smoke-runs it at 256).  Sweeps always run to ``n = 10^4`` —
they are closed-form and cost milliseconds.
"""

from __future__ import annotations

import math
import os
import time

import numpy as np

from conftest import format_table

from repro import ImplicitQuorumSystem, MGrid, analytic_failure_probability, analytic_load
from repro.analysis.asymptotics import (
    fit_exponential_decay,
    section45_comparison,
    sweep,
)
from repro.simulation import FaultScenario, run_event_workload, run_workload

#: Universe size of the workload-engine run (a perfect square).
LARGE_N = int(os.environ.get("REPRO_BENCH_LARGE_N", "4096"))

#: Decades the closed-form sweeps cover.
SWEEP_SIZES = (64, 256, 1024, 4096, 10000)


def test_section45_load_exponents(benchmark):
    """Load scaling across decades: the Section 4–5 comparison as fitted exponents."""
    comparison = benchmark.pedantic(
        lambda: section45_comparison(SWEEP_SIZES, p=0.1, b=1), rounds=1, iterations=1
    )

    # The paper's asymptotic load column, as measured exponents.
    expectations = {
        "Threshold": (-0.05, 0.0),  # L -> 1/2: flat
        "Grid": (-0.55, -0.42),  # Theta(1/sqrt(n))
        "M-Grid": (-0.55, -0.42),
        "M-Path": (-0.55, -0.42),
        "RT(4,3)": (-0.25, -0.15),  # n^-(1 - log_4 3) = n^-0.2075
    }
    for name, (low, high) in expectations.items():
        fit = comparison[name].load_fit
        assert low <= fit.exponent <= high, (name, fit)
        assert fit.r_squared > 0.7, (name, fit)
    # RT's exponent is exactly 1 - log_4(3); the fit should nail it.
    rt_exponent = math.log(3, 4) - 1.0
    assert abs(comparison["RT(4,3)"].load_fit.exponent - rt_exponent) < 0.01

    # Availability dichotomy (Table 2's asymptotic Fp column).
    assert comparison["Threshold"].availability_trend == "decaying"
    assert comparison["RT(4,3)"].availability_trend == "decaying"
    assert comparison["Grid"].availability_trend == "degrading"
    assert comparison["M-Grid"].availability_trend == "degrading"

    print("\nSection 4-5 comparison across n =", SWEEP_SIZES)
    print(
        format_table(
            ["family", "load exponent", "r^2", "Fp trend", "Fp at n=10^4"],
            [
                [
                    name,
                    f"{fam.load_fit.exponent:+.3f}",
                    f"{fam.load_fit.r_squared:.4f}",
                    fam.availability_trend,
                    f"{fam.points[-1].failure_probability:.3e}",
                ]
                for name, fam in comparison.items()
            ],
        )
    )


def test_availability_decay_fits(benchmark):
    """Threshold/RT availability decays exponentially; fitted rates are positive."""

    def evaluate():
        # p near enough to 1/2 that Fp stays representable across the range.
        threshold_points = sweep("Threshold", (64, 144, 256, 400), b=1, p=0.25)
        threshold_fit = fit_exponential_decay(
            [pt.n for pt in threshold_points],
            [pt.failure_probability for pt in threshold_points],
        )
        # RT(4,3) decays like exp(-Omega(n^gamma)), gamma = log_4 2 = 1/2
        # (Proposition 5.7: MT = 2^h = n^(1/2) for k=4, l=3).
        rt_points = sweep("RT(4,3)", (64, 256, 1024, 4096), b=1, p=0.2)
        rt_fit = fit_exponential_decay(
            [pt.n for pt in rt_points],
            [pt.failure_probability for pt in rt_points],
            size_exponent=0.5,
        )
        return threshold_points, threshold_fit, rt_points, rt_fit

    threshold_points, threshold_fit, rt_points, rt_fit = benchmark.pedantic(
        evaluate, rounds=1, iterations=1
    )
    assert threshold_fit.rate > 0.0 and threshold_fit.r_squared > 0.99
    assert rt_fit.rate > 0.0 and rt_fit.r_squared > 0.95
    print(
        f"\nThreshold Fp ~ exp(-{threshold_fit.rate:.3f} n)  (r^2={threshold_fit.r_squared:.5f})\n"
        f"RT(4,3)   Fp ~ exp(-{rt_fit.rate:.3f} sqrt(n))  (r^2={rt_fit.r_squared:.5f})"
    )


def test_implicit_measures_at_ten_thousand(benchmark):
    """Closed-form measures and a vectorised run at n = 10^4 (never enumerated)."""
    side = 100
    base = MGrid(side, 3)  # family size C(100, 2)^2 ≈ 2.45e7 — enumeration is out

    def evaluate():
        implicit = ImplicitQuorumSystem(base, num_samples=512, seed=20)
        load = analytic_load(implicit).load
        availability = analytic_failure_probability(implicit, 0.001).value
        started = time.perf_counter()
        result = run_workload(
            implicit, b=3, num_operations=2000, rng=np.random.default_rng(8)
        )
        elapsed = time.perf_counter() - started
        return implicit, load, availability, result, elapsed

    implicit, load, availability, result, elapsed = benchmark.pedantic(
        evaluate, rounds=1, iterations=1
    )
    assert implicit.n == 10_000
    assert implicit.masking_bound() >= 3  # delegated closed forms, not the sample
    assert abs(load - base.load()) < 1e-12
    assert 0.0 <= availability <= 1.0
    assert result.operations == 2000 and result.failed_operations == 0
    assert result.is_consistent
    # Fault-free measured load sits near the sampled strategy's induced load,
    # which is within a small factor of L(Q) ~ 4/sqrt(n).
    assert result.empirical_load <= 3.0 * load
    print(
        f"\nn=10^4 M-Grid(b=3): L={load:.4f}, Fp(0.001)={availability:.3e}, "
        f"engine {result.operations} ops in {elapsed:.2f}s "
        f"(measured load {result.empirical_load:.4f})"
    )


def test_sampled_workload_crash_run_large_n(benchmark):
    """Acceptance: a crash-scenario run at n = LARGE_N with load within 3x of 1/sqrt(n).

    The deployment is an implicit M-Grid(b=0) driven by the sampled-LP
    strategy (:meth:`ImplicitQuorumSystem.sampled_optimal_strategy` — the LP
    over the frozen sample rebalances away the i.i.d. sampling noise); a few
    servers crash and the engine's failure-detector steering keeps every
    operation succeeding while the busiest-server frequency stays within 3x
    of the Corollary 4.2 scale ``1/sqrt(n)``.
    """
    side = math.isqrt(LARGE_N)
    assert side * side == LARGE_N, "REPRO_BENCH_LARGE_N must be a perfect square"
    base = MGrid(side, 0)
    crash_rng = np.random.default_rng(1)
    # Scale the crash count with n: each crashed cell disables a whole
    # row/column pair for the b=0 M-Grid, so the fraction matters.
    num_crashed = max(1, LARGE_N // 1024)
    crashed = frozenset(
        (int(row), int(column))
        for row, column in crash_rng.integers(side, size=(num_crashed, 2))
    )

    def evaluate():
        implicit = ImplicitQuorumSystem(base, num_samples=32 * side, seed=42)
        strategy = implicit.sampled_optimal_strategy()
        started = time.perf_counter()
        result = run_workload(
            implicit,
            b=0,
            num_operations=8 * LARGE_N,
            scenario=FaultScenario(crashed=crashed),
            strategy=strategy,
            rng=np.random.default_rng(5),
        )
        elapsed = time.perf_counter() - started
        return implicit, strategy, result, elapsed

    implicit, strategy, result, elapsed = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    reference = 1.0 / math.sqrt(LARGE_N)
    assert result.operations == 8 * LARGE_N
    assert result.failed_operations == 0  # steering rides out the crashes
    assert result.is_consistent
    # The acceptance bound: measured load within 3x of 1/sqrt(n).
    assert result.empirical_load <= 3.0 * reference, (
        result.empirical_load,
        reference,
    )
    # And the sampled-LP strategy itself sits essentially at L(Q).
    assert strategy.induced_system_load(implicit.universe) <= 1.5 * base.load()
    throughput = result.operations / max(elapsed, 1e-9)
    print(
        f"\ncrash run at n={LARGE_N}: {result.operations} ops in {elapsed:.2f}s "
        f"({throughput:,.0f} ops/s), measured load {result.empirical_load:.5f} "
        f"= {result.empirical_load / reference:.2f} x 1/sqrt(n)"
    )


def test_event_engine_implicit_kilonode(benchmark):
    """The event-driven protocol core accepts implicit systems (n = 1024)."""
    implicit = ImplicitQuorumSystem(MGrid(32, 1), num_samples=256, seed=11)

    def evaluate():
        started = time.perf_counter()
        result = run_event_workload(
            implicit,
            b=1,
            num_clients=8,
            operations_per_client=10,
            rng=np.random.default_rng(2),
        )
        return result, time.perf_counter() - started

    result, elapsed = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    assert result.operations == 80
    assert result.failed_operations == 0
    assert result.check is not None and result.check.ok
    print(
        f"\nevent core at n=1024: {result.operations} concurrent ops in {elapsed:.2f}s, "
        f"p99 latency {result.latency_p99:.3f}, measured load {result.empirical_load:.4f}"
    )
