"""Benchmark regenerating Table 2: properties of all six constructions.

The paper's Table 2 lists, for Threshold, Grid, M-Grid, RT(k,l), boostFPP and
M-Path: the largest maskable ``b``, the resilience ``f``, the load ``L`` and
the asymptotic behaviour of ``Fp``.  The benchmark evaluates all six at a
concrete size and checks the *shape* of every column:

* masking: Threshold masks Theta(n), the grid-shaped systems Theta(sqrt(n));
* resilience: Threshold >> grid-shaped systems;
* load: Threshold stuck at >= 1/2, the three load-optimal systems within a
  small factor of sqrt((2b+1)/n);
* availability: Grid and M-Grid poor, Threshold / RT / M-Path good.

The second benchmark sweeps ``n`` to reproduce the asymptotic column
(``Fp -> 1`` for Grid/M-Grid, ``Fp -> 0`` for the others below threshold).
"""

from __future__ import annotations


from conftest import format_table

from repro.analysis import availability_trend, table2


def test_table2_at_n256(benchmark, rng):
    """Regenerate Table 2 at n = 256, p = 1/8."""
    rows = benchmark(table2, 256, 0.125, rng=rng)

    by_name = {row.system: row for row in rows}
    assert set(by_name) == {"Threshold", "Grid", "M-Grid", "RT(4,3)", "boostFPP", "M-Path"}

    # Masking column: Threshold masks Theta(n), grid-shaped systems Theta(sqrt n).
    assert by_name["Threshold"].max_b == 63
    assert by_name["M-Grid"].max_b <= 16
    assert by_name["M-Path"].max_b <= 16
    assert by_name["Grid"].max_b <= 6

    # Resilience column: Threshold has the largest f by far.
    assert by_name["Threshold"].resilience > 2 * by_name["M-Grid"].resilience

    # Load column: Threshold >= 1/2, the load-optimal systems near the bound.
    assert by_name["Threshold"].load >= 0.5
    for name in ("M-Grid", "boostFPP", "M-Path"):
        assert by_name[name].load <= 2.5 * by_name[name].load_lower_bound

    # Availability column: Grid/M-Grid poor, Threshold/RT excellent.
    assert by_name["Grid"].crash_probability > 0.3
    assert by_name["M-Grid"].crash_probability > 0.3
    assert by_name["Threshold"].crash_probability < 1e-6
    assert by_name["RT(4,3)"].crash_probability < 1e-3

    printable = [
        [
            row.system,
            row.n,
            row.max_b,
            row.resilience,
            f"{row.load:.3f}",
            f"{row.load_lower_bound:.3f}",
            f"{row.crash_probability:.2e}",
            "yes" if row.load_optimal else "no",
            "yes" if row.availability_optimal else "no",
        ]
        for row in rows
    ]
    print("\nTable 2 reproduction (n = 256, p = 1/8):")
    print(format_table(
        ["system", "n", "max b", "f", "L", "sqrt((2b+1)/n)", "Fp", "L-opt", "A-opt"],
        printable,
    ))


def test_table2_availability_asymptotics(benchmark, rng):
    """The asymptotic Fp column: Grid-shaped systems degrade, the rest improve."""

    sizes = [25, 81, 169]
    rt_sizes = [16, 64, 256]

    def sweep():
        return {
            "M-Grid": availability_trend("M-Grid", sizes, 0.2, rng=rng),
            "Grid": availability_trend("Grid", sizes, 0.2, rng=rng),
            "Threshold": availability_trend("Threshold", sizes, 0.2, rng=rng),
            "RT(4,3)": availability_trend("RT(4,3)", rt_sizes, 0.15, rng=rng),
            "boostFPP": availability_trend("boostFPP", sizes, 0.15, rng=rng),
            "M-Path": availability_trend("M-Path", sizes, 0.3, rng=rng),
        }

    trends = benchmark.pedantic(sweep, rounds=1, iterations=1)

    assert trends["M-Grid"][-1] > trends["M-Grid"][0]          # -> 1
    assert trends["Grid"][-1] > trends["Grid"][0]              # -> 1
    assert trends["Threshold"][-1] < trends["Threshold"][0]    # -> 0
    assert trends["RT(4,3)"][-1] < trends["RT(4,3)"][0]        # -> 0
    assert trends["boostFPP"][-1] < trends["boostFPP"][0]      # -> 0
    assert trends["M-Path"][-1] <= trends["M-Path"][0] + 0.05  # -> 0 (Monte-Carlo noise)

    rows = [
        [name] + [f"{value:.3f}" for value in values] for name, values in trends.items()
    ]
    print("\nFp trends as n grows (Table 2, asymptotic column):")
    print(format_table(["system", "small n", "medium n", "large n"], rows))
