"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables, figures or in-text
numerical claims (see DESIGN.md section 4 for the experiment index and
EXPERIMENTS.md for the recorded paper-vs-measured values).  Benchmarks use a
fixed random seed so that the reported numbers are reproducible run to run.
"""

from __future__ import annotations

import platform

import numpy as np
import pytest

#: The shared artefact contract: every ``BENCH_*.json`` at the repository
#: root carries this schema version plus a ``metadata`` header from
#: :func:`run_metadata`.  Bump it when the header shape changes.
ARTIFACT_SCHEMA_VERSION = 2

#: Keys every artefact's ``metadata`` header must carry.
METADATA_KEYS = ("generator", "python", "numpy", "platform")


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for Monte-Carlo benchmarks."""
    return np.random.default_rng(20240614)


def run_metadata(generator: str) -> dict:
    """Environment stamp shared by the benchmark artefacts (JSON-stable)."""
    return {
        "generator": generator,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
    }


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Render a small ASCII table (used by benchmarks to print paper-style rows)."""
    widths = [
        max(len(str(header)), max((len(str(row[i])) for row in rows), default=0))
        for i, header in enumerate(headers)
    ]
    def render_row(values):
        return "  ".join(str(value).ljust(width) for value, width in zip(values, widths))

    lines = [render_row(headers), render_row(["-" * width for width in widths])]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)
