"""Benchmark for the adversarial / correlated / trace scenario layer.

Three seed-pinned runs, each checked against the paper's bounds and recorded
into ``BENCH_scenarios.json`` at the repository root — the first
machine-readable benchmark artefact, so CI (and future PRs) can diff the
numbers instead of re-reading log output:

* an **adaptive greedy-load adversary** on the Figure 1 M-Grid (5×5,
  ``b = 1``): the corruption trajectory, the aggregate empirical load and
  its conformance margins against the restricted-strategy envelope and the
  ``L(Q)`` lower bound;
* a **site-percolation availability cross-check**: observed failure rate
  over independent lattice draws vs the closed-form ``Fp``;
* a **diurnal open-loop trace replay**: sojourn-time percentiles and the
  queueing component that only an open-loop workload can measure.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from conftest import ARTIFACT_SCHEMA_VERSION, format_table, run_metadata

from repro import MGrid
from repro.analysis import adversarial_conformance, percolation_conformance
from repro.simulation import (
    GreedyLoadAdversary,
    StaleReadAdversary,
    TraceScenario,
    run_trace_workload,
)

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_scenarios.json"

GRID_SIDE = 5
MASKING_B = 1
SEED = 20240614


def _adversarial_payload() -> dict:
    payloads = {}
    for label, policy in (
        ("greedy-load", GreedyLoadAdversary()),
        ("stale-read", StaleReadAdversary()),
    ):
        result, report = adversarial_conformance(
            MGrid(GRID_SIDE, MASKING_B),
            b=MASKING_B,
            policy=policy,
            num_operations=800,
            rounds=8,
            seed=SEED,
        )
        report.require()
        payloads[label] = {
            "empirical_load": result.empirical_load,
            "corruption_trajectory": [
                sorted(map(str, chosen)) for chosen in result.corruption_trajectory
            ],
            "fabricated_reads": result.consistency_violations,
            "stale_reads": result.stale_reads,
            "checks": report.to_dict()["checks"],
        }
    return payloads


def _percolation_payload() -> dict:
    result, report = percolation_conformance(
        MGrid(GRID_SIDE, MASKING_B),
        p=0.15,
        phases=300,
        operations_per_phase=3,
        seed=SEED,
    )
    report.require()
    upper = report.check("failure-rate-upper")
    return {
        "p": 0.15,
        "phases": 300,
        "observed_failure_rate": upper.observed,
        "analytic_fp": upper.bound,
        "binomial_slack": upper.slack,
        "checks": report.to_dict()["checks"],
    }


def _trace_payload() -> dict:
    trace = TraceScenario(name="diurnal", period=120.0, peak_ratio=4.0, skew=1.1)
    result = run_trace_workload(
        MGrid(GRID_SIDE, MASKING_B),
        b=MASKING_B,
        trace=trace,
        num_operations=400,
        num_clients=8,
        rng=np.random.default_rng(SEED),
    )
    assert result.check is not None and result.check.ok
    return {
        "operations": result.operations,
        "arrival_rate": result.arrival_rate,
        "latency_mean": result.latency_mean,
        "latency_p50": result.latency_p50,
        "latency_p99": result.latency_p99,
        "queue_delay_mean": result.queue_delay_mean,
        "queue_delay_p99": result.queue_delay_p99,
        "empirical_load": result.empirical_load,
    }


def test_scenario_suite_conformance_artifact():
    """Run the three scenario families, require conformance, record the JSON."""
    payload = {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "metadata": run_metadata("benchmarks/test_bench_scenarios.py"),
        "system": f"mgrid(side={GRID_SIDE}, b={MASKING_B})",
        "seed": SEED,
        "adversarial": _adversarial_payload(),
        "percolation": _percolation_payload(),
        "diurnal_trace": _trace_payload(),
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")

    adversarial = payload["adversarial"]["greedy-load"]
    rows = [
        [
            "adaptive greedy-load",
            f"{adversarial['empirical_load']:.4f}",
            " / ".join(
                f"{check['metric']}:{check['bound']:.3f}"
                for check in adversarial["checks"]
                if check["metric"].startswith("load")
            ),
        ],
        [
            "percolation (p=0.15)",
            f"{payload['percolation']['observed_failure_rate']:.4f}",
            f"Fp={payload['percolation']['analytic_fp']:.4f}"
            f" ± {payload['percolation']['binomial_slack']:.4f}",
        ],
        [
            "diurnal trace",
            f"p99={payload['diurnal_trace']['latency_p99']:.2f}",
            f"queue p99={payload['diurnal_trace']['queue_delay_p99']:.2f}",
        ],
    ]
    print()
    print(format_table(["scenario", "observed", "bound / detail"], rows))
    print(f"\nrecorded -> {ARTIFACT.name}")

    # The artefact is the contract: it must exist and round-trip as JSON.
    recorded = json.loads(ARTIFACT.read_text())
    assert recorded["schema_version"] == ARTIFACT_SCHEMA_VERSION
    assert recorded["metadata"]["generator"].endswith("test_bench_scenarios.py")
    assert recorded["adversarial"]["greedy-load"]["fabricated_reads"] == 0
    assert recorded["adversarial"]["stale-read"]["stale_reads"] == 0
    assert all(
        check["ok"]
        for section in ("greedy-load", "stale-read")
        for check in recorded["adversarial"][section]["checks"]
    )
