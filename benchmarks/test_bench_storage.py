"""Benchmark for the durability layer: fsync policies and recovery cost.

The write-ahead log (:mod:`repro.storage`) sits on every accepted write's
ack path, so its two tunables have a direct price:

* the **fsync policy** trades machine-crash durability for append
  throughput — ``always`` forces the disk on every record, ``interval:N``
  amortises one fsync over ``N`` records, ``never`` leaves the disk to the
  OS (process crashes are still survivable, because every append is flushed
  to the kernel);
* the **log length** at crash time is the recovery bill — a restarted
  replica replays the whole surviving log, so compaction frequency bounds
  restart latency.

This benchmark measures both curves and records ``BENCH_storage.json`` at
the repository root (same artefact contract as ``BENCH_scenarios.json`` /
``BENCH_membership.json``): per-policy append throughput over a fixed
record mix, and recovery wall-time as the log grows from hundreds to
thousands of records.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import ARTIFACT_SCHEMA_VERSION, format_table, run_metadata

from repro.simulation.messages import Timestamp, ValueTimestampPair
from repro.storage import DurableStore, WriteAheadLog, scan_wal

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_storage.json"

SEED = 20240614
REPEATS = 3
APPENDS = 512
FSYNC_POLICIES = ("always", "interval:32", "never")
RECOVERY_LENGTHS = (256, 1024, 4096)


def _value(counter: int) -> object:
    """A representative journalled value: small structured JSON."""
    return {"op": counter, "payload": ["x" * 32, counter % 7]}


def _time_policy(tmp_path: Path, policy: str) -> dict:
    """Best-of-N wall time for APPENDS journal appends under one policy."""
    best = float("inf")
    sync_count = 0
    for repeat in range(REPEATS):
        path = tmp_path / f"wal-{policy.replace(':', '-')}-{repeat}.log"
        with WriteAheadLog(path, fsync=policy) as wal:
            start = time.perf_counter()
            for counter in range(1, APPENDS + 1):
                wal.append(Timestamp(counter, 0), _value(counter))
            elapsed = time.perf_counter() - start
            sync_count = wal.sync_count
        best = min(best, elapsed)
    return {
        "policy": policy,
        "appends": APPENDS,
        "best_seconds": best,
        "appends_per_second": APPENDS / best,
        "sync_count": sync_count,
    }


def _time_recovery(tmp_path: Path, length: int) -> dict:
    """Best-of-N recovery (open + scan + fold) of a WAL of ``length`` records.

    Compaction is disabled so the log really holds ``length`` records; the
    store is built once and re-opened REPEATS times, timing only the opens.
    """
    data_dir = tmp_path / f"recover-{length}"
    with DurableStore(data_dir, fsync="never", snapshot_every=0) as store:
        for counter in range(1, length + 1):
            store.journal(
                ValueTimestampPair(value=_value(counter), timestamp=Timestamp(counter, 0))
            )
    best = float("inf")
    recovered = 0
    for _ in range(REPEATS):
        start = time.perf_counter()
        store = DurableStore(data_dir, fsync="never", snapshot_every=0)
        elapsed = time.perf_counter() - start
        recovered = store.recovery.wal_records
        assert store.pair.timestamp == Timestamp(length, 0)
        store.close()
        best = min(best, elapsed)
    wal_bytes = scan_wal(data_dir / "wal.log").valid_bytes
    return {
        "wal_records": length,
        "recovered_records": recovered,
        "wal_bytes": wal_bytes,
        "best_seconds": best,
        "records_per_second": length / best,
    }


def test_storage_artifact(tmp_path):
    """Measure both curves and record ``BENCH_storage.json``."""
    payload = {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "metadata": run_metadata("benchmarks/test_bench_storage.py"),
        "system": "repro.storage (write-ahead log + snapshot store)",
        "seed": SEED,
        "repeats": REPEATS,
        "fsync_throughput": [_time_policy(tmp_path, policy) for policy in FSYNC_POLICIES],
        "recovery": [_time_recovery(tmp_path, length) for length in RECOVERY_LENGTHS],
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        [
            timing["policy"],
            timing["appends"],
            timing["sync_count"],
            f"{timing['appends_per_second']:,.0f}/s",
        ]
        for timing in payload["fsync_throughput"]
    ]
    print()
    print(format_table(["fsync policy", "appends", "fsyncs", "throughput"], rows))
    rows = [
        [
            timing["wal_records"],
            timing["wal_bytes"],
            f"{timing['best_seconds'] * 1e3:.3f} ms",
            f"{timing['records_per_second']:,.0f}/s",
        ]
        for timing in payload["recovery"]
    ]
    print()
    print(format_table(["wal records", "bytes", "recovery", "replay rate"], rows))
    print(f"\nrecorded -> {ARTIFACT.name}")

    recorded = json.loads(ARTIFACT.read_text())
    assert recorded["schema_version"] == ARTIFACT_SCHEMA_VERSION
    by_policy = {row["policy"]: row for row in recorded["fsync_throughput"]}
    assert set(by_policy) == set(FSYNC_POLICIES)
    # "always" pays one fsync per append; the others amortise or skip.
    assert by_policy["always"]["sync_count"] >= APPENDS
    assert by_policy["interval:32"]["sync_count"] <= APPENDS // 32 + 1
    assert by_policy["never"]["sync_count"] <= 1  # just the opening magic
    assert all(row["best_seconds"] > 0.0 for row in recorded["fsync_throughput"])
    # Recovery replays every surviving record, and cost grows with length.
    for row in recorded["recovery"]:
        assert row["recovered_records"] == row["wal_records"]
        assert row["best_seconds"] > 0.0
    assert (
        recorded["recovery"][-1]["best_seconds"] >= recorded["recovery"][0]["best_seconds"]
    )
