"""Benchmarks for the load lower bound (Theorem 4.1 / Corollary 4.2).

Reproduces the in-text claims that M-Grid, boostFPP and M-Path are load
optimal (within a constant of ``sqrt((2b+1)/n)``) while Threshold and RT are
not, and runs the LP-vs-closed-form ablation on every fair construction: the
exact linear program must agree with the Proposition 3.9 value ``c/n`` to
numerical precision.
"""

from __future__ import annotations

import pytest

from conftest import format_table

from repro import (
    BoostedFPP,
    MGrid,
    MPath,
    RecursiveThreshold,
    exact_load,
    load_lower_bound,
    masking_threshold,
)
from repro.constructions.grid import MaskingGrid


def _load_table(n_side: int = 16):
    """Build all six constructions near n = n_side^2 and tabulate load vs bound."""
    n = n_side * n_side
    entries = []
    systems = [
        ("Threshold", masking_threshold(n, (n - 1) // 4), (n - 1) // 4),
        ("Threshold b=1", masking_threshold(n, 1), 1),
        ("Grid", MaskingGrid(n_side, (n_side - 1) // 3), (n_side - 1) // 3),
        ("M-Grid", MGrid(n_side, (n_side - 1) // 2), (n_side - 1) // 2),
        ("RT(4,3)", RecursiveThreshold(4, 3, 4), RecursiveThreshold(4, 3, 4).masking_bound()),
        ("boostFPP", BoostedFPP(3, (n // 13 - 1) // 4), (n // 13 - 1) // 4),
        ("M-Path", MPath(n_side, 7), 7),
    ]
    for name, system, b in systems:
        bound = load_lower_bound(system.n, b)
        entries.append((name, system, b, system.load(), bound, system.load() / bound))
    return entries


def test_load_vs_corollary_4_2(benchmark):
    """Every construction's load against the universal lower bound."""
    entries = benchmark(_load_table, 16)

    ratios = {name: ratio for name, _, _, _, _, ratio in entries}
    # Load-optimal systems: within a small constant of the bound.
    assert ratios["M-Grid"] <= 2.0
    assert ratios["boostFPP"] <= 1.6
    assert ratios["M-Path"] <= 2.0
    # The remark after Corollary 4.2: Threshold is close to optimal when
    # b = Omega(n), but far from optimal for small b (its load never drops
    # below 1/2 while the bound shrinks like 1/sqrt(n)).
    assert ratios["Threshold"] <= 1.2
    assert ratios["Threshold b=1"] > 3.0
    # The bound itself is never violated.
    for _, system, b, load, bound, _ in entries:
        assert load >= bound - 1e-12

    rows = [
        [name, system.n, b, f"{load:.3f}", f"{bound:.3f}", f"{ratio:.2f}"]
        for name, system, b, load, bound, ratio in entries
    ]
    print("\nLoad vs Corollary 4.2 lower bound (n ~ 256):")
    print(format_table(["system", "n", "b", "L", "sqrt((2b+1)/n)", "ratio"], rows))


def test_ablation_lp_vs_fair_closed_form(benchmark):
    """Ablation: the exact LP equals Proposition 3.9's c/n on every fair system."""
    systems = [
        masking_threshold(13, 3),
        MGrid(7, 3),
        RecursiveThreshold(4, 3, 2),
        BoostedFPP(2, 1).to_explicit(),
        MaskingGrid(5, 1),
    ]

    def run_lps():
        return [(system, exact_load(system).load) for system in systems]

    results = benchmark(run_lps)
    rows = []
    for system, lp_value in results:
        closed_form = system.min_quorum_size() / system.n
        assert lp_value == pytest.approx(closed_form, abs=1e-6)
        rows.append([system.name, system.n, f"{lp_value:.4f}", f"{closed_form:.4f}"])

    print("\nAblation: LP-exact load vs Proposition 3.9 closed form:")
    print(format_table(["system", "n", "LP", "c/n"], rows))


def test_theorem_4_1_both_branches(benchmark):
    """Theorem 4.1's two branches: (2b+1)/c binds for small quorums, c/n for large ones."""

    def evaluate():
        small_quorums = masking_threshold(64, 1)         # c ~ n/2: c/n branch binds
        large_quorums = masking_threshold(64, 15)        # c ~ 3n/4, b large: both high
        values = []
        for system, b in ((small_quorums, 1), (large_quorums, 15)):
            c = system.min_quorum_size()
            values.append(
                (
                    system.name,
                    load_lower_bound(system.n, b, quorum_size=c),
                    (2 * b + 1) / c,
                    c / system.n,
                    system.load(),
                )
            )
        return values

    values = benchmark(evaluate)
    for name, bound, intersection_branch, size_branch, load in values:
        assert bound == pytest.approx(max(intersection_branch, size_branch))
        assert load >= bound - 1e-12

    rows = [
        [name, f"{bound:.3f}", f"{ib:.3f}", f"{sb:.3f}", f"{load:.3f}"]
        for name, bound, ib, sb, load in values
    ]
    print("\nTheorem 4.1 branches ((2b+1)/c vs c/n):")
    print(format_table(["system", "bound", "(2b+1)/c", "c/n", "actual L"], rows))
