"""Shared schema check over every recorded ``BENCH_*.json`` artefact.

The benchmark artefacts at the repository root are machine-readable
contracts: CI and future PRs diff them instead of re-reading log output.
This check pins what *all* of them must share — the
``schema_version``/``metadata`` header introduced for
``BENCH_scenarios.json`` and extended to ``BENCH_membership.json`` —
so a new artefact (or a regenerated old one) cannot silently drop the
header or fork the contract.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from conftest import ARTIFACT_SCHEMA_VERSION, METADATA_KEYS

ROOT = Path(__file__).resolve().parents[1]

#: Every artefact the suite records, with the benchmark that generates it.
EXPECTED_ARTIFACTS = {
    "BENCH_scenarios.json": "benchmarks/test_bench_scenarios.py",
    "BENCH_membership.json": "benchmarks/test_bench_membership.py",
    "BENCH_storage.json": "benchmarks/test_bench_storage.py",
}


def _artifacts() -> list[Path]:
    return sorted(ROOT.glob("BENCH_*.json"))


def test_expected_artifacts_exist():
    names = {path.name for path in _artifacts()}
    missing = set(EXPECTED_ARTIFACTS) - names
    assert not missing, f"benchmark artefacts missing from the repo root: {missing}"


@pytest.mark.parametrize("name", sorted(EXPECTED_ARTIFACTS))
def test_artifact_header_schema(name):
    """Both artefacts share the same header: version, metadata, seed."""
    path = ROOT / name
    payload = json.loads(path.read_text(encoding="utf-8"))

    assert payload["schema_version"] == ARTIFACT_SCHEMA_VERSION, (
        f"{name} is on schema {payload.get('schema_version')!r}; regenerate it "
        f"(run the suite in benchmarks/) to move it to {ARTIFACT_SCHEMA_VERSION}"
    )
    metadata = payload["metadata"]
    for key in METADATA_KEYS:
        assert key in metadata and metadata[key], f"{name} metadata lacks {key!r}"
    assert metadata["generator"] == EXPECTED_ARTIFACTS[name]
    assert isinstance(payload["seed"], int)
    assert "system" in payload


def test_no_unregistered_artifacts():
    """A new BENCH_*.json must register here to inherit the schema check."""
    unregistered = {
        path.name for path in _artifacts() if path.name not in EXPECTED_ARTIFACTS
    }
    assert not unregistered, (
        f"unregistered benchmark artefacts {unregistered}: add them to "
        "EXPECTED_ARTIFACTS in benchmarks/test_bench_artifacts.py"
    )
