"""Benchmarks for the recursive threshold systems (Section 5.2).

Reproduces Proposition 5.5 (load ``n^-(1 - log_k l)``), Proposition 5.6 (the
critical probability of the crash recurrence, 0.2324 for RT(4,3)) and
Proposition 5.7 (the doubly exponential decay ``Fp < (6p)^sqrt(n)`` for
``p < 1/6``), plus the depth sweep showing the sharp threshold behaviour.
"""

from __future__ import annotations

import math

import pytest

from conftest import format_table

from repro import RecursiveThreshold


def test_proposition_5_5_load_exponent(benchmark):
    """L(RT(4,3)) = n^-0.2075; compare against the optimal n^-0.25 at its b."""

    def evaluate():
        rows = []
        for depth in (2, 3, 4, 5):
            system = RecursiveThreshold(4, 3, depth)
            exponent = -math.log(system.load()) / math.log(system.n)
            optimal_exponent = -math.log(
                math.sqrt((2 * system.masking_bound() + 1) / system.n)
            ) / math.log(system.n)
            rows.append((depth, system.n, system.load(), exponent, optimal_exponent))
        return rows

    rows = benchmark(evaluate)
    for depth, n, load, exponent, optimal_exponent in rows:
        assert load == pytest.approx((3 / 4) ** depth)
        assert exponent == pytest.approx(1 - math.log(3, 4), abs=1e-9)
        # The remark after Proposition 5.5: the exponent is worse (smaller)
        # than the optimal ~0.25 achievable at this masking level.
        assert exponent < optimal_exponent

    print("\nRT(4,3) load exponent vs the optimal exponent at its masking level:")
    print(format_table(
        ["depth", "n", "L", "-log_n L", "optimal"],
        [[d, n, f"{l:.4f}", f"{e:.4f}", f"{o:.4f}"] for d, n, l, e, o in rows],
    ))


def test_proposition_5_6_critical_probability(benchmark):
    """The RT(4,3) recurrence has its fixed point at 0.2324 and behaves sharply around it."""

    def evaluate():
        system = RecursiveThreshold(4, 3, 6)
        critical = system.critical_probability()
        below = [RecursiveThreshold(4, 3, h).crash_probability(critical - 0.04) for h in range(1, 7)]
        above = [RecursiveThreshold(4, 3, h).crash_probability(critical + 0.04) for h in range(1, 7)]
        return critical, below, above

    critical, below, above = benchmark(evaluate)
    assert critical == pytest.approx(0.2324, abs=5e-4)
    assert below == sorted(below, reverse=True)
    assert below[-1] < 1e-2
    assert above == sorted(above)
    assert above[-1] > 0.6

    print(f"\nRT(4,3) critical probability: {critical:.4f} (paper: 0.2324)")
    print(format_table(
        ["depth", f"Fp at pc-0.04", f"Fp at pc+0.04"],
        [[h + 1, f"{b:.4f}", f"{a:.4f}"] for h, (b, a) in enumerate(zip(below, above))],
    ))


def test_proposition_5_7_decay_bound(benchmark):
    """Fp(RT(4,3)) < (6p)^sqrt(n) for p < 1/6, and the exact recurrence is optimal-shaped."""
    p = 0.1

    def evaluate():
        rows = []
        for depth in (1, 2, 3, 4, 5):
            system = RecursiveThreshold(4, 3, depth)
            exact = system.crash_probability(p)
            upper = system.crash_probability_upper_bound(p)
            lower = p ** system.min_transversal_size()
            rows.append((depth, system.n, exact, upper, lower))
        return rows

    rows = benchmark(evaluate)
    for depth, n, exact, upper, lower in rows:
        assert lower - 1e-15 <= exact <= upper + 1e-15
        assert upper == pytest.approx((6 * p) ** (2 ** depth))

    print(f"\nRT(4,3) crash probability vs the Proposition 5.7 bound (p = {p}):")
    print(format_table(
        ["depth", "n", "exact Fp", "(6p)^(2^h)", "p^MT (lower bd)"],
        [[d, n, f"{e:.3e}", f"{u:.3e}", f"{l:.3e}"] for d, n, e, u, l in rows],
    ))


def test_rt_variants(benchmark):
    """Other (k, l) choices: RT(3,2) (HQS) and RT(5,4) behave per Proposition 5.3."""

    def evaluate():
        rows = []
        for k, l, depth in ((3, 2, 4), (5, 4, 3), (4, 3, 4)):
            system = RecursiveThreshold(k, l, depth)
            rows.append(
                (
                    f"RT({k},{l}) h={depth}",
                    system.n,
                    system.min_quorum_size(),
                    system.min_intersection_size(),
                    system.min_transversal_size(),
                    system.masking_bound(),
                    system.critical_probability(),
                )
            )
        return rows

    rows = benchmark(evaluate)
    by_name = {row[0]: row for row in rows}
    # Proposition 5.3 closed forms.
    assert by_name["RT(3,2) h=4"][2:5] == (2 ** 4, 1, 2 ** 4)
    assert by_name["RT(5,4) h=3"][2:5] == (4 ** 3, 3 ** 3, 2 ** 3)
    # RT(3,2) is a regular (non-masking) family; RT(5,4) masks plenty.
    assert by_name["RT(3,2) h=4"][5] == 0
    assert by_name["RT(5,4) h=3"][5] == 7

    print("\nRT(k,l) family (Proposition 5.3 parameters and critical points):")
    print(format_table(
        ["system", "n", "c", "IS", "MT", "b", "pc"],
        [[name, n, c, i, m, b, f"{pc:.3f}"] for name, n, c, i, m, b, pc in rows],
    ))
