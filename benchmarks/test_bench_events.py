"""Benchmark for the event-driven concurrent core: latency percentiles.

Where the engine benchmark measures *throughput* (operations per wall-clock
second), this one measures what only the event-driven layer can express:
**operation latency distributions** in simulated time, across the timing
scenario suite — fault-free, slow servers, flaky links, a mid-run
crash/recover window and slow-plus-Byzantine — with p50/p90/p99 per
scenario, plus the scheduler's own event throughput (events per wall-clock
second).

Every run doubles as a correctness pass: the concurrent-history checker must
accept every history (all scenarios stay within the masking bound), which
exercises the acceptance demo — eight interleaved clients under latency,
loss, duplication and timing faults.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import format_table

from repro import ThresholdQuorumSystem
from repro.simulation import LatencyModel, run_event_workload, timing_scenario_suite

NUM_CLIENTS = 8
OPERATIONS_PER_CLIENT = 40
MASKING_B = 2


def test_latency_percentiles_across_timing_scenarios(benchmark, rng):
    """p50/p90/p99 operation latency per timing scenario, 8 interleaved clients."""
    system = ThresholdQuorumSystem(9, 7)
    suite = timing_scenario_suite(
        system.universe, b=MASKING_B, rng=rng, latency=LatencyModel.uniform(1.0, 0.5)
    )

    def run_suite():
        runs = []
        for scenario in suite:
            started = time.perf_counter()
            result = run_event_workload(
                system,
                b=MASKING_B,
                num_clients=NUM_CLIENTS,
                operations_per_client=OPERATIONS_PER_CLIENT,
                scenario=scenario,
                rng=np.random.default_rng(20240614),
            )
            elapsed = time.perf_counter() - started
            runs.append((scenario.name, result, elapsed))
        return runs

    runs = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    rows = []
    for name, result, elapsed in runs:
        # Safety holds in every timing scenario: histories check clean and
        # loads stay genuine frequencies.
        assert result.check.ok, (name, result.check.violations)
        assert result.check.concurrent_pairs > 0, f"{name}: no concurrency exercised"
        assert result.empirical_load <= 1.0
        rows.append(
            [
                name,
                f"{result.availability:.3f}",
                f"{result.latency_p50:.2f}",
                f"{result.latency_p90:.2f}",
                f"{result.latency_p99:.2f}",
                result.timeouts,
                f"{result.events_processed / elapsed:,.0f}",
            ]
        )
    print(
        f"\nEvent-driven workloads on Threshold(9, 7), {NUM_CLIENTS} clients x "
        f"{OPERATIONS_PER_CLIENT} ops (simulated-time latency units):"
    )
    print(
        format_table(
            ["scenario", "avail", "p50", "p90", "p99", "timeouts", "events/sec"], rows
        )
    )


def test_scheduler_event_throughput(benchmark):
    """Raw scheduler cost: a fault-free concurrent run's events per second."""
    system = ThresholdQuorumSystem(9, 7)

    def run_fault_free():
        started = time.perf_counter()
        result = run_event_workload(
            system,
            b=MASKING_B,
            num_clients=NUM_CLIENTS,
            operations_per_client=100,
            latency=LatencyModel.uniform(1.0, 1.0),
            retry_unvouched_reads=True,
            rng=np.random.default_rng(99),
        )
        return result, time.perf_counter() - started

    result, elapsed = benchmark.pedantic(run_fault_free, rounds=1, iterations=1)
    assert result.check.ok
    assert result.availability == 1.0
    print(
        f"\nScheduler throughput: {result.events_processed:,} events in "
        f"{elapsed:.3f}s = {result.events_processed / elapsed:,.0f} events/sec "
        f"({result.operations / elapsed:,.0f} protocol ops/sec)"
    )
