"""Benchmark for the vectorised workload scenario engine.

Measures end-to-end workload throughput (operations per second) on the
Figure 1 system — the M-Grid over a 7×7 grid masking ``b = 3`` — and compares
three execution paths:

* the **vectorised engine** on a 10⁵-operation batch,
* the **sequential reference** path (same semantics, per-operation Python
  loop over int bitmasks), and
* the **message-level legacy path** (the pre-engine simulator:
  ``ReplicatedRegister`` + ``QuorumClient`` building request/reply objects
  per delivery), on a smaller batch extrapolated to ops/sec.

The acceptance bar of the engine PR is locked in here: the vectorised engine
must deliver at least 20× the message-level path's throughput, and must agree
bit-for-bit with the sequential reference for the same seed.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import format_table

from repro import MGrid
from repro.simulation import ReplicatedRegister, run_workload

GRID_SIDE = 7
MASKING_B = 3
ENGINE_OPERATIONS = 100_000
MESSAGE_LEVEL_OPERATIONS = 4_000


def _message_level_workload(system, *, b, num_operations, rng, write_fraction=0.5):
    """The legacy per-operation driver: one message object per delivery."""
    register = ReplicatedRegister(system, b=b, rng=rng)
    clients = [register.client() for _ in range(4)]
    written = 0
    for index in range(num_operations):
        client = clients[index % len(clients)]
        if rng.random() < write_fraction or not written:
            client.write(("payload", index))
            written += 1
        else:
            client.read()


def test_engine_throughput_100k_operations(benchmark, rng, request):
    """10⁵ fault-free operations on the 7×7 M-Grid: ops/sec per execution path."""
    # The smoke pass (--benchmark-disable) checks correctness only; the
    # wall-clock speedup bar is asserted only when timing is meaningful.
    timing_enabled = not request.config.getoption("benchmark_disable")
    system = MGrid(GRID_SIDE, MASKING_B)
    # Warm the per-system caches (quorum list, incidence, strategy arrays) so
    # the timings measure the workload, not one-off setup.
    run_workload(system, b=MASKING_B, num_operations=100, rng=np.random.default_rng(0))

    def run_vectorised():
        started = time.perf_counter()
        result = run_workload(
            system,
            b=MASKING_B,
            num_operations=ENGINE_OPERATIONS,
            rng=np.random.default_rng(20240614),
        )
        elapsed = time.perf_counter() - started
        return result, elapsed

    result, vectorised_elapsed = benchmark.pedantic(run_vectorised, rounds=1, iterations=1)
    assert result.operations == ENGINE_OPERATIONS
    assert result.availability == 1.0
    assert result.consistency_violations == 0

    started = time.perf_counter()
    sequential = run_workload(
        system,
        b=MASKING_B,
        num_operations=ENGINE_OPERATIONS,
        rng=np.random.default_rng(20240614),
        engine="sequential",
    )
    sequential_elapsed = time.perf_counter() - started
    assert sequential == result  # bit-for-bit mode agreement at benchmark scale

    started = time.perf_counter()
    _message_level_workload(
        system,
        b=MASKING_B,
        num_operations=MESSAGE_LEVEL_OPERATIONS,
        rng=np.random.default_rng(20240614),
    )
    message_elapsed = time.perf_counter() - started

    vectorised_rate = ENGINE_OPERATIONS / vectorised_elapsed
    sequential_rate = ENGINE_OPERATIONS / sequential_elapsed
    message_rate = MESSAGE_LEVEL_OPERATIONS / message_elapsed
    speedup = vectorised_rate / message_rate

    rows = [
        ["vectorised engine", ENGINE_OPERATIONS, f"{vectorised_rate:,.0f}", f"{speedup:.1f}x"],
        [
            "sequential reference",
            ENGINE_OPERATIONS,
            f"{sequential_rate:,.0f}",
            f"{sequential_rate / message_rate:.1f}x",
        ],
        ["message-level legacy", MESSAGE_LEVEL_OPERATIONS, f"{message_rate:,.0f}", "1.0x"],
    ]
    print(f"\nWorkload throughput on MGrid({GRID_SIDE}, {MASKING_B}):")
    print(format_table(["path", "operations", "ops/sec", "vs legacy"], rows))

    if timing_enabled:
        assert speedup >= 20.0, (
            f"vectorised engine only {speedup:.1f}x over the message-level path"
        )


def test_scenario_suite_throughput(benchmark, rng):
    """The whole scenario suite stays fast under both access strategies."""
    from repro.simulation import scenario_suite

    system = MGrid(GRID_SIDE, MASKING_B)
    suite = scenario_suite(system.universe, b=MASKING_B, rng=rng)

    def run_suite():
        timings = []
        for scenario in suite:
            for strategy in ("uniform", "optimal"):
                started = time.perf_counter()
                result = run_workload(
                    system,
                    b=MASKING_B,
                    num_operations=20_000,
                    scenario=scenario,
                    strategy=strategy,
                    rng=np.random.default_rng(7),
                )
                elapsed = time.perf_counter() - started
                timings.append((scenario.name, strategy, result, elapsed))
        return timings

    timings = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    rows = []
    for name, strategy, result, elapsed in timings:
        assert result.empirical_load <= 1.0
        assert result.consistency_violations == 0  # suite stays within the bound
        rows.append(
            [
                name,
                strategy,
                f"{result.availability:.3f}",
                f"{result.empirical_load:.3f}",
                f"{20_000 / elapsed:,.0f}",
            ]
        )
    print("\nScenario suite on MGrid(7, 3), 20k operations each:")
    print(format_table(["scenario", "strategy", "availability", "L_w", "ops/sec"], rows))
