"""Benchmarks regenerating Figures 1-3: the construction instances the paper draws.

Figure 1 — M-Grid on a 7x7 grid with b = 3 (one quorum = 2 rows + 2 columns).
Figure 2 — RT(4, 3) of depth 2 (one quorum = 3-of-4 applied twice).
Figure 3 — M-Path on a 9x9 triangulated grid with b = 4 (3 LR + 3 TB paths).

Each benchmark times the construction and one quorum draw, verifies the
parameters stated in the surrounding text, and emits an ASCII rendering of a
sample quorum analogous to the shaded quorums in the figures.
"""

from __future__ import annotations


from repro import MGrid, MPath, RecursiveThreshold
from repro.constructions.grid import render_grid_quorum


def test_figure1_mgrid(benchmark, rng):
    """Figure 1: the 7x7 M-Grid with b = 3 and one shaded quorum."""

    def build_and_sample():
        system = MGrid(7, 3)
        return system, system.sample_quorum(rng)

    system, quorum = benchmark(build_and_sample)

    assert system.n == 49
    assert system.k == 2                      # sqrt(b+1) rows and columns
    assert system.masking_bound() == 3
    assert len(quorum) == system.min_quorum_size() == 24

    zero_based = frozenset(quorum)
    picture = render_grid_quorum(7, zero_based)
    assert picture.count("#") == 24
    print("\nFigure 1 (M-Grid, n=7x7, b=3), one quorum shaded:\n" + picture)


def test_figure2_rt43(benchmark, rng):
    """Figure 2: RT(4, 3) of depth 2 with one shaded quorum."""

    def build_and_sample():
        system = RecursiveThreshold(4, 3, 2)
        return system, system.sample_quorum(rng)

    system, quorum = benchmark(build_and_sample)

    assert system.n == 16
    assert system.min_quorum_size() == 9      # 3-of-4 recursively: 3^2 leaves
    assert system.num_quorums() == 256
    assert len(quorum) == 9

    # Render the recursion: 4 groups of 4 leaves, chosen leaves marked '#'.
    groups = []
    for group_index in range(4):
        leaves = range(group_index * 4, (group_index + 1) * 4)
        groups.append("".join("#" if leaf in quorum else "." for leaf in leaves))
    picture = " | ".join(groups)
    assert picture.count("#") == 9
    print("\nFigure 2 (RT(4,3), depth 2), one quorum shaded (3 of 4 groups, "
          "3 of 4 leaves each):\n" + picture)


def test_figure3_mpath(benchmark, rng):
    """Figure 3: M-Path on a 9x9 triangulated grid with b = 4."""

    def build_and_sample():
        system = MPath(9, 4)
        return system, system.sample_quorum(rng)

    system, quorum = benchmark(build_and_sample)

    assert system.n == 81
    assert system.k == 3                      # sqrt(2b+1) paths per direction
    assert system.masking_bound() == 4
    assert system.min_intersection_size() >= 2 * 4 + 1

    # Render on the lattice coordinates (1-based (i, j) -> row-major picture).
    zero_based = frozenset((j - 1, i - 1) for (i, j) in quorum)
    picture = render_grid_quorum(9, zero_based)
    assert picture.count("#") == len(quorum)
    print("\nFigure 3 (M-Path, n=9x9, b=4), one straight-line quorum shaded:\n" + picture)
