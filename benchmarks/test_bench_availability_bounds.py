"""Benchmarks for the availability lower bounds (Propositions 4.3-4.5).

Checks, on systems small enough for exact computation, that the true crash
probability dominates all three lower bounds, and runs the exact-vs-
Monte-Carlo ablation: the two estimators must agree within the Monte-Carlo
confidence interval on every system tested.
"""

from __future__ import annotations


from conftest import format_table

from repro import (
    MGrid,
    RecursiveThreshold,
    exact_failure_probability,
    masking_threshold,
    monte_carlo_failure_probability,
)
from repro.constructions.threshold import ThresholdQuorumSystem, boosting_block
from repro.core.bounds import crash_probability_lower_bound_for_system


def test_propositions_4_3_to_4_5(benchmark):
    """Fp >= p^(f+1), p^(c-2b), p^(b+1) on exactly-computable systems."""
    systems = [
        masking_threshold(13, 3),
        ThresholdQuorumSystem(9, 7),
        boosting_block(2),
        RecursiveThreshold(4, 3, 2),
    ]
    probabilities = (0.1, 0.2, 0.35)

    def evaluate():
        results = []
        for system in systems:
            for p in probabilities:
                exact = exact_failure_probability(system, p).value
                bound = crash_probability_lower_bound_for_system(system, p)
                results.append((system.name, p, exact, bound))
        return results

    results = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    for name, p, exact, bound in results:
        assert exact >= bound - 1e-12, (name, p)

    rows = [[name, p, f"{exact:.3e}", f"{bound:.3e}"] for name, p, exact, bound in results]
    print("\nExact Fp vs the strongest Section 4.1 lower bound:")
    print(format_table(["system", "p", "exact Fp", "lower bound"], rows))


def test_ablation_exact_vs_monte_carlo(benchmark, rng):
    """Ablation: Monte-Carlo Fp agrees with exact enumeration on small systems."""
    systems = [
        masking_threshold(13, 3),
        RecursiveThreshold(4, 3, 2),
        MGrid(4, 1).to_explicit(),
    ]
    p = 0.2

    def run_monte_carlo():
        return [
            (system, monte_carlo_failure_probability(system, p, trials=20_000, rng=rng))
            for system in systems
        ]

    estimates = benchmark.pedantic(run_monte_carlo, rounds=1, iterations=1)
    rows = []
    for system, estimate in estimates:
        exact = exact_failure_probability(system, p).value
        low, high = estimate.confidence_interval(z=4.0)
        assert low <= exact <= high
        rows.append([system.name, f"{exact:.4f}", f"{estimate.value:.4f}", f"{estimate.std_error:.4f}"])

    print("\nAblation: exact enumeration vs Monte-Carlo (p = 0.2, 20k trials):")
    print(format_table(["system", "exact", "monte-carlo", "std err"], rows))


def test_condorcet_threshold_families(benchmark):
    """Threshold-style families are Condorcet: Fp -> 0 for p < 1/2, -> 1 for p > 1/2."""

    def evaluate():
        sizes = (9, 25, 49, 81, 121)
        below = [masking_threshold(n, 1).crash_probability(0.35) for n in sizes]
        above = [masking_threshold(n, 1).crash_probability(0.65) for n in sizes]
        return below, above

    below, above = benchmark(evaluate)
    assert below == sorted(below, reverse=True)
    assert below[-1] < 0.05
    assert above == sorted(above)
    assert above[-1] > 0.95

    print("\nCondorcet behaviour of the Threshold family:")
    print(format_table(
        ["n", "Fp at p=0.35", "Fp at p=0.65"],
        [[n, f"{b:.4f}", f"{a:.4f}"] for n, b, a in zip((9, 25, 49, 81, 121), below, above)],
    ))
