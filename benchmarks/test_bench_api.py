"""Benchmarks for the facade (`repro.api`): dispatch fidelity and overhead.

The facade must be a *front door*, not a toll booth: `measure()` with
``method="auto"`` has to return exactly what the underlying path returns
(the acceptance gate of the facade PR: 1e-9 agreement with the
pre-existing exact/analytic entry points across the cross-validation
matrix), and the unified workload runner's normalisation must not cost
measurable throughput on top of the engines themselves.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import format_table

from repro import analytic_load, exact_load
from repro.api import Budget, WorkloadSpec, build, measure, run
from repro.core.analytic import analytic_failure_probability
from repro.core.availability import exact_failure_probability
from repro.exceptions import ComputationError

#: The small-n dispatch matrix: every registered masking construction at a
#: size where all three paths are feasible.
MATRIX = [
    ("threshold", {"n": 16, "b": 3}),
    ("masking-grid", {"side": 4, "b": 1}),
    ("mgrid", {"side": 4, "b": 1}),
    ("rt", {"depth": 2}),
    ("boostfpp", {"q": 2, "b": 1}),
    ("grid", {"side": 4}),
    ("fpp", {"q": 3}),
    ("crumbling-wall", {"rows": [3, 4, 5]}),
]


def test_measure_auto_matches_legacy_paths(benchmark):
    """measure(..., "auto") equals the pre-facade entry points to 1e-9."""

    def sweep():
        rows = []
        for name, params in MATRIX:
            system = build(name, **params)
            auto_load = measure(system, "load").value
            try:
                legacy_load = analytic_load(system).load
            except ComputationError:
                legacy_load = None  # no closed form: auto resolves to the LP
            lp_load = exact_load(system).load
            auto_fp = measure(system, "fp", p=0.1).value
            legacy_fp = analytic_failure_probability(system, 0.1).value
            # The 2^n enumeration reference only exists within its budget
            # (boostfpp sits at n=35); the analytic value is itself
            # 1e-9-validated against it in tests/test_analytic.py.
            exact_fp = (
                exact_failure_probability(system, 0.1).value
                if system.n <= 22
                else None
            )
            rows.append(
                (name, auto_load, legacy_load, lp_load, auto_fp, legacy_fp, exact_fp)
            )
        return rows

    rows = benchmark(sweep)
    for name, auto_load, legacy_load, lp_load, auto_fp, legacy_fp, exact_fp in rows:
        if legacy_load is not None:
            assert auto_load == pytest.approx(legacy_load, abs=1e-12), name
        assert auto_load == pytest.approx(lp_load, abs=1e-9), name
        assert auto_fp == pytest.approx(legacy_fp, abs=1e-12), name
        if exact_fp is not None:
            assert auto_fp == pytest.approx(exact_fp, abs=1e-9), name
    print()
    print(
        format_table(
            ["construction", "L auto", "L lp", "Fp auto", "Fp exact"],
            [
                [
                    name,
                    f"{auto_load:.6f}",
                    f"{lp_load:.6f}",
                    f"{auto_fp:.6f}",
                    "-" if exact_fp is None else f"{exact_fp:.6f}",
                ]
                for name, auto_load, _, lp_load, auto_fp, _, exact_fp in rows
            ],
        )
    )


def test_facade_workload_overhead(benchmark):
    """The facade's spec resolution + report normalisation stays negligible.

    Throughput through ``api.run`` on the vectorised engine must stay within
    a small factor of the engine's own (the facade adds spec resolution,
    registry round-trips and report construction per *run*, not per op).
    """
    spec = WorkloadSpec(
        system="mgrid", params={"side": 7, "b": 3}, operations=20_000, seed=3
    )

    report = benchmark(run, spec)
    assert report.operations == 20_000
    assert report.availability == 1.0
    assert report.consistent
    if getattr(benchmark, "stats", None):  # absent under --benchmark-disable
        elapsed = benchmark.stats.stats.mean
        ops_per_second = report.operations / elapsed
        print(f"\nfacade vectorised throughput: {ops_per_second:,.0f} ops/s")
        # The PR-2 engine does ~1M ops/s on this workload; the facade must
        # not drag it below a conservative floor.
        assert ops_per_second > 100_000


def test_sampled_mode_scales_to_large_n(benchmark):
    """One facade call runs a sampled-quorum workload at n = 4096."""

    def big_run():
        return run(
            WorkloadSpec(
                system="mgrid",
                params={"n": 4096},
                operations=2_000,
                seed=1,
                num_samples=256,
            )
        )

    report = benchmark(big_run)
    assert report.sampled
    assert report.n == 4096
    assert report.availability == 1.0
    # Sampled-support load stays within the 3x-of-optimal band the PR-4
    # benchmark established for this deployment (L(Q) ~ 2/sqrt(n) here).
    assert report.empirical_load <= 3.0 * 2.0 / np.sqrt(4096) * 2.0


def test_measure_budget_policy(benchmark):
    """Budgets move the auto policy between paths deterministically."""

    def probe():
        # Tree has no closed form: a generous budget runs the LP, a tiny
        # quorum budget forces the sampled fallback.
        lp = measure("tree", "load", depth=2, budget=Budget(max_quorums=50))
        sampled = measure(
            "tree", "load", depth=2, budget=Budget(max_quorums=5, num_samples=64)
        )
        return lp, sampled

    lp, sampled = benchmark(probe)
    assert lp.method_used == "lp"
    assert lp.error_bound == 0.0
    assert sampled.method_used == "sampled-lp"
    assert sampled.error_bound == float("inf")
    # The sampled value is an upper bound on L(Q) over a sub-family.
    assert sampled.value >= lp.value - 1e-9
