"""Benchmarks for the M-Grid construction (Section 5.1).

Reproduces Proposition 5.2 (optimal load ~ 2 sqrt((b+1)/n)) across a sweep of
grid sizes and the Section 5.1 availability warning: the crash probability is
bounded below by ``(1 - (1-p)^sqrt(n))^sqrt(n)`` and climbs to one as the
grid grows.
"""

from __future__ import annotations

import math


from conftest import format_table

from repro import MGrid, load_lower_bound


def test_proposition_5_2_load_sweep(benchmark):
    """Load of M-Grid across grid sizes, against the Corollary 4.2 bound."""
    cases = [(7, 3), (10, 3), (16, 7), (20, 9), (32, 15)]

    def evaluate():
        rows = []
        for side, b in cases:
            system = MGrid(side, b)
            approximation = 2 * math.sqrt(b + 1) / side
            rows.append(
                (side, b, system.load(), approximation, load_lower_bound(system.n, b))
            )
        return rows

    rows = benchmark(evaluate)
    for side, b, load, approximation, bound in rows:
        # Proposition 5.2: L ~ 2 sqrt(b+1)/sqrt(n); the exact value is the
        # fair-system c/n, which deviates from the approximation only through
        # the integrality of ceil(sqrt(b+1)) and the row/column overlap.
        assert 0.6 * approximation <= load <= 1.35 * approximation
        # Optimality: within sqrt(2) (plus integrality) of the lower bound.
        assert load <= 2.0 * bound

    print("\nM-Grid load vs the 2 sqrt((b+1)/n) approximation and the lower bound:")
    print(format_table(
        ["side", "b", "L", "2 sqrt(b+1)/sqrt(n)", "sqrt((2b+1)/n)"],
        [[s, b, f"{l:.3f}", f"{a:.3f}", f"{lb:.3f}"] for s, b, l, a, lb in rows],
    ))


def test_mgrid_availability_degrades(benchmark, rng):
    """Fp(M-Grid) -> 1: the lower bound and the Monte-Carlo estimate both climb with n."""
    p = 0.15
    sides = (6, 10, 16, 24)

    def evaluate():
        rows = []
        for side in sides:
            system = MGrid(side, 1)
            rows.append(
                (
                    side,
                    system.crash_probability_lower_bound(p),
                    system.crash_probability(p, trials=4000, rng=rng),
                )
            )
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    bounds = [bound for _, bound, _ in rows]
    estimates = [estimate for _, _, estimate in rows]
    assert bounds == sorted(bounds)
    assert estimates[-1] > estimates[0]
    assert estimates[-1] > 0.9
    for _, bound, estimate in rows:
        assert estimate >= bound - 0.03

    print(f"\nM-Grid crash probability grows with n (p = {p}):")
    print(format_table(
        ["side", "lower bound", "monte-carlo"],
        [[side, f"{bound:.3f}", f"{estimate:.3f}"] for side, bound, estimate in rows],
    ))
