"""Benchmark for the Section 8 resilience/load trade-off (f <= n L(Q)).

Evaluates both sides of the inequality for every construction at a common
scale and reports the slack, demonstrating the impossibility the paper closes
with: no system is simultaneously at the resilience frontier and the load
frontier.
"""

from __future__ import annotations


from conftest import format_table

from repro import (
    BoostedFPP,
    MGrid,
    MPath,
    RecursiveThreshold,
    masking_threshold,
)
from repro.analysis import tradeoff_point, verify_tradeoff
from repro.constructions.grid import MaskingGrid


def test_resilience_load_tradeoff(benchmark):
    systems = [
        masking_threshold(256, 63),
        MaskingGrid(16, 5),
        MGrid(16, 7),
        RecursiveThreshold(4, 3, 4),
        BoostedFPP(3, 4),
        MPath(16, 7),
    ]

    def evaluate():
        return [tradeoff_point(system) for system in systems]

    points = benchmark(evaluate)
    for system, point in zip(systems, points):
        assert verify_tradeoff(system)
        assert point.slack >= -1e-9

    # The trade-off in action: the Threshold system sits at the resilience
    # frontier (f close to n L), the load-optimal systems give up resilience.
    threshold_point = points[0]
    mpath_point = points[-1]
    assert threshold_point.resilience > 3 * mpath_point.resilience
    assert mpath_point.load < 0.7 * threshold_point.load

    rows = [
        [
            point.name,
            point.n,
            point.resilience,
            f"{point.load:.3f}",
            f"{point.resilience_bound:.1f}",
            f"{point.slack:.1f}",
        ]
        for point in points
    ]
    print("\nResilience/load trade-off (f <= n L, Section 8):")
    print(format_table(["system", "n", "f", "L", "n*L", "slack"], rows))
