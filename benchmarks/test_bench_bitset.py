"""Benchmarks for the bitmask quorum engine (`repro.core.bitset`).

Times the engine-backed hot paths on the largest systems the seed
benchmarks exercise, and runs the engine-vs-frozenset ablation once per
session: the vectorised popcount pairwise sweep must return exactly the
value of the ``itertools.combinations`` reference.
"""

from __future__ import annotations

import itertools

from conftest import format_table

from repro import MGrid, exact_failure_probability, masking_threshold
from repro.constructions.grid import MaskingGrid


def test_engine_min_intersection(benchmark):
    """IS(Q) by vectorised popcount on M-Grid(7, b=3): 441 quorums, 97k pairs."""
    system = MGrid(7, 3)
    engine = system.bitset_engine()  # pay mask enumeration outside the loop

    value = benchmark(engine.min_intersection_size)

    reference = min(
        len(a & b) for a, b in itertools.combinations(system.quorums(), 2)
    )
    assert value == reference == 2 * system.k * system.k


def test_engine_survival_table(benchmark):
    """The 2^n superset-closure survival table behind exact availability."""
    system = masking_threshold(17, 3)  # 2^17 alive-sets, C(17, 12) quorums
    engine = system.bitset_engine()

    table = benchmark(engine.subset_survival_table)

    # The all-alive set always survives; the empty set never does.
    assert bool(table[-1]) and not bool(table[0])
    # Spot-check the exact Fp built from this table against the analytic
    # binomial tail of the threshold construction.
    exact = exact_failure_probability(system, 0.2).value
    assert abs(exact - system.crash_probability(0.2)) < 1e-12


def test_engine_incidence_build(benchmark):
    """One-off incidence construction for the Grid baseline (9x9, b=2)."""
    system = MaskingGrid(9, 2)

    def build():
        # A fresh engine each round so the cached matrix is not reused.
        from repro.core.bitset import BitsetEngine

        engine = BitsetEngine(system.universe, system.quorum_masks())
        return engine.incidence_matrix()

    matrix = benchmark(build)
    assert matrix.shape == (system.num_quorums(), system.n)
    assert int(matrix.sum()) == sum(len(q) for q in system.quorums())

    print("\nBitmask engine shapes:")
    print(format_table(
        ["system", "quorums", "n", "words/row"],
        [[system.name, matrix.shape[0], matrix.shape[1], (system.n + 63) // 64]],
    ))
