"""Benchmarks for the M-Path construction (Section 7).

Reproduces Proposition 7.2 (optimal load) and Proposition 7.3 (crash
probability decaying for every p < 1/2), backed by the percolation substrate:
the estimated critical point of the triangulated lattice sits near 1/2, and
the Monte-Carlo Fp (disjoint open crossings counted by max-flow) shrinks with
the grid while M-Grid's — same load, same masking family — climbs to one.
The last benchmark is the strategy ablation called out in DESIGN.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import format_table

from repro import MGrid, MPath, Strategy, load_lower_bound
from repro.percolation import estimate_critical_probability


def test_proposition_7_2_load_sweep(benchmark):
    """M-Path load across grid sizes, against the 2 sqrt((2b+1)/n) form and the bound."""
    cases = [(7, 3), (9, 4), (16, 7), (24, 11), (32, 7)]

    def evaluate():
        rows = []
        for side, b in cases:
            system = MPath(side, b)
            paper_form = 2 * np.sqrt(2 * b + 1) / side
            rows.append((side, b, system.load(), paper_form, load_lower_bound(system.n, b)))
        return rows

    rows = benchmark(evaluate)
    for side, b, load, paper_form, bound in rows:
        assert load <= 1.15 * paper_form
        assert load <= 2.1 * bound
        assert load >= bound - 1e-12

    print("\nM-Path load vs 2 sqrt((2b+1)/n) (Proposition 7.2) and the lower bound:")
    print(format_table(
        ["side", "b", "L", "2 sqrt((2b+1)/n)", "sqrt((2b+1)/n)"],
        [[s, b, f"{l:.3f}", f"{p:.3f}", f"{lb:.3f}"] for s, b, l, p, lb in rows],
    ))


def test_percolation_threshold(benchmark, rng):
    """The site-percolation critical point of the triangulated lattice is near 1/2."""
    estimate = benchmark.pedantic(
        estimate_critical_probability,
        kwargs={"side": 12, "trials_per_point": 120, "iterations": 7, "rng": rng},
        rounds=1,
        iterations=1,
    )
    assert 0.35 < estimate.critical_probability < 0.65
    print(f"\nEstimated site-percolation threshold on a 12x12 triangulated grid: "
          f"{estimate.critical_probability:.3f} (theory: 0.5)")


def test_proposition_7_3_availability(benchmark, rng):
    """Fp(M-Path) shrinks with n for p < 1/2, while M-Grid's climbs (the paper's contrast)."""
    p = 0.3
    sides = (5, 9, 13)

    def evaluate():
        rows = []
        for side in sides:
            mpath = MPath(side, 1)
            mgrid = MGrid(side, 1)
            rows.append(
                (
                    side,
                    mpath.crash_probability(p, trials=120, rng=rng),
                    mgrid.crash_probability(p, trials=4000, rng=rng),
                )
            )
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    mpath_values = [value for _, value, _ in rows]
    mgrid_values = [value for _, _, value in rows]
    assert mpath_values[-1] <= mpath_values[0]
    assert mgrid_values[-1] >= mgrid_values[0]
    assert mpath_values[-1] < mgrid_values[-1]

    print(f"\nM-Path vs M-Grid crash probability as the grid grows (p = {p}):")
    print(format_table(
        ["side", "Fp(M-Path)", "Fp(M-Grid)"],
        [[s, f"{a:.3f}", f"{b:.3f}"] for s, a, b in rows],
    ))


def test_analytic_bound_vs_monte_carlo(benchmark, rng):
    """The Theorem B.1/B.3 analytic bound dominates the Monte-Carlo estimate for small p."""
    cases = [(16, 2, 0.05), (24, 2, 0.05), (32, 7, 0.125)]

    def evaluate():
        rows = []
        for side, b, p in cases:
            system = MPath(side, b)
            bound = system.crash_probability_upper_bound(p)
            estimate = system.crash_probability(p, trials=60, rng=rng)
            rows.append((side, b, p, estimate, bound))
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    for side, b, p, estimate, bound in rows:
        assert estimate <= bound + 0.05

    print("\nM-Path availability: Monte-Carlo percolation vs the analytic bound:")
    print(format_table(
        ["side", "b", "p", "Fp (monte-carlo)", "analytic bound"],
        [[s, b, p, f"{e:.4f}", f"{bd:.2e}"] for s, b, p, e, bd in rows],
    ))


def test_ablation_straight_line_vs_bent_path_strategy(benchmark, rng):
    """Ablation (DESIGN.md): the straight-line strategy already achieves the optimal load,
    and bent paths only matter for availability, not for load."""
    system = MPath(9, 4)

    def evaluate():
        subsystem = system.straight_line_subsystem()
        strategy = Strategy.uniform_over_system(subsystem)
        induced = strategy.induced_system_load(system.universe)
        # Availability difference: with 12 crashed vertices scattered on the
        # grid, straight-line quorums frequently die while bent paths survive.
        survived_bent = 0
        survived_straight = 0
        trials = 40
        for _ in range(trials):
            crashed = set()
            while len(crashed) < 12:
                crashed.add((int(rng.integers(1, 10)), int(rng.integers(1, 10))))
            if system.survives(crashed):
                survived_bent += 1
            alive = [q for q in subsystem.quorums() if not q & crashed]
            if alive:
                survived_straight += 1
        return induced, survived_bent / trials, survived_straight / trials

    induced, bent_rate, straight_rate = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    # Load: the uniform straight-line strategy matches the analytic load.
    assert induced == pytest.approx(system.load(), abs=1e-9)
    # Availability: counting bent paths can only help.
    assert bent_rate >= straight_rate

    print("\nAblation: straight-line strategy vs full (bent-path) quorum family:")
    print(format_table(
        ["quantity", "straight lines", "bent paths"],
        [
            ["induced load", f"{induced:.3f}", f"{system.load():.3f} (same strategy)"],
            ["survival rate (12 crashes)", f"{straight_rate:.2f}", f"{bent_rate:.2f}"],
        ],
    ))
