"""Benchmark for epoch re-optimisation: incremental re-weight vs LP re-solve.

On every membership epoch change the access strategy must be recomputed.
:func:`repro.simulation.reconfig.reoptimise_strategy` offers two paths:

* **reweight** — keep the previous strategy's quorums that survive into the
  new member set and renormalise (``Strategy.restricted_to``): no LP at all,
  but only possible when something survives;
* **resolve** — the full load LP on the rebound construction
  (``exact_load``), always available.

This benchmark times both on the two canonical transitions and records
``BENCH_membership.json`` at the repository root (same artefact contract as
``BENCH_scenarios.json``):

* a **growth** epoch (5×5 → 6×6 M-Grid): every old quorum survives, so the
  re-weight path is a pure renormalisation — this is the latency gap that
  justifies having the incremental path at all;
* a **churn** epoch (5×5 → 4×4 after severing the outer ring): *no* quorum
  survives (every M-Grid quorum touches the outer ring), so a requested
  re-weight transparently falls back to — and is billed as — the re-solve.

An end-to-end three-epoch churn run with per-epoch conformance rides along,
so the artefact also certifies the bounds the latencies are traded against.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from conftest import ARTIFACT_SCHEMA_VERSION, format_table, run_metadata

from repro import MGrid
from repro.analysis import reconfig_conformance
from repro.core import Membership, plan_events
from repro.simulation import (
    MembershipTimeline,
    reoptimise_strategy,
    run_reconfig_workload,
)
from repro.simulation.engine import resolve_strategy

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_membership.json"

GRID_SIDE = 5
MASKING_B = 1
SEED = 20240614
REPEATS = 5


def _time_policy(system, steps, policy: str) -> dict:
    """Best-of-N latency of one re-optimisation policy on epoch 0 -> 1.

    Each repeat uses a fresh :class:`Membership` (hence a fresh rebound
    system), so a ``resolve`` really re-runs the LP every time instead of
    hitting the per-object load cache; the rebind itself is warmed before
    the clock starts, so only the strategy work is timed.
    """
    previous = resolve_strategy(system, "optimal")
    best = float("inf")
    for _ in range(REPEATS):
        membership = Membership(
            system.universe, plan_events(system.universe, steps)
        )
        rebound = membership.rebind(system, 1)
        start = time.perf_counter()
        strategy, applied = reoptimise_strategy(
            system, membership, 1, previous=previous, policy=policy
        )
        best = min(best, time.perf_counter() - start)
    return {
        "policy_requested": policy,
        "policy_applied": applied,
        "support_size": len(strategy.support),
        "epoch_n": rebound.n,
        "best_seconds": best,
    }


def _transition_payload(label: str, steps) -> dict:
    system = MGrid(GRID_SIDE, MASKING_B)
    membership = Membership(system.universe, plan_events(system.universe, steps))
    return {
        "transition": label,
        "from_n": system.n,
        "to_n": membership.epoch(1).n,
        "reweight": _time_policy(system, steps, "reweight"),
        "resolve": _time_policy(system, steps, "resolve"),
    }


def _end_to_end_payload() -> dict:
    system = MGrid(GRID_SIDE, MASKING_B)
    ring = GRID_SIDE * GRID_SIDE - (GRID_SIDE - 1) ** 2
    membership = Membership(
        system.universe,
        plan_events(system.universe, [("sever", ring), ("join", ring)]),
    )
    timeline = MembershipTimeline(membership=membership)
    result = run_reconfig_workload(
        system,
        timeline=timeline,
        num_operations=300,
        policy="reweight",
        rng=np.random.default_rng(SEED),
    )
    report = reconfig_conformance(result, system, membership)
    report.require()
    return {
        "num_epochs": result.num_epochs,
        "operations": result.operations,
        "availability": result.availability,
        "consistency_violations": result.consistency_violations,
        "epochs": [outcome.to_dict() for outcome in result.outcomes],
        "checks": report.to_dict()["checks"],
    }


def test_membership_reoptimisation_artifact():
    """Time both re-optimisation paths, require conformance, record the JSON."""
    side_up = (GRID_SIDE + 1) ** 2 - GRID_SIDE**2
    ring = GRID_SIDE * GRID_SIDE - (GRID_SIDE - 1) ** 2
    payload = {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "metadata": run_metadata("benchmarks/test_bench_membership.py"),
        "system": f"mgrid(side={GRID_SIDE}, b={MASKING_B})",
        "seed": SEED,
        "repeats": REPEATS,
        "transitions": [
            _transition_payload("growth", [("join", side_up)]),
            _transition_payload("churn", [("sever", ring)]),
        ],
        "reconfig_churn": _end_to_end_payload(),
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")

    rows = []
    for transition in payload["transitions"]:
        for path in ("reweight", "resolve"):
            timing = transition[path]
            rows.append(
                [
                    f"{transition['transition']} ({transition['from_n']}"
                    f"->{transition['to_n']})",
                    path,
                    timing["policy_applied"],
                    f"{timing['best_seconds'] * 1e3:.3f} ms",
                    timing["support_size"],
                ]
            )
    print()
    print(
        format_table(
            ["transition", "requested", "applied", "best latency", "support"], rows
        )
    )
    print(f"\nrecorded -> {ARTIFACT.name}")

    recorded = json.loads(ARTIFACT.read_text())
    assert recorded["schema_version"] == ARTIFACT_SCHEMA_VERSION
    growth, churn = recorded["transitions"]
    # Growth keeps every quorum: the re-weight really is incremental.
    assert growth["reweight"]["policy_applied"] == "reweight"
    assert growth["resolve"]["policy_applied"] == "resolve"
    # Churn strands every quorum: the re-weight transparently re-solves.
    assert churn["reweight"]["policy_applied"] == "resolve"
    assert all(
        transition[path]["best_seconds"] > 0.0
        for transition in recorded["transitions"]
        for path in ("reweight", "resolve")
    )
    assert recorded["reconfig_churn"]["consistency_violations"] == 0
    assert all(check["ok"] for check in recorded["reconfig_churn"]["checks"])
