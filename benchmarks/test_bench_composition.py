"""Benchmark for the composition algebra (Definition 4.6, Theorem 4.7).

Verifies, with timings, the full Theorem 4.7 table on concrete compositions:
the combinatorial parameters multiply, the load multiplies, and the crash
probability functions compose — checked both through the closed-form algebra
and by brute force on the materialised composed system.
"""

from __future__ import annotations

import pytest

from conftest import format_table

from repro import (
    RegularGrid,
    ThresholdQuorumSystem,
    boost_masking,
    compose,
    exact_failure_probability,
    exact_load,
    majority,
    self_compose,
)


def test_theorem_4_7_algebra(benchmark):
    """Parameters / load / Fp of S∘R vs the products of the component values."""
    pairs = [
        (majority(3), ThresholdQuorumSystem(4, 3)),
        (ThresholdQuorumSystem(4, 3), majority(3)),
        (majority(5), majority(3)),
    ]
    p = 0.15

    def evaluate():
        rows = []
        for outer, inner in pairs:
            composed = compose(outer, inner)
            explicit = composed.to_explicit()
            rows.append(
                (
                    composed.name,
                    (composed.min_quorum_size(), explicit.min_quorum_size()),
                    (composed.min_intersection_size(), explicit.min_intersection_size()),
                    (composed.min_transversal_size(), explicit.min_transversal_size()),
                    (composed.load(), exact_load(explicit).load),
                    (
                        composed.crash_probability(p),
                        exact_failure_probability(explicit, p).value,
                    ),
                )
            )
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    for name, c_pair, is_pair, mt_pair, load_pair, fp_pair in rows:
        assert c_pair[0] == c_pair[1]
        assert is_pair[0] == is_pair[1]
        assert mt_pair[0] == mt_pair[1]
        assert load_pair[0] == pytest.approx(load_pair[1], abs=1e-6)
        assert fp_pair[0] == pytest.approx(fp_pair[1], abs=1e-9)

    printable = [
        [name, f"{c[0]}", f"{i[0]}", f"{m[0]}", f"{l[0]:.3f}", f"{f[0]:.4f}"]
        for name, c, i, m, l, f in rows
    ]
    print("\nTheorem 4.7 (algebraic = brute force on the composed system):")
    print(format_table(["composition", "c", "IS", "MT", "L", "Fp(0.15)"], printable))


def test_boosting_transform(benchmark):
    """Section 6's boosting: every regular input becomes b-masking, at 3/4 of the load cost."""
    regular_inputs = [majority(5), RegularGrid(3), majority(7)]
    b = 1

    def evaluate():
        results = []
        for regular in regular_inputs:
            boosted = boost_masking(regular, b)
            results.append((regular, boosted))
        return results

    results = benchmark(evaluate)
    rows = []
    for regular, boosted in results:
        assert boosted.is_b_masking(b)
        assert boosted.n == regular.n * 5
        assert boosted.load() == pytest.approx(regular.load() * 0.8, abs=1e-9)
        rows.append(
            [regular.name, boosted.n, boosted.min_intersection_size(),
             boosted.min_transversal_size(), f"{boosted.load():.3f}"]
        )

    print(f"\nBoosting regular systems into {b}-masking systems (4-of-5 blocks):")
    print(format_table(["input", "boosted n", "IS", "MT", "L"], rows))


def test_recursive_composition_scaling(benchmark):
    """Self-composition drives IS and MT up exponentially (the RT idea)."""
    block = ThresholdQuorumSystem(4, 3)

    def evaluate():
        return [
            (
                depth,
                self_compose(block, depth).min_intersection_size(),
                self_compose(block, depth).min_transversal_size(),
                self_compose(block, depth).load(),
            )
            for depth in (1, 2, 3, 4, 5)
        ]

    rows = benchmark(evaluate)
    for depth, intersection, transversal, load in rows:
        assert intersection == 2 ** depth
        assert transversal == 2 ** depth
        assert load == pytest.approx(0.75 ** depth)

    print("\nSelf-composition of the 3-of-4 block (Theorem 4.7 applied recursively):")
    print(format_table(
        ["depth", "IS", "MT", "L"],
        [[d, i, t, f"{l:.4f}"] for d, i, t, l in rows],
    ))
