"""Benchmark regenerating the Section 8 worked example.

Paper (Section 8): with n ~ 1024 servers, a target load of about 1/4 and
per-server crash probability p = 1/8,

* M-Grid      masks b = 15, survives f = 28 crashes, but Fp >= 0.638;
* boostFPP    (q = 3, n = 1001) masks b = 19, f = 79, Fp <= 0.372;
* M-Path      (4 LR + 4 TB paths) masks b = 7, f ~ 29, Fp <= 0.001;
* RT(4,3) h=5 masks b = 15, f = 31, Fp <= 0.0001.

The benchmark rebuilds the same four instances, recomputes each quantity and
checks the ordering the paper's discussion relies on (who has the best
availability, who masks the most, who is the all-round winner).
"""

from __future__ import annotations

import pytest

from conftest import format_table

from repro.analysis import section8_comparison


def test_section8_worked_example(benchmark, rng):
    profiles = benchmark(section8_comparison, n=1024, p=0.125, rng=rng)
    by_family = {profile.name.split("(")[0]: profile for profile in profiles}

    mgrid = by_family["M-Grid"]
    boost = by_family["boostFPP"]
    mpath = by_family["M-Path"]
    rt = by_family["RT"]

    # Masking and resilience columns.
    assert mgrid.b == 15 and mgrid.f == 28
    assert boost.b == 19 and boost.f == 79 and boost.n == 1001
    assert mpath.b == 7 and mpath.f in (28, 29)
    assert rt.b == 15 and rt.f == 31

    # Every system is configured at load ~ 1/4.
    for profile in (mgrid, boost, mpath, rt):
        assert profile.load == pytest.approx(0.25, abs=0.03)

    # Availability column: values and ordering.
    assert mgrid.crash_probability == pytest.approx(0.638, abs=0.01)
    assert boost.crash_probability == pytest.approx(0.372, abs=0.005)
    assert mpath.crash_probability <= 0.001
    assert rt.crash_probability <= 0.0001
    assert rt.crash_probability < mpath.crash_probability < boost.crash_probability < mgrid.crash_probability

    rows = [
        [p.name, p.n, p.b, p.f, f"{p.load:.3f}", f"{p.crash_probability:.2e}", p.crash_probability_kind]
        for p in profiles
    ]
    print("\nSection 8 worked example (n ~ 1024, p = 1/8):")
    print(format_table(["system", "n", "b", "f", "L", "Fp", "Fp kind"], rows))
    print("Paper: M-Grid Fp>=0.638 | boostFPP Fp<=0.372 | M-Path Fp<=0.001 | RT Fp<=0.0001")


def test_section8_above_one_quarter(benchmark, rng):
    """The same deployment with cheap servers (p = 0.3): boostFPP collapses, RT survives."""
    profiles = benchmark(section8_comparison, n=1024, p=0.3, rng=rng)
    by_family = {profile.name.split("(")[0]: profile for profile in profiles}

    # p = 0.3 > 1/4: boostFPP's Chernoff guarantee is void (bound reports 1).
    assert by_family["boostFPP"].crash_probability == pytest.approx(1.0)
    # RT(4,3) is above its critical point 0.2324 too, so it also degrades...
    assert by_family["RT"].crash_probability > 0.5
    # ...while M-Grid is, as always at this scale, effectively dead.
    assert by_family["M-Grid"].crash_probability > 0.9

    rows = [
        [p.name, f"{p.load:.3f}", f"{p.crash_probability:.3f}", p.crash_probability_kind]
        for p in profiles
    ]
    print("\nSection 8 setting at p = 0.3 (above the 1/4 and 0.2324 thresholds):")
    print(format_table(["system", "L", "Fp", "Fp kind"], rows))
