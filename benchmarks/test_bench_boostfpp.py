"""Benchmarks for boostFPP (Section 6).

Reproduces Proposition 6.2 (load ~ 3/(4q), optimal for every q and b), the
two scaling policies discussed after it, and Proposition 6.3 (availability
``(q+1) exp(-b(1-4p)^2/2)`` for ``p < 1/4``, collapsing above 1/4).
"""

from __future__ import annotations


import pytest

from conftest import format_table

from repro import BoostedFPP, load_lower_bound


def test_proposition_6_2_load(benchmark):
    """Load ~ 3/(4q) and within a constant of the Corollary 4.2 bound, for every (q, b)."""
    cases = [(2, 2), (3, 2), (3, 19), (4, 5), (5, 10), (7, 8)]

    def evaluate():
        rows = []
        for q, b in cases:
            system = BoostedFPP(q, b)
            rows.append(
                (q, b, system.n, system.load(), 3 / (4 * q), load_lower_bound(system.n, b))
            )
        return rows

    rows = benchmark(evaluate)
    for q, b, n, load, approximation, bound in rows:
        assert load == pytest.approx(approximation, rel=0.25)
        assert bound - 1e-12 <= load <= 1.8 * bound

    print("\nboostFPP load vs 3/(4q) and the Corollary 4.2 bound:")
    print(format_table(
        ["q", "b", "n", "L", "3/(4q)", "sqrt((2b+1)/n)"],
        [[q, b, n, f"{l:.3f}", f"{a:.3f}", f"{lb:.3f}"] for q, b, n, l, a, lb in rows],
    ))


def test_scaling_policies(benchmark):
    """The two Section 6 scaling policies: grow b at fixed q, or grow q at fixed b."""

    def evaluate():
        fixed_q = [(b, BoostedFPP(3, b)) for b in (1, 4, 16, 64)]
        fixed_b = [(q, BoostedFPP(q, 4)) for q in (2, 3, 4, 5, 7, 8)]
        return fixed_q, fixed_b

    fixed_q, fixed_b = benchmark(evaluate)

    # Policy 1: masking grows, load stays ~ 3/(4q).
    masking = [system.masking_bound() for _, system in fixed_q]
    loads_q = [system.load() for _, system in fixed_q]
    assert masking == sorted(masking)
    assert max(loads_q) - min(loads_q) < 0.03

    # Policy 2: load shrinks like 1/q, masking stays b.
    loads_b = [system.load() for _, system in fixed_b]
    assert loads_b == sorted(loads_b, reverse=True)
    assert all(system.masking_bound() == 4 for _, system in fixed_b)

    print("\nScaling policy 1 (fix q = 3, grow b):")
    print(format_table(
        ["b", "n", "masks", "L"],
        [[b, s.n, s.masking_bound(), f"{s.load():.3f}"] for b, s in fixed_q],
    ))
    print("\nScaling policy 2 (fix b = 4, grow q):")
    print(format_table(
        ["q", "n", "masks", "L"],
        [[q, s.n, s.masking_bound(), f"{s.load():.3f}"] for q, s in fixed_b],
    ))


def test_proposition_6_3_availability(benchmark):
    """Fp <= (q+1) exp(-b(1-4p)^2/2) below p = 1/4; collapse above it."""

    def evaluate():
        below = []
        for b in (2, 5, 10, 20, 40):
            system = BoostedFPP(3, b)
            below.append(
                (
                    b,
                    system.crash_probability(0.125),
                    system.crash_probability_chernoff_bound(0.125),
                )
            )
        above = [BoostedFPP(3, b).crash_probability(0.3) for b in (2, 10, 40)]
        return below, above

    below, above = benchmark(evaluate)
    for b, composed, chernoff in below:
        assert composed <= chernoff + 1e-12
    # Availability improves exponentially with b below the threshold...
    estimates = [composed for _, composed, _ in below]
    assert estimates == sorted(estimates, reverse=True)
    assert estimates[-1] < 1e-4
    # ...and collapses above p = 1/4 (the remark after Proposition 6.3).
    assert above == sorted(above)
    assert above[-1] > 0.99

    print("\nboostFPP availability below the 1/4 threshold (p = 0.125):")
    print(format_table(
        ["b", "Fp (composed estimate)", "(q+1)exp(-b(1-4p)^2/2)"],
        [[b, f"{c:.3e}", f"{ch:.3e}"] for b, c, ch in below],
    ))
    print(f"\nAbove the threshold (p = 0.3) Fp climbs to {above[-1]:.3f} as b grows.")
