"""Setuptools shim.

The environment this library targets may lack the ``wheel`` package, which
PEP 660 editable installs require; keeping a ``setup.py`` allows the legacy
editable-install path (``pip install -e . --no-use-pep517``) to work offline.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
