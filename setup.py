"""Setuptools shim.

All project metadata lives in ``pyproject.toml``.  This file exists for
environments without the ``wheel`` package (which PEP 660 editable installs
require): there, ``python setup.py develop`` still provides an offline
editable install of the ``src/`` layout.  With ``wheel`` available, prefer
``pip install -e .``.
"""

from setuptools import setup

setup()
