#!/usr/bin/env python3
"""Facade tour: specs, dispatch provenance, and both engines from one spec.

Walks the three layers of :mod:`repro.api`:

1. the **registry** — build by name, round-trip a ``SystemSpec`` through
   JSON (the experiment description you can store in a config file);
2. the **measure dispatcher** — one ``measure()`` call whose ``method="auto"``
   policy picks the analytic closed form, the exact LP/enumeration or the
   sampled estimator, recording which path ran and its error bound;
3. the **unified workload runner** — one ``WorkloadSpec`` run on the
   vectorised engine *and* the event-driven core, both normalised into the
   same JSON-stable ``WorkloadReport`` so the comparison is a dict diff
   (:func:`repro.analysis.empirical.engine_agreement` automates it).

Run with::

    python examples/api_tour.py
"""

from __future__ import annotations

import json

from repro.analysis.empirical import engine_agreement
from repro.api import (
    Budget,
    SystemSpec,
    WorkloadSpec,
    available_constructions,
    build,
    measure,
    run,
    spec_of,
)


def main() -> None:
    print("registry:", ", ".join(available_constructions()))
    print()

    # --- 1. specs round-trip through JSON.
    spec = SystemSpec("mgrid", {"side": 7, "b": 3})
    system = build(spec)
    assert spec_of(system) == SystemSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    print(f"spec {spec.to_dict()} -> {system.name}")
    print()

    # --- 2. the dispatch policy, visible per result.
    for description, result in [
        ("small M-Grid, auto -> closed form", measure("mgrid", "load", side=7, b=3)),
        ("same value, forced exact LP",       measure("mgrid", "load", side=7, b=3, method="exact")),
        ("n = 10^4 M-Grid, still closed form", measure("mgrid", "fp", side=100, b=3, p=0.01)),
        ("tree has no closed form -> LP",      measure("tree", "load", depth=2)),
        ("forced Monte-Carlo, bounded error",  measure("rt", "fp", depth=2, p=0.2,
                                                       method="sampled", budget=Budget(trials=40_000))),
    ]:
        bound = "" if result.error_bound == 0.0 else f"  (error <= {result.error_bound:.2g})"
        print(f"  {description:38s} {result.measure} = {result.value:.6f} "
              f"via {result.method_used}{bound}")
    print()

    # --- 3. one spec, both engines, one report shape.
    workload = WorkloadSpec(
        system="mgrid",
        params={"side": 7, "b": 3},
        scenario="byzantine",
        operations=400,
        clients=8,
        seed=7,
    )
    agreement = engine_agreement(workload)
    for report in (agreement.vectorized, agreement.event):
        print(f"  {report.engine:10s} availability={report.availability:.3f} "
              f"load={report.empirical_load:.3f} consistent={report.consistent} "
              f"violations={report.consistency_violations}")
    print(f"  engines agree: {agreement.ok()} "
          f"(availability gap {agreement.availability_gap:.3f}, "
          f"load gap {agreement.load_gap:.3f})")
    print()

    # --- large universes switch to sampled-quorum mode automatically.
    big = run(
        WorkloadSpec(system="mgrid", params={"n": 4096}, operations=1000, seed=1)
    )
    print(f"  n=4096: engine={big.engine} sampled={big.sampled} "
          f"availability={big.availability:.3f} load={big.empirical_load:.4f}")


if __name__ == "__main__":
    main()
