#!/usr/bin/env python3
"""M-Path availability and the percolation threshold (Section 7).

M-Path is the only construction in the paper whose crash probability
vanishes for *every* per-server crash probability below 1/2 — a consequence
of the site-percolation threshold of the triangulated grid being 1/2.  This
example demonstrates the three ingredients numerically:

1. the finite-size critical point of LR crossings sits near 1/2,
2. below the threshold, ``Fp(M-Path)`` decays as the grid grows, while above
   it the system dies, and
3. the M-Grid on the same grid (same load, same masking) is already dying at
   crash probabilities where M-Path is still fine.

Run with::

    python examples/percolation_availability.py
"""

from __future__ import annotations

import numpy as np

from repro import MGrid, MPath
from repro.percolation import TriangularGrid, estimate_critical_probability, estimate_crossing_probability


def main() -> None:
    rng = np.random.default_rng(11)

    print("1. Site-percolation critical point of the triangulated grid")
    estimate = estimate_critical_probability(side=12, trials_per_point=150, rng=rng)
    print(f"   estimated p_c ~ {estimate.critical_probability:.3f}  "
          "(theory: 0.5; finite-size estimates land nearby)\n")

    print("2. Open-crossing probability across the threshold (side = 12)")
    grid = TriangularGrid(12)
    for p in (0.1, 0.3, 0.45, 0.55, 0.7):
        crossing = estimate_crossing_probability(grid, p, trials=200, rng=rng)
        print(f"   p = {p:.2f}   P(LR crossing) ~ {crossing.probability:.2f}")
    print()

    print("3. Fp of M-Path vs M-Grid as the grid grows (b = 1, p = 0.3)")
    print(f"   {'side':>5} {'n':>5} {'Fp(M-Path)':>12} {'Fp(M-Grid)':>12}")
    for side in (5, 7, 9, 11):
        mpath = MPath(side, 1)
        mgrid = MGrid(side, 1)
        fp_path = mpath.crash_probability(0.3, trials=120, rng=rng)
        fp_grid = mgrid.crash_probability(0.3, trials=4000, rng=rng)
        print(f"   {side:>5} {side * side:>5} {fp_path:>12.3f} {fp_grid:>12.3f}")
    print("\n   M-Path's failure probability shrinks with n; "
          "M-Grid's grows towards 1 (Table 2's asymptotic column).")


if __name__ == "__main__":
    main()
