#!/usr/bin/env python3
"""A Byzantine-fault-tolerant replicated register over a masking quorum system.

This is the scenario the paper's introduction motivates: a shared variable
replicated over ``n`` servers, where clients read and write through quorums
and up to ``b`` servers may behave arbitrarily.  The example deploys the
masking-quorum protocol of [MR98a] over an M-Grid, injects ``b`` colluding
Byzantine servers that fabricate a huge timestamp (the strongest attack on
the read rule) plus a handful of crashed servers, and shows that

* every read still returns the last written value (consistency), and
* the busiest server's empirical access frequency matches the analytic load.

Run with::

    python examples/replicated_register.py
"""

from __future__ import annotations

import numpy as np

from repro import MGrid
from repro.simulation import FaultInjector, run_workload


def main() -> None:
    rng = np.random.default_rng(2024)

    side, b = 7, 3
    system = MGrid(side, b)
    print(f"Deploying a replicated register over {system.name} "
          f"({system.n} servers, masking b = {b})")

    injector = FaultInjector(system.universe, rng)

    print("\n--- fault-free run ---")
    clean = run_workload(system, b=b, num_operations=300, rng=rng)
    print(f"availability           : {clean.availability:.3f}")
    print(f"consistency violations : {clean.consistency_violations}")
    print(f"busiest server load    : {clean.empirical_load:.3f} "
          f"(analytic L = {system.load():.3f})")

    print(f"\n--- {b} colluding Byzantine servers (fabricated timestamps) ---")
    byzantine_only = injector.exact(num_byzantine=b, num_crashed=0)
    attacked = run_workload(
        system,
        b=b,
        num_operations=300,
        scenario=byzantine_only,
        byzantine_behaviour="fabricate-timestamp",
        rng=rng,
    )
    print(f"availability           : {attacked.availability:.3f}")
    print(f"consistency violations : {attacked.consistency_violations} "
          "(masking quorums filter the forged pairs)")

    print(f"\n--- {b} Byzantine + 4 crashed servers (hybrid fault model) ---")
    hybrid = injector.exact(num_byzantine=b, num_crashed=4)
    degraded = run_workload(
        system,
        b=b,
        num_operations=300,
        scenario=hybrid,
        rng=rng,
    )
    print(f"availability           : {degraded.availability:.3f} "
          "(reads/writes retry around hit quorums)")
    print(f"consistency violations : {degraded.consistency_violations}")

    print("\n--- what goes wrong beyond the masking bound ---")
    # Many more colluders than the deployment masks, using the strongest
    # attack (honest towards writers, forged read replies): forged pairs now
    # reach the b+1 vouching threshold and reads get corrupted.
    overload = injector.exact(num_byzantine=4 * b, num_crashed=0)
    broken = run_workload(
        system,
        b=b,
        num_operations=300,
        scenario=overload,
        byzantine_behaviour="forge-on-read",
        rng=rng,
        allow_overload=True,
    )
    print(f"Byzantine servers       : {4 * b} (>> b = {b})")
    print(f"consistency violations : {broken.consistency_violations} "
          "(the adversary out-votes the honest intersection)")


if __name__ == "__main__":
    main()
