"""Scenario-suite tour of the vectorised workload engine.

Runs the full scenario suite — crashes (independent and correlated),
Byzantine fabrication and equivocation, partitions and churn — over the
Figure 1 M-Grid, under both the uniform access strategy and the load-optimal
strategy of the ``exact_load`` LP, and closes the loop between the empirical
measures and the analytic ones:

* measured busiest-server frequency vs the induced load ``L_w`` and the LP's
  ``L(Q)`` (Definition 3.8);
* measured availability vs the exact crash probability ``Fp``
  (Definition 3.10).

The punchline worth noticing in the output: the M-Grid sails through
independent crashes and ``b``-bounded Byzantine servers, but a *correlated*
failure of one grid row (a rack) or a partition kills every quorum at once —
scenario diversity measures what the iid fault model cannot.

Run with:  PYTHONPATH=src python examples/workload_scenarios.py
"""

from __future__ import annotations

import numpy as np

from repro import MGrid
from repro.analysis import (
    empirical_availability_comparison,
    empirical_load_comparison,
)
from repro.simulation import run_workload, scenario_suite


def print_table(headers, rows):
    widths = [
        max(len(str(header)), max((len(str(row[i])) for row in rows), default=0))
        for i, header in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))


def main() -> None:
    rng = np.random.default_rng(20240614)
    system = MGrid(7, 3)
    b = 3
    print(f"System: {system.name} (n={system.n}, b={b}, L(Q)={system.load():.3f})\n")

    rows = []
    for scenario in scenario_suite(system.universe, b=b, rng=rng):
        for strategy in ("uniform", "optimal"):
            result = run_workload(
                system,
                b=b,
                num_operations=20_000,
                scenario=scenario,
                strategy=strategy,
                rng=np.random.default_rng(7),
            )
            rows.append(
                [
                    scenario.name,
                    strategy,
                    f"{result.availability:.3f}",
                    f"{result.empirical_load:.3f}",
                    result.consistency_violations,
                    result.stale_reads,
                ]
            )
    print("Scenario suite, 20k operations each:")
    print_table(
        ["scenario", "strategy", "availability", "empirical L_w", "violations", "stale"],
        rows,
    )

    print("\nEmpirical vs analytic (Definition 3.8): measured L_w vs the load LP")
    comparison = empirical_load_comparison(system, b=b, rng=rng)
    print(
        f"  L(Q) by LP = {comparison.analytic_load:.4f}, "
        f"strategy L_w = {comparison.strategy_load:.4f}, "
        f"measured = {comparison.empirical_load:.4f} "
        f"(sampling gap {comparison.sampling_gap:.4f})"
    )

    small = MGrid(4, 1)
    availability = empirical_availability_comparison(
        small, 0.15, b=1, trials=150, operations_per_trial=10, rng=rng
    )
    print("\nEmpirical vs analytic (Definition 3.10): availability under iid crashes")
    print(
        f"  {small.name}: exact Fp = {availability.analytic_failure_probability:.4f}, "
        f"measured failure rate = {availability.empirical_failure_rate:.4f} "
        f"(gap {availability.gap:.4f})"
    )


if __name__ == "__main__":
    main()
