#!/usr/bin/env python3
"""Quickstart: the paper's constructions and measures through the facade.

Builds each of the paper's constructions by registry name
(:func:`repro.api.build`), computes the combinatorial parameters, the load
against the Corollary 4.2 lower bound and the crash probability through the
one measure dispatcher (:func:`repro.api.measure` — note the provenance it
reports for every value), and finishes with a workload run through the
unified runner.  The same calls are available from the shell::

    python -m repro measure mgrid --side 7 --b 3 --measure fp --p 0.1
    python -m repro run --construction mgrid --side 7 --scenario iid-crash

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import load_lower_bound, verify_masking
from repro.api import WorkloadSpec, build, measure, run, spec_of


def describe(name: str, p: float = 0.1, **params) -> None:
    """Print one construction's headline numbers, facade-style."""
    system = build(name, **params)
    b = int(measure(system, "masking").value)
    # Lemma 3.6 via the analytic MT and IS values; for the small explicit
    # systems additionally check Definition 3.5 literally.
    verify_masking_ok = system.is_b_masking(b)
    if system.enumerates_all_quorums and system.n <= 50 and system.num_quorums() <= 1500:
        verify_masking(system, b)

    load = measure(system, "load")
    crash = measure(system, "fp", p=p)
    bound = load_lower_bound(system.n, b)
    print(f"{system.name}   [spec: {spec_of(system).to_dict()}]")
    print(f"  servers            n  = {system.n}")
    print(f"  masks              b  = {b}   (verified: {verify_masking_ok})")
    print(f"  quorum size        c  = {int(measure(system, 'min-quorum').value)}")
    print(f"  min intersection   IS = {int(measure(system, 'intersection').value)}")
    print(f"  min transversal    MT = {int(measure(system, 'transversal').value)}"
          f"   (resilience f = {int(measure(system, 'resilience').value)})")
    print(f"  load               L  = {load.value:.4f}   via {load.method_used}"
          f"   (lower bound sqrt((2b+1)/n) = {bound:.4f})")
    print(f"  crash probability  Fp = {crash.value:.6f}   at p = {p}"
          f"   via {crash.method_used}")
    print()


def main() -> None:
    print("=" * 72)
    print("Masking quorum systems from Malkhi, Reiter & Wool (PODC 1997)")
    print("=" * 72)
    print()

    # The [MR98a] Threshold baseline: optimal resilience, load stuck near 1/2.
    describe("threshold", n=49, b=3)

    # The [MR98a] Grid baseline: low load, but availability degrades.
    describe("masking-grid", side=7, b=2)

    # M-Grid (Section 5.1, Figure 1): optimal load for b = O(sqrt(n)).
    describe("mgrid", side=7, b=3)

    # RT(4,3) (Section 5.2, Figure 2): near-optimal availability.
    describe("rt", depth=3)

    # boostFPP (Section 6): a projective plane boosted by a threshold block.
    describe("boostfpp", q=2, b=2)

    # M-Path (Section 7, Figure 3): optimal load *and* optimal availability.
    describe("mpath", side=7, b=3)

    # And one workload through the unified runner: the masking-quorum
    # protocol over M-Grid under iid crashes, vectorised engine.
    report = run(
        WorkloadSpec(
            system="mgrid",
            params={"side": 7, "b": 3},
            scenario="iid-crash",
            operations=500,
            seed=2026,
        )
    )
    print(f"workload: {report.system} under {report.scenario!r} "
          f"({report.engine} engine)")
    print(f"  availability = {report.availability:.3f}   "
          f"empirical load = {report.empirical_load:.3f}   "
          f"consistent = {report.consistent}")


if __name__ == "__main__":
    main()
