#!/usr/bin/env python3
"""Quickstart: build masking quorum systems and inspect the paper's measures.

Builds each of the paper's constructions at a small size, prints their
combinatorial parameters (quorum size, intersection, transversal), their load
against the Corollary 4.2 lower bound, and their crash probability at a given
per-server crash probability.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    BoostedFPP,
    MGrid,
    MPath,
    MaskingGrid,
    RecursiveThreshold,
    load_lower_bound,
    masking_threshold,
    verify_masking,
)


def describe(system, b: int, p: float = 0.1) -> None:
    """Print one construction's headline numbers."""
    # Lemma 3.6 via the analytic MT and IS values; for the small explicit
    # systems additionally check Definition 3.5 literally.
    verify_masking_ok = system.is_b_masking(b)
    if system.enumerates_all_quorums and system.n <= 50 and system.num_quorums() <= 1500:
        verify_masking(system, b)

    load = system.load()
    bound = load_lower_bound(system.n, b)
    crash = system.crash_probability(p)
    print(f"{system.name}")
    print(f"  servers            n  = {system.n}")
    print(f"  masks              b  = {b}   (verified: {verify_masking_ok})")
    print(f"  quorum size        c  = {system.min_quorum_size()}")
    print(f"  min intersection   IS = {system.min_intersection_size()}")
    print(f"  min transversal    MT = {system.min_transversal_size()}"
          f"   (resilience f = {system.min_transversal_size() - 1})")
    print(f"  load               L  = {load:.4f}   (lower bound sqrt((2b+1)/n) = {bound:.4f})")
    print(f"  crash probability  Fp = {crash:.6f}   at p = {p}")
    print()


def main() -> None:
    print("=" * 72)
    print("Masking quorum systems from Malkhi, Reiter & Wool (PODC 1997)")
    print("=" * 72)
    print()

    # The [MR98a] Threshold baseline: optimal resilience, load stuck near 1/2.
    describe(masking_threshold(n=49, b=3), b=3)

    # The [MR98a] Grid baseline: low load, but availability degrades.
    describe(MaskingGrid(side=7, b=2), b=2)

    # M-Grid (Section 5.1, Figure 1): optimal load for b = O(sqrt(n)).
    describe(MGrid(side=7, b=3), b=3)

    # RT(4,3) (Section 5.2, Figure 2): near-optimal availability.
    describe(RecursiveThreshold(4, 3, depth=3), b=RecursiveThreshold(4, 3, 3).masking_bound())

    # boostFPP (Section 6): a projective plane boosted by a threshold block.
    describe(BoostedFPP(q=2, b=2), b=2)

    # M-Path (Section 7, Figure 3): optimal load *and* optimal availability.
    describe(MPath(side=7, b=3), b=3)


if __name__ == "__main__":
    main()
