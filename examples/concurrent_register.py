#!/usr/bin/env python3
"""Concurrent clients on the replicated register, over the event-driven core.

The synchronous simulator can only run one client at a time, so nothing
timing-dependent is observable.  This example runs the [MR98a] masking-quorum
protocol on the event-driven core instead: eight resumable clients interleave
reads and writes through a discrete-event scheduler with per-link latency,
and the completed history — with genuinely overlapping operation intervals —
is checked against the register semantics the ``2b + 1`` intersection
guarantees:

* interleaved writers always produce strictly increasing, unique timestamps;
* a read concurrent with a write returns the old or the new value — never a
  Byzantine fabrication — under *every* adversarial behaviour at ``b``
  colluders;
* beyond the bound (``2b + 1`` colluders forging read replies) the history
  checker catches the fabricated reads, showing the bound is tight;
* timing faults (slow servers, flaky links, a mid-run crash/recover window)
  move the latency percentiles without ever breaking safety.

Run with::

    python examples/concurrent_register.py
"""

from __future__ import annotations

import numpy as np

from repro import ThresholdQuorumSystem
from repro.simulation import (
    BYZANTINE_BEHAVIOURS,
    FaultInjector,
    LatencyModel,
    crash_recover_scenario,
    flaky_links_scenario,
    run_event_workload,
    slow_server_scenario,
)

NUM_CLIENTS = 8
OPS_PER_CLIENT = 15
MASKING_B = 2


def describe(label: str, result) -> None:
    check = result.check
    verdict = "consistent" if check.ok else f"VIOLATIONS: {check.violations[:2]}"
    print(
        f"  {label:<24} avail={result.availability:.3f}  "
        f"p50={result.latency_p50:5.2f}  p99={result.latency_p99:6.2f}  "
        f"overlapping-pairs={check.concurrent_pairs:4d}  {verdict}"
    )


def main() -> None:
    rng = np.random.default_rng(2026)
    system = ThresholdQuorumSystem(9, 7)
    latency = LatencyModel.uniform(1.0, 1.0)
    print(
        f"Replicated register over {system.name}: {NUM_CLIENTS} interleaved "
        f"clients x {OPS_PER_CLIENT} ops, masking b = {MASKING_B}"
    )

    print("\n--- fault-free, concurrent ---")
    result = run_event_workload(
        system, b=MASKING_B, num_clients=NUM_CLIENTS,
        operations_per_client=OPS_PER_CLIENT, latency=latency,
        retry_unvouched_reads=True, rng=rng,
    )
    describe("fault-free", result)

    print(f"\n--- every Byzantine behaviour at b = {MASKING_B} colluders ---")
    injector = FaultInjector(system.universe, rng)
    byzantine = injector.exact(num_byzantine=MASKING_B)
    for behaviour in sorted(BYZANTINE_BEHAVIOURS):
        result = run_event_workload(
            system, b=MASKING_B, num_clients=NUM_CLIENTS,
            operations_per_client=OPS_PER_CLIENT, scenario=byzantine,
            byzantine_behaviour=behaviour, latency=latency,
            retry_unvouched_reads=True, rng=rng,
        )
        assert result.check.ok, (behaviour, result.check.violations)
        describe(behaviour, result)

    print("\n--- timing faults (safety holds, latency pays) ---")
    slow = slow_server_scenario(
        system.universe, {0: 6.0, 1: 6.0}, latency=latency
    )
    describe(
        "slow-servers",
        run_event_workload(
            system, b=MASKING_B, num_clients=NUM_CLIENTS,
            operations_per_client=OPS_PER_CLIENT, scenario=slow,
            retry_unvouched_reads=True, rng=rng,
        ),
    )
    describe(
        "flaky-links",
        run_event_workload(
            system, b=MASKING_B, num_clients=NUM_CLIENTS,
            operations_per_client=OPS_PER_CLIENT,
            scenario=flaky_links_scenario(loss=0.05, duplication=0.03, latency=latency),
            retry_unvouched_reads=True, rng=rng,
        ),
    )
    describe(
        "crash-recover",
        run_event_workload(
            system, b=MASKING_B, num_clients=NUM_CLIENTS,
            operations_per_client=OPS_PER_CLIENT,
            scenario=crash_recover_scenario(
                system.universe, [0, 1], down_at=15.0, up_at=50.0, latency=latency
            ),
            retry_unvouched_reads=True, rng=rng,
        ),
    )

    print(f"\n--- what goes wrong beyond the bound: {2 * MASKING_B + 1} colluders ---")
    overload = injector.exact(num_byzantine=2 * MASKING_B + 1)
    result = run_event_workload(
        system, b=MASKING_B, num_clients=NUM_CLIENTS,
        operations_per_client=OPS_PER_CLIENT, scenario=overload,
        byzantine_behaviour="forge-on-read", latency=latency,
        rng=rng, allow_overload=True,
    )
    describe("forge-on-read x5", result)
    assert not result.check.ok
    print(
        f"  the checker caught {result.check.fabricated_reads} fabricated reads "
        "(the adversary out-votes the honest intersection)"
    )


if __name__ == "__main__":
    main()
