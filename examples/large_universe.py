"""Walkthrough: the implicit large-universe engine at n = 10^4.

Every other example materialises its quorum family; this one never does.
It builds the Figure 1 construction at production scale (M-Grid over a
100 x 100 grid), reads the paper's measures from closed forms, compares
the load against the Corollary 4.2 lower bound, sweeps the Section 4-5
asymptotics across decades, and runs a crash-scenario workload on a
sampled deployment — all without enumerating a single quorum family.

Run with:  PYTHONPATH=src python examples/large_universe.py
"""

from __future__ import annotations

import math

import numpy as np

from repro import (
    ImplicitQuorumSystem,
    MGrid,
    analytic_failure_probability,
    analytic_load,
    load_lower_bound,
)
from repro.analysis.asymptotics import section45_comparison
from repro.simulation import FaultScenario, run_workload


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    banner("Closed-form measures at n = 10^4 (M-Grid(100x100, b=3))")
    base = MGrid(100, 3)
    print(f"  servers           n   = {base.n}")
    print(f"  quorum family         = {base.num_quorums():,} quorums (never built)")
    print(f"  quorum size       c   = {base.min_quorum_size()}")
    print(f"  min intersection  IS  = {base.min_intersection_size()}  (>= 2b+1 = 7)")
    print(f"  min transversal   MT  = {base.min_transversal_size()}  (f = {base.min_transversal_size() - 1})")
    load = analytic_load(base).load
    bound = load_lower_bound(base.n, 3)
    print(f"  load              L   = {load:.4f}  (Corollary 4.2 bound {bound:.4f}, ratio {load / bound:.2f})")
    for p in (0.001, 0.01, 0.05):
        fp = analytic_failure_probability(base, p)
        print(f"  availability      Fp({p}) = {fp.value:.3e}   [{fp.method}]")

    banner("Section 4-5 comparison across n = 64 .. 10^4 (closed forms)")
    comparison = section45_comparison((64, 256, 1024, 4096, 10000), p=0.1, b=1)
    print(f"  {'family':10s} {'load ~ n^alpha':>15s} {'r^2':>8s}   Fp trend")
    for name, family in comparison.items():
        fit = family.load_fit
        print(
            f"  {name:10s} {fit.exponent:>+15.3f} {fit.r_squared:>8.4f}   "
            f"{family.availability_trend}"
        )
    print("  (paper: load exponent -1/2 for Grid/M-Grid/M-Path, "
          f"{math.log(3, 4) - 1:.4f} for RT(4,3), 0 for Threshold)")

    banner("Sampled workload at n = 4096 under crashes (implicit deployment)")
    side = 64
    implicit = ImplicitQuorumSystem(MGrid(side, 0), num_samples=32 * side, seed=42)
    strategy = implicit.sampled_optimal_strategy()
    induced = strategy.induced_system_load(implicit.universe)
    print(f"  sampled-LP strategy over {len(strategy)} quorums, induced load {induced:.4f}"
          f"  (closed-form L = {implicit.load():.4f})")
    crash_rng = np.random.default_rng(1)
    crashed = frozenset(
        (int(row), int(column)) for row, column in crash_rng.integers(side, size=(4, 2))
    )
    result = run_workload(
        implicit,
        b=0,
        num_operations=8 * side * side,
        scenario=FaultScenario(crashed=crashed),
        strategy=strategy,
        rng=np.random.default_rng(5),
    )
    reference = 1.0 / math.sqrt(implicit.n)
    print(f"  {result.operations} operations, {len(crashed)} servers crashed: "
          f"availability {result.availability:.4f}")
    print(f"  measured load {result.empirical_load:.5f} = "
          f"{result.empirical_load / reference:.2f} x 1/sqrt(n)  (within the 3x acceptance bound)")
    assert result.availability == 1.0
    assert result.is_consistent
    assert result.empirical_load <= 3.0 * reference


if __name__ == "__main__":
    main()
