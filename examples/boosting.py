#!/usr/bin/env python3
"""Boosting: turn any benign-fault quorum system into a Byzantine-masking one.

Section 6's composition technique replaces every server of a *regular* quorum
system with a ``(3b+1)``-of-``(4b+1)`` threshold block; by Theorem 4.7 the
result masks ``b`` Byzantine failures whatever the input system was, while
multiplying the input's load by only ``~3/4``.

This example boosts three very different regular systems — a majority, a
Maekawa grid, and a crumbling wall — and verifies the Theorem 4.7 algebra
(parameters multiply, load multiplies, crash probabilities compose) against
direct computation on the composed system.

Run with::

    python examples/boosting.py
"""

from __future__ import annotations

from repro import (
    CrumblingWall,
    RegularGrid,
    boost_masking,
    boosting_block,
    exact_load,
    failure_probability,
    majority,
    verify_masking,
)


def demonstrate(regular, b: int, p: float = 0.1) -> None:
    """Boost one regular system and report the before/after measures."""
    boosted = boost_masking(regular, b)
    block = boosting_block(b)

    print(f"{regular.name}  ->  {boosted.name}")
    print(f"  universe: {regular.n} -> {boosted.n} servers "
          f"(x{block.n} per server)")
    print(f"  IS      : {regular.min_intersection_size()} -> "
          f"{boosted.min_intersection_size()}  (needs >= {2 * b + 1})")
    print(f"  MT      : {regular.min_transversal_size()} -> "
          f"{boosted.min_transversal_size()}  (needs >= {b + 1})")

    if boosted.n <= 30:
        # Small enough to check Definition 3.5 literally, pair by pair.
        verify_masking(boosted.to_explicit(), b)
    assert boosted.is_b_masking(b)
    print(f"  {b}-masking: verified")

    regular_load = exact_load(regular).load
    boosted_load = boosted.load()
    print(f"  load    : {regular_load:.3f} -> {boosted_load:.3f} "
          f"(block load {block.load():.3f}, product "
          f"{regular_load * block.load():.3f})")

    regular_fp = failure_probability(regular, p).value
    boosted_fp = boosted.crash_probability(p)
    print(f"  Fp({p}) : {regular_fp:.4f} -> {boosted_fp:.4f} "
          f"(composition of the two crash functions)")
    print()


def main() -> None:
    b = 1
    print("Boosting regular quorum systems into "
          f"{b}-masking systems (Thresh {3 * b + 1}-of-{4 * b + 1} blocks)\n")

    demonstrate(majority(5), b)
    demonstrate(RegularGrid(3), b)
    demonstrate(CrumblingWall([1, 2, 3]), b)


if __name__ == "__main__":
    main()
