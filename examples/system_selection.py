#!/usr/bin/env python3
"""Choosing a quorum system for a deployment (the Section 8 comparison).

Section 8 of the paper works through a concrete design exercise: about a
thousand servers, a target load around 1/4, and servers that crash
independently with probability 1/8.  Which construction should you use?

This example reproduces that comparison (and optionally extends it to the
Threshold and Grid baselines), printing masking ability, resilience, load and
crash probability side by side — the same trade-offs as the paper's Table 2.

Run with::

    python examples/system_selection.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import recommend_construction, section8_comparison, table2


def print_profiles(profiles) -> None:
    header = f"{'system':<28} {'n':>6} {'b':>4} {'f':>4} {'load':>7} {'Fp':>12}  kind"
    print(header)
    print("-" * len(header))
    for profile in profiles:
        print(
            f"{profile.name:<28} {profile.n:>6} {profile.b:>4} {profile.f:>4} "
            f"{profile.load:>7.3f} {profile.crash_probability:>12.6f}  "
            f"({profile.crash_probability_kind})"
        )


def main() -> None:
    rng = np.random.default_rng(7)

    print("Section 8 worked example: n ~ 1024 servers, load ~ 1/4, p = 1/8")
    print("(paper: M-Grid Fp>=0.638, boostFPP Fp<=0.372, M-Path Fp<=0.001, "
          "RT(4,3) Fp<=0.0001)\n")
    profiles = section8_comparison(n=1024, p=0.125, rng=rng)
    print_profiles(profiles)

    print("\nThe same servers, but cheap components: p = 0.3 (> 1/4)")
    print("(boostFPP's availability collapses above p = 1/4; RT and M-Path "
          "still below their thresholds)\n")
    profiles_high_p = section8_comparison(n=1024, p=0.3, rng=rng)
    print_profiles(profiles_high_p)

    print("\nFull Table 2 reproduction at n = 256, p = 1/8 "
          "(each system at its largest maskable b):\n")
    rows = table2(n=256, p=0.125, rng=rng)
    header = (f"{'system':<12} {'n':>5} {'max b':>6} {'f':>5} {'load':>7} "
              f"{'sqrt((2b+1)/n)':>15} {'Fp':>12} {'L-opt':>6} {'A-opt':>6}")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row.system:<12} {row.n:>5} {row.max_b:>6} {row.resilience:>5} "
            f"{row.load:>7.3f} {row.load_lower_bound:>15.3f} "
            f"{row.crash_probability:>12.6f} {str(row.load_optimal):>6} "
            f"{str(row.availability_optimal):>6}"
        )

    # When no masking is required (b = 0), the classical regular systems —
    # tree and wheel — join the candidate pool alongside the paper's
    # constructions (they are excluded from the masking tables above, where
    # IS = 1 disqualifies them by definition).
    print("\nNo Byzantine failures to mask (b = 0), n = 31, p = 0.1 — the "
          "regular systems compete too:\n")
    recommendation = recommend_construction(31, 0.1, required_b=0, rng=rng)
    print_profiles(recommendation.feasible)
    print(f"\nrecommended: {recommendation.best.name}")

    # The same exercise from the shell:
    #   python -m repro table --n 1024 --p 0.125
    #   python -m repro compare threshold mgrid rt --n 49 --depth 3 --p 0.125


if __name__ == "__main__":
    main()
