"""Regenerate the golden live-service history fixture.

Spawns a real 16-replica ``mgrid(side=4, b=1)`` cluster (one replica
running the ``forge-on-read`` Byzantine behaviour), drives a concurrent
live workload through :func:`repro.service.run_load`, verifies the
recorded history is clean, and pins it under ``tests/fixtures/`` for
offline replay by ``tests/test_service_history.py``:

    PYTHONPATH=src python scripts/make_service_fixture.py

The fixture is deliberately a *live* capture, not a simulation — it is
the proof that real sockets and real processes produce histories the
PR-3 checker and the conformance bounds accept, frozen so CI can replay
it without spawning processes.
"""

from __future__ import annotations

import asyncio
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.analysis import service_conformance  # noqa: E402
from repro.api.registry import SystemSpec  # noqa: E402
from repro.service import ClusterSpec, ServiceCluster, run_load  # noqa: E402
from repro.simulation.client import RetryPolicy  # noqa: E402
from repro.simulation.history import dump_history_jsonl  # noqa: E402

FIXTURES = REPO / "tests" / "fixtures"
SPEC = SystemSpec(construction="mgrid", params={"side": 4, "b": 1})
SEED = 2026
OPERATIONS = 400
CLIENTS = 12
BEHAVIOUR = "forge-on-read"


def main() -> int:
    FIXTURES.mkdir(parents=True, exist_ok=True)
    cluster_spec = ClusterSpec(
        SPEC, byzantine=1, byzantine_behaviour=BEHAVIOUR, seed=SEED
    )
    with ServiceCluster(cluster_spec, FIXTURES / "_run") as cluster:
        result = asyncio.run(
            run_load(
                cluster.system,
                cluster.endpoints(),
                b=cluster.b,
                operations=OPERATIONS,
                clients=CLIENTS,
                policy=RetryPolicy(request_timeout=2.0),
                seed=SEED,
            )
        )
    if not result.check.ok:
        raise SystemExit(f"live history is not clean: {result.check.violations}")
    report = service_conformance(result)
    if not report.ok:
        failed = [check.metric for check in report.checks if not check.ok]
        raise SystemExit(f"live run failed conformance: {failed}")

    history_path = FIXTURES / "service_mgrid_history.jsonl"
    written = dump_history_jsonl(result.records, history_path)
    meta = {
        "spec": SPEC.to_dict(),
        "b": result.b,
        "byzantine": 1,
        "byzantine_behaviour": BEHAVIOUR,
        "seed": SEED,
        "operations": result.operations,
        "clients": result.clients,
        "strategy": "uniform",
        "check": {
            "ok": result.check.ok,
            "fabricated_reads": result.check.fabricated_reads,
            "stale_reads": result.check.stale_reads,
            "concurrent_pairs": result.check.concurrent_pairs,
        },
    }
    (FIXTURES / "service_mgrid_meta.json").write_text(
        json.dumps(meta, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {written} records to {history_path}")
    print(f"conformance: {[check.metric for check in report.checks]} all ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
