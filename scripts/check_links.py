#!/usr/bin/env python3
"""Markdown link checker for README.md and docs/.

Verifies that every relative markdown link (``[text](target)``) points at a
file that exists in the repository; external ``http(s)`` links and pure
``#anchor`` links are skipped (the repository builds offline).  Run from the
repository root; exits non-zero listing every broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def markdown_files(root: Path) -> list[Path]:
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    files.extend(sorted(root.glob("*.md")))
    # Deduplicate while preserving order.
    seen: dict[Path, None] = {}
    for path in files:
        if path.exists():
            seen.setdefault(path.resolve(), None)
    return list(seen)


def check_file(path: Path, root: Path) -> list[str]:
    errors = []
    text = path.read_text(encoding="utf-8")
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            line = text[: match.start()].count("\n") + 1
            errors.append(
                f"{path.relative_to(root)}:{line}: broken link -> {target}"
            )
    return errors


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    errors: list[str] = []
    checked = 0
    for path in markdown_files(root):
        errors.extend(check_file(path, root))
        checked += 1
    if errors:
        print("\n".join(errors))
        print(f"\n{len(errors)} broken link(s) across {checked} file(s)")
        return 1
    print(f"all relative links resolve across {checked} markdown file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
