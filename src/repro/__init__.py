"""repro — Byzantine masking quorum systems.

A reproduction of *The Load and Availability of Byzantine Quorum Systems*
(Malkhi, Reiter, Wool; PODC 1997 / SIAM J. Computing): the b-masking
quorum-system model, its load and availability measures and lower bounds,
quorum composition, the paper's four constructions (M-Grid, RT, boostFPP,
M-Path) and the two [MR98a] baselines, plus a replicated-register simulator
that runs the masking-quorum protocol over any of them.

Quickstart
----------
>>> from repro import MGrid, best_known_load, load_lower_bound
>>> system = MGrid(side=7, b=3)
>>> system.masking_bound() >= 3
True
>>> best_known_load(system).load <= 2 * load_lower_bound(system.n, 3)
True
"""

from repro.constructions import (
    BoostedFPP,
    TreeQuorumSystem,
    WheelQuorumSystem,
    CrumblingWall,
    FiniteProjectivePlane,
    MGrid,
    MPath,
    MaskingGrid,
    RecursiveThreshold,
    RegularGrid,
    ThresholdQuorumSystem,
    boost_masking,
    boosting_block,
    majority,
    masking_threshold,
)
from repro.core import (
    AvailabilityResult,
    BitsetEngine,
    ComposedQuorumSystem,
    ExplicitQuorumSystem,
    ImplicitQuorumSystem,
    LoadResult,
    MaskingReport,
    QuorumSystem,
    Strategy,
    Universe,
    analytic_failure_probability,
    analytic_load,
    best_known_load,
    compose,
    crash_probability_lower_bound,
    exact_failure_probability,
    exact_load,
    failure_probability,
    fair_load,
    load_lower_bound,
    load_of_strategy,
    load_optimality_ratio,
    masking_report,
    minimal_transversal,
    monte_carlo_failure_probability,
    resilience_upper_bound_from_load,
    self_compose,
    verify_masking,
)
from repro.exceptions import (
    ComputationError,
    ConstructionError,
    FieldError,
    InvalidQuorumSystemError,
    MaskingViolationError,
    ReproError,
    SimulationError,
    StrategyError,
)

__version__ = "1.0.0"

__all__ = [
    "AvailabilityResult",
    "BitsetEngine",
    "BoostedFPP",
    "ComposedQuorumSystem",
    "ComputationError",
    "ConstructionError",
    "CrumblingWall",
    "ExplicitQuorumSystem",
    "FieldError",
    "FiniteProjectivePlane",
    "ImplicitQuorumSystem",
    "InvalidQuorumSystemError",
    "LoadResult",
    "MGrid",
    "MPath",
    "MaskingGrid",
    "MaskingReport",
    "MaskingViolationError",
    "QuorumSystem",
    "RecursiveThreshold",
    "RegularGrid",
    "ReproError",
    "SimulationError",
    "Strategy",
    "StrategyError",
    "ThresholdQuorumSystem",
    "TreeQuorumSystem",
    "Universe",
    "WheelQuorumSystem",
    "analytic_failure_probability",
    "analytic_load",
    "best_known_load",
    "boost_masking",
    "boosting_block",
    "compose",
    "crash_probability_lower_bound",
    "exact_failure_probability",
    "exact_load",
    "failure_probability",
    "fair_load",
    "load_lower_bound",
    "load_of_strategy",
    "load_optimality_ratio",
    "majority",
    "masking_report",
    "masking_threshold",
    "minimal_transversal",
    "monte_carlo_failure_probability",
    "resilience_upper_bound_from_load",
    "self_compose",
    "verify_masking",
    "__version__",
]
