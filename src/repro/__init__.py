"""repro — Byzantine masking quorum systems.

A reproduction of *The Load and Availability of Byzantine Quorum Systems*
(Malkhi, Reiter, Wool; PODC 1997 / SIAM J. Computing): the b-masking
quorum-system model, its load and availability measures and lower bounds,
quorum composition, the paper's four constructions (M-Grid, RT, boostFPP,
M-Path) and the two [MR98a] baselines, plus a replicated-register simulator
that runs the masking-quorum protocol over any of them.

Quickstart
----------
The spec-driven facade (:mod:`repro.api`) is the recommended entry point:
build constructions by name, compute measures through one dispatcher, run
workloads on either engine — also available from the shell as
``python -m repro`` (see ``docs/api.md``).

>>> from repro import build, measure, load_lower_bound
>>> system = build("mgrid", n=49, b=3)
>>> system.masking_bound() >= 3
True
>>> measure(system, "load").value <= 2 * load_lower_bound(system.n, 3)
True
"""

from repro.constructions import (
    BoostedFPP,
    TreeQuorumSystem,
    WheelQuorumSystem,
    CrumblingWall,
    FiniteProjectivePlane,
    MGrid,
    MPath,
    MaskingGrid,
    RecursiveThreshold,
    RegularGrid,
    ThresholdQuorumSystem,
    boost_masking,
    boosting_block,
    majority,
    masking_threshold,
)
from repro.core import (
    AvailabilityResult,
    BitsetEngine,
    ComposedQuorumSystem,
    ExplicitQuorumSystem,
    ImplicitQuorumSystem,
    LoadResult,
    MaskingReport,
    QuorumSystem,
    Strategy,
    Universe,
    analytic_failure_probability,
    analytic_load,
    best_known_load,
    compose,
    crash_probability_lower_bound,
    exact_failure_probability,
    exact_load,
    failure_probability,
    fair_load,
    load_lower_bound,
    load_of_strategy,
    load_optimality_ratio,
    masking_report,
    minimal_transversal,
    monte_carlo_failure_probability,
    resilience_upper_bound_from_load,
    self_compose,
    verify_masking,
)
from repro.exceptions import (
    ComputationError,
    ConstructionError,
    FieldError,
    InvalidParameterError,
    InvalidQuorumSystemError,
    MaskingViolationError,
    ReproError,
    SimulationError,
    StrategyError,
)

# isort: split
# The facade (imported last: it builds on constructions, core and
# simulation).  `repro.build` / `repro.measure` / `repro.run_experiment`
# are the recommended entry points; `repro.api` exposes the full surface.
from repro import api
from repro.api import (
    Budget,
    MeasureResult,
    SystemSpec,
    WorkloadReport,
    WorkloadSpec,
    available_constructions,
    build,
    measure,
    spec_of,
)
from repro.api import run as run_experiment

__version__ = "1.0.0"

__all__ = [
    "AvailabilityResult",
    "BitsetEngine",
    "BoostedFPP",
    "Budget",
    "MeasureResult",
    "SystemSpec",
    "WorkloadReport",
    "WorkloadSpec",
    "api",
    "available_constructions",
    "build",
    "measure",
    "run_experiment",
    "spec_of",
    "InvalidParameterError",
    "ComposedQuorumSystem",
    "ComputationError",
    "ConstructionError",
    "CrumblingWall",
    "ExplicitQuorumSystem",
    "FieldError",
    "FiniteProjectivePlane",
    "ImplicitQuorumSystem",
    "InvalidQuorumSystemError",
    "LoadResult",
    "MGrid",
    "MPath",
    "MaskingGrid",
    "MaskingReport",
    "MaskingViolationError",
    "QuorumSystem",
    "RecursiveThreshold",
    "RegularGrid",
    "ReproError",
    "SimulationError",
    "Strategy",
    "StrategyError",
    "ThresholdQuorumSystem",
    "TreeQuorumSystem",
    "Universe",
    "WheelQuorumSystem",
    "analytic_failure_probability",
    "analytic_load",
    "best_known_load",
    "boost_masking",
    "boosting_block",
    "compose",
    "crash_probability_lower_bound",
    "exact_failure_probability",
    "exact_load",
    "failure_probability",
    "fair_load",
    "load_lower_bound",
    "load_of_strategy",
    "load_optimality_ratio",
    "majority",
    "masking_report",
    "masking_threshold",
    "minimal_transversal",
    "monte_carlo_failure_probability",
    "resilience_upper_bound_from_load",
    "self_compose",
    "verify_masking",
    "__version__",
]
