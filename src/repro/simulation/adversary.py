"""Adaptive adversaries: fault placement chosen *online* from observed load.

The paper's guarantees are worst-case claims: the load bound ``L(Q)``
(Definition 3.8) and the masking property (Lemma 3.6) must hold however the
``b`` faulty servers are chosen — including by an adversary that watches the
running system and corrupts exactly the servers that hurt most.  The static
scenarios of :mod:`repro.simulation.scenarios` fix the fault set up front;
this module closes the gap with *adaptive* policies that re-choose the
corruption set between rounds of a workload, based on the per-server access
counts observed so far:

* :class:`GreedyLoadAdversary` crashes the ``b`` busiest servers — silence
  is within a Byzantine server's power — forcing the steering retry to pile
  the traffic onto the survivors.  This is the load attack the renormalised
  restricted strategy bounds (checked by
  :func:`repro.analysis.conformance.load_conformance`).
* :class:`StaleReadAdversary` turns the ``b`` busiest servers Byzantine
  with the ``"fabricate"`` vouching model — hot servers sit in the most
  quorum intersections, so corrupting them maximises the forged votes a
  read can collect.  Within ``b`` liars the masking rule must still yield
  zero fabricated or stale reads (Lemma 3.6); the conformance layer asserts
  exactly that.

:func:`run_adversarial_workload` drives the round loop over the vectorised
scenario engine; the whole run is a deterministic function of the ``rng``
state (policies are deterministic given the observations, ties broken by
universe order), so adversarial runs replay exactly under a fixed seed.
:class:`AdaptiveScenario` is the declarative wrapper that lets a
:class:`~repro.api.workloads.WorkloadSpec` name an adaptive run like any
other scenario.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

import numpy as np

from repro.core.quorum_system import QuorumSystem
from repro.core.rng import ensure_rng
from repro.core.strategy import Strategy
from repro.core.universe import Universe
from repro.exceptions import SimulationError
from repro.simulation.engine import WorkloadResult, resolve_strategy, run_scenario
from repro.simulation.faults import FaultScenario
from repro.simulation.scenarios import BYZANTINE_MODELS, WorkloadScenario

__all__ = [
    "AdaptiveScenario",
    "AdversarialRound",
    "AdversarialResult",
    "AdversaryPolicy",
    "GreedyLoadAdversary",
    "StaleReadAdversary",
    "run_adversarial_workload",
]


@dataclass(frozen=True)
class AdversaryPolicy:
    """Base class for adaptive fault-placement policies.

    A policy is a pure function of the observations: given the universe, the
    corruption budget and the per-server successful-access counts accumulated
    over previous rounds, it returns the :class:`FaultScenario` for the next
    round.  Policies hold no mutable state, so replaying a run replays its
    corruption trajectory.

    Attributes
    ----------
    corruptions:
        How many servers to corrupt per round; ``None`` means the protocol's
        masking parameter ``b``.  Values above ``b`` model an over-strong
        adversary (negative tests; combine with ``allow_overload`` for
        Byzantine policies).
    """

    corruptions: int | None = None

    def budget(self, b: int, universe: Universe) -> int:
        """The number of servers this policy corrupts each round."""
        count = self.corruptions if self.corruptions is not None else b
        return max(0, min(count, universe.size))

    def hottest(
        self, universe: Universe, counts: dict[Hashable, int], budget: int
    ) -> frozenset:
        """The ``budget`` servers with the highest observed access counts.

        Ties (including the all-zero cold start of round 0) are broken by
        universe position, so the choice is deterministic.
        """
        if budget <= 0:
            return frozenset()
        ranked = sorted(
            universe.elements,
            key=lambda server: (-counts.get(server, 0), universe.index_of(server)),
        )
        return frozenset(ranked[:budget])

    def choose(
        self, universe: Universe, b: int, counts: dict[Hashable, int]
    ) -> FaultScenario:
        raise NotImplementedError


@dataclass(frozen=True)
class GreedyLoadAdversary(AdversaryPolicy):
    """Crash the busiest servers to concentrate load on the survivors."""

    def choose(
        self, universe: Universe, b: int, counts: dict[Hashable, int]
    ) -> FaultScenario:
        return FaultScenario(crashed=self.hottest(universe, counts, self.budget(b, universe)))


@dataclass(frozen=True)
class StaleReadAdversary(AdversaryPolicy):
    """Corrupt the busiest servers into colluding liars.

    The busiest servers appear in the most quorum intersections, so turning
    them Byzantine maximises the forged votes present in any read quorum —
    the strongest permitted attempt at a fabricated or stale read.
    """

    def choose(
        self, universe: Universe, b: int, counts: dict[Hashable, int]
    ) -> FaultScenario:
        return FaultScenario(byzantine=self.hottest(universe, counts, self.budget(b, universe)))


@dataclass(frozen=True)
class AdaptiveScenario:
    """Declarative description of an adaptive-adversary run.

    The facade's analogue of a :class:`~repro.simulation.scenarios.WorkloadScenario`
    for adversarial workloads: a policy, a round count and the Byzantine
    vouching model.  ``WorkloadSpec(scenario=AdaptiveScenario(...))`` routes
    to :func:`run_adversarial_workload` on the vectorised engine.
    """

    name: str
    policy: AdversaryPolicy
    rounds: int = 8
    byzantine_model: str = "fabricate"

    def __post_init__(self):
        if self.rounds < 1:
            raise SimulationError(f"rounds must be >= 1, got {self.rounds}")
        if self.byzantine_model not in BYZANTINE_MODELS:
            raise SimulationError(
                f"unknown Byzantine model {self.byzantine_model!r}; "
                f"choose one of {sorted(BYZANTINE_MODELS)}"
            )


@dataclass(frozen=True)
class AdversarialRound:
    """One round of an adversarial run: the fault set chosen and its outcome."""

    index: int
    fault: FaultScenario
    result: WorkloadResult


@dataclass
class AdversarialResult(WorkloadResult):
    """Aggregate of an adversarial run, with the per-round trajectory.

    The inherited fields follow the engine's accounting summed over rounds
    (``per_server_load`` normalised by total successful operations, so it
    remains a genuine access frequency); ``rounds`` keeps each round's fault
    set and :class:`WorkloadResult` so the conformance layer can rebuild the
    exact worst-case envelope the adversary realised, and ``strategy`` is
    the resolved access strategy the clients actually used.
    """

    rounds: tuple = ()
    strategy: Strategy | None = None

    @property
    def corruption_trajectory(self) -> tuple[frozenset, ...]:
        """The corrupted (Byzantine ∪ crashed) set of every round, in order."""
        return tuple(
            round_.fault.byzantine | round_.fault.crashed for round_ in self.rounds
        )


def _counts_from(result: WorkloadResult, universe: Universe) -> dict[Hashable, int]:
    """Recover integer per-server successful-access counts from a result.

    The engine normalises counts by the successful-operation total; the
    division is exact in floating point for any realistic count, so rounding
    recovers the integers.
    """
    successful = max(1, result.successful_reads + result.successful_writes)
    return {
        server: int(round(result.per_server_load[server] * successful))
        for server in universe
    }


def _round_sizes(num_operations: int, rounds: int) -> list[int]:
    """Split ``num_operations`` into ``rounds`` near-equal positive chunks."""
    boundaries = [(index * num_operations) // rounds for index in range(rounds + 1)]
    return [b - a for a, b in zip(boundaries, boundaries[1:])]


def run_adversarial_workload(
    system: QuorumSystem,
    *,
    b: int,
    policy: AdversaryPolicy,
    num_operations: int = 200,
    rounds: int = 8,
    strategy: Strategy | str | None = None,
    rng: np.random.Generator | None = None,
    write_fraction: float = 0.5,
    max_attempts: int = 10,
    allow_overload: bool = False,
    byzantine_model: str = "fabricate",
) -> AdversarialResult:
    """Run a workload against an adaptive adversary.

    The operation batch is split into ``rounds`` near-equal chunks.  Before
    each chunk the policy inspects the per-server successful-access counts
    accumulated so far and picks the fault set for the chunk; the chunk then
    runs through :func:`~repro.simulation.engine.run_scenario` on the shared
    ``rng`` (sequential consumption — the run is a deterministic function of
    the seed, corruption trajectory included).

    At least one operation per round is required, so every round observes
    something.  Returns an :class:`AdversarialResult`
    whose aggregate fields match the engine's accounting summed over rounds.
    """
    if rounds < 1:
        raise SimulationError(f"rounds must be >= 1, got {rounds}")
    if num_operations < rounds:
        raise SimulationError(
            f"need at least one operation per round: {num_operations} operations "
            f"over {rounds} rounds"
        )
    if not isinstance(policy, AdversaryPolicy):
        raise SimulationError(
            f"policy must be an AdversaryPolicy, got {type(policy).__name__}"
        )
    rng = ensure_rng(rng)
    universe = system.universe
    resolved = resolve_strategy(system, strategy)

    counts: dict[Hashable, int] = {server: 0 for server in universe}
    round_records: list[AdversarialRound] = []
    totals = {
        "successful_reads": 0,
        "successful_writes": 0,
        "failed_operations": 0,
        "consistency_violations": 0,
        "stale_reads": 0,
    }
    attempted = {server: 0.0 for server in universe}
    messages = {server: 0.0 for server in universe}

    for index, chunk in enumerate(_round_sizes(num_operations, rounds)):
        fault = policy.choose(universe, b, counts)
        scenario = WorkloadScenario.from_fault_scenario(
            fault,
            name=f"adaptive-round-{index}",
            byzantine_model=byzantine_model,
        )
        result = run_scenario(
            system,
            b=b,
            num_operations=chunk,
            scenario=scenario,
            strategy=resolved,
            rng=rng,
            write_fraction=write_fraction,
            max_attempts=max_attempts,
            allow_overload=allow_overload,
        )
        round_records.append(AdversarialRound(index=index, fault=fault, result=result))
        round_counts = _counts_from(result, universe)
        for server in universe:
            counts[server] += round_counts[server]
            attempted[server] += result.per_server_attempted[server] * chunk
            messages[server] += result.per_server_messages[server] * chunk
        totals["successful_reads"] += result.successful_reads
        totals["successful_writes"] += result.successful_writes
        totals["failed_operations"] += result.failed_operations
        totals["consistency_violations"] += result.consistency_violations
        totals["stale_reads"] += result.stale_reads

    successful = max(1, totals["successful_reads"] + totals["successful_writes"])
    per_server_load = {server: counts[server] / successful for server in universe}
    return AdversarialResult(
        operations=num_operations,
        successful_reads=totals["successful_reads"],
        successful_writes=totals["successful_writes"],
        failed_operations=totals["failed_operations"],
        consistency_violations=totals["consistency_violations"],
        stale_reads=totals["stale_reads"],
        empirical_load=max(per_server_load.values()),
        per_server_load=per_server_load,
        per_server_messages={
            server: messages[server] / num_operations for server in universe
        },
        per_server_attempted={
            server: attempted[server] / num_operations for server in universe
        },
        rounds=tuple(round_records),
        strategy=resolved,
    )
