"""A synchronous message layer connecting clients to replicas.

The paper's model is asynchronous-but-responsive: a client sends a request to
every member of a quorum and waits for all of their answers (Byzantine
replicas do answer — only crashed ones stay silent).  This layer models that
with synchronous request/response calls: the response from a crashed replica
is ``None``, everything else is delivered immediately.

The network also keeps per-server delivery counters, which the experiment
runner uses to measure the *empirical load* of an access strategy and compare
it with the analytic ``L(Q)`` of Definition 3.8.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.exceptions import SimulationError
from repro.simulation.faults import FaultScenario
from repro.simulation.server import ReplicaServer

__all__ = ["SynchronousNetwork"]


class SynchronousNetwork:
    """Connects a set of replicas and applies the fault scenario to deliveries.

    Parameters
    ----------
    servers:
        The replica objects, keyed by their server id.
    scenario:
        Which servers are crashed (never answer).  Byzantine behaviour lives
        in the replica objects themselves; the network only models silence.
    """

    def __init__(self, servers: dict[Hashable, ReplicaServer], scenario: FaultScenario):
        if not servers:
            raise SimulationError("a network needs at least one replica")
        self._servers = dict(servers)
        self.scenario = scenario
        #: Number of requests delivered to each server (crashed ones included:
        #: the request is sent even though no answer comes back).
        self.delivery_counts: dict[Hashable, int] = {
            server_id: 0 for server_id in self._servers
        }

    @property
    def server_ids(self) -> frozenset:
        """The identities of all replicas on the network."""
        return frozenset(self._servers)

    def server(self, server_id: Hashable) -> ReplicaServer:
        """Return the replica object with the given id (test/inspection hook)."""
        return self._servers[server_id]

    def send(self, server_id: Hashable, request: object) -> object | None:
        """Deliver ``request`` to one replica and return its response.

        Returns ``None`` when the replica has crashed.  Unknown server ids
        are a configuration error and raise.
        """
        server = self._servers.get(server_id)
        if server is None:
            raise SimulationError(f"no replica with id {server_id!r} on this network")
        self.delivery_counts[server_id] += 1
        if not self.scenario.is_responsive(server_id):
            return None
        if isinstance(request, type(None)):
            raise SimulationError("cannot deliver an empty request")
        # Dispatch on the request type using the replica's handlers.
        handler_name = {
            "TimestampRequest": "handle_timestamp",
            "ReadRequest": "handle_read",
            "WriteRequest": "handle_write",
        }.get(type(request).__name__)
        if handler_name is None:
            raise SimulationError(f"unsupported request type {type(request).__name__}")
        return getattr(server, handler_name)(request)

    def broadcast(self, server_ids: Iterable[Hashable], request: object) -> dict[Hashable, object | None]:
        """Deliver ``request`` to several replicas and collect their responses."""
        return {server_id: self.send(server_id, request) for server_id in server_ids}

    def empirical_loads(self, total_accesses: int) -> dict[Hashable, float]:
        """Return per-server access frequencies relative to ``total_accesses``.

        This is the empirical counterpart of the induced load ``l_w(u)``: the
        fraction of client operations that touched each server.
        """
        if total_accesses <= 0:
            raise SimulationError(f"total_accesses must be positive, got {total_accesses}")
        return {
            server_id: count / total_accesses
            for server_id, count in self.delivery_counts.items()
        }
