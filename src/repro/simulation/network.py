"""The synchronous message layer, as the zero-latency event-network special case.

The paper's model is asynchronous-but-responsive: a client sends a request to
every member of a quorum and waits for all of their answers (Byzantine
replicas do answer — only crashed ones stay silent).  This layer models that
with synchronous request/response calls: ``send`` returns the reply in the
same Python call, and the response from a crashed replica is ``None``.

Since the event-driven core landed, this is no longer a separate
implementation: :class:`SynchronousNetwork` wraps an
:class:`~repro.simulation.events.EventNetwork` with
``LatencyModel.zero()`` and perfectly reliable links, and pumps the private
event scheduler to quiescence inside each ``send``.  Delivery, dispatch and
accounting are therefore one code path shared with the concurrent layer, and
``tests/test_simulation_events.py`` holds the two to operation-for-operation
agreement.

Accounting (aligned with the vectorised engine's Definition 3.8 fix): the
network distinguishes **attempted** deliveries (every send — probes of
crashed servers and both write phases included) from **delivered** requests
(actually handled by a responsive replica).  Neither is the empirical *load*
of Definition 3.8 — that is a successful-operation access frequency and is
accounted at the client layer (``QuorumClient.successful_access_counts``,
aggregated by ``ReplicatedRegister.empirical_loads``).  The network exposes
its counters as per-operation *message rates*, a cost diagnostic mirroring
the engine's ``per_server_messages`` / ``per_server_attempted``.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.exceptions import SimulationError
from repro.simulation.events import EventNetwork, EventScheduler
from repro.simulation.faults import FaultScenario
from repro.simulation.server import ReplicaServer

__all__ = ["SynchronousNetwork"]


class SynchronousNetwork:
    """Connects a set of replicas with immediate request/response delivery.

    Parameters
    ----------
    servers:
        The replica objects, keyed by their server id.
    scenario:
        Which servers are crashed (never answer).  Byzantine behaviour lives
        in the replica objects themselves; the network only models silence.
    """

    def __init__(self, servers: dict[Hashable, ReplicaServer], scenario: FaultScenario):
        self.scenario = scenario
        self._scheduler = EventScheduler()
        # The zero-latency, loss-free special case: deliveries happen "now"
        # and no network randomness is ever drawn, so wrapping the event core
        # is observationally identical to the old hand-rolled synchronous
        # implementation (and shares its accounting).
        self._events = EventNetwork(servers, scenario, scheduler=self._scheduler)

    @property
    def server_ids(self) -> frozenset:
        """The identities of all replicas on the network."""
        return self._events.server_ids

    def server(self, server_id: Hashable) -> ReplicaServer:
        """Return the replica object with the given id (test/inspection hook)."""
        return self._events.server(server_id)

    @property
    def attempted_counts(self) -> dict[Hashable, int]:
        """Requests sent to each server, crashed destinations included."""
        return self._events.attempted_counts

    @property
    def delivered_counts(self) -> dict[Hashable, int]:
        """Requests actually handled by each (responsive) server."""
        return self._events.delivered_counts

    #: Backwards-compatible alias: the pre-split ``delivery_counts`` counted
    #: every send, which is the *attempted* tally under the new names.
    @property
    def delivery_counts(self) -> dict[Hashable, int]:
        return self._events.attempted_counts

    def send(self, server_id: Hashable, request: object) -> object | None:
        """Deliver ``request`` to one replica and return its response.

        Returns ``None`` when the replica has crashed.  Unknown server ids
        and empty requests are configuration errors and raise.
        """
        replies: list[object] = []
        self._events.send(server_id, request, lambda _sid, reply: replies.append(reply))
        self._scheduler.run()
        return replies[0] if replies else None

    def broadcast(self, server_ids: Iterable[Hashable], request: object) -> dict[Hashable, object | None]:
        """Deliver ``request`` to several replicas and collect their responses."""
        return {server_id: self.send(server_id, request) for server_id in server_ids}

    def empirical_message_rates(
        self, total_operations: int, *, which: str = "attempted"
    ) -> dict[Hashable, float]:
        """Per-server messages per client operation (a cost diagnostic).

        ``which="attempted"`` counts every send (failed probes to crashed
        servers and both write phases included) — the quantity the pre-fix
        ``empirical_loads`` conflated with the load, which can exceed 1 under
        heavy faults.  ``which="delivered"`` counts only requests a
        responsive server handled.  For the empirical *load* of
        Definition 3.8 (successful-operation access frequencies, never above
        1) use ``ReplicatedRegister.empirical_loads``.
        """
        if total_operations <= 0:
            raise SimulationError(
                f"total_operations must be positive, got {total_operations}"
            )
        if which == "attempted":
            counts = self._events.attempted_counts
        elif which == "delivered":
            counts = self._events.delivered_counts
        else:
            raise SimulationError(
                f"which must be 'attempted' or 'delivered', got {which!r}"
            )
        return {
            server_id: count / total_operations for server_id, count in counts.items()
        }
