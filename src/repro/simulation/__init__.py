"""Replicated-register simulation over masking quorum systems.

This subpackage implements the protocol the paper's quorum systems exist to
serve: the masking-quorum read/write register of [MR98a], with Byzantine and
crash fault injection, a synchronous network, and a workload runner that
measures empirical load and availability.

Three layers are provided:

* the **event-driven concurrent core** (:mod:`repro.simulation.events`,
  :class:`AsyncQuorumClient`, :mod:`repro.simulation.history`) — a
  discrete-event scheduler with per-link latency, loss/duplication and
  crash/recover timelines; clients are resumable state machines, so many of
  them interleave within one run and the produced concurrent histories are
  checked with a linearizability-style register checker
  (:func:`check_register_history`), behind :func:`run_event_workload`;
* the **message-level synchronous** simulator (:class:`ReplicatedRegister`,
  :class:`QuorumClient`, :class:`SynchronousNetwork`, the replica servers) —
  the zero-latency special case of the event core, one request object per
  delivery, used by the protocol-step tests and examples; and
* the **vectorised scenario engine** (:mod:`repro.simulation.engine`,
  :mod:`repro.simulation.scenarios`) — batched array execution of whole
  workloads over the bitmask incidence machinery, behind
  :func:`run_workload`.  See ``docs/simulation.md``.
"""

from repro.simulation.adversary import (
    AdaptiveScenario,
    AdversarialResult,
    AdversarialRound,
    AdversaryPolicy,
    GreedyLoadAdversary,
    StaleReadAdversary,
    run_adversarial_workload,
)
from repro.simulation.client import (
    AsyncQuorumClient,
    OperationResult,
    QuorumClient,
    RetryPolicy,
)
from repro.simulation.engine import WorkloadResult, resolve_strategy, run_scenario
from repro.simulation.events import (
    EventNetwork,
    EventScheduler,
    FaultTimeline,
    LatencyModel,
    LinkFaults,
)
from repro.simulation.faults import FaultInjector, FaultScenario
from repro.simulation.history import (
    EpochWindow,
    HistoryCheck,
    HistoryRecorder,
    OperationRecord,
    check_register_history,
)
from repro.simulation.messages import Timestamp, ValueTimestampPair
from repro.simulation.network import SynchronousNetwork
from repro.simulation.reconfig import (
    REOPTIMISE_POLICIES,
    EpochOutcome,
    MembershipTimeline,
    ReconfigEventResult,
    ReconfigResult,
    reoptimise_strategy,
    run_reconfig_event_workload,
    run_reconfig_workload,
)
from repro.simulation.register import ReplicatedRegister
from repro.simulation.runner import (
    EventWorkloadResult,
    build_replicas,
    run_event_workload,
    run_workload,
)
from repro.simulation.scenarios import (
    BYZANTINE_MODELS,
    TimingScenario,
    WorkloadScenario,
    blast_radius_scenario,
    byzantine_scenario,
    churn_scenario,
    correlated_failure_scenario,
    crash_recover_scenario,
    crash_scenario,
    fault_free_scenario,
    flaky_links_scenario,
    lattice_embedding,
    partition_scenario,
    percolation_scenario,
    random_crash_scenario,
    scenario_suite,
    slow_server_scenario,
    timing_scenario_suite,
)
from repro.simulation.server import BYZANTINE_BEHAVIOURS, ByzantineReplicaServer, ReplicaServer
from repro.simulation.traces import (
    TraceScenario,
    TraceWorkloadResult,
    hot_quorum_strategy,
    run_trace_workload,
)

__all__ = [
    "BYZANTINE_BEHAVIOURS",
    "BYZANTINE_MODELS",
    "REOPTIMISE_POLICIES",
    "AdaptiveScenario",
    "AdversarialResult",
    "AdversarialRound",
    "AdversaryPolicy",
    "AsyncQuorumClient",
    "ByzantineReplicaServer",
    "EpochOutcome",
    "EpochWindow",
    "EventNetwork",
    "EventScheduler",
    "EventWorkloadResult",
    "FaultInjector",
    "FaultScenario",
    "FaultTimeline",
    "GreedyLoadAdversary",
    "HistoryCheck",
    "HistoryRecorder",
    "LatencyModel",
    "LinkFaults",
    "MembershipTimeline",
    "OperationRecord",
    "OperationResult",
    "QuorumClient",
    "ReconfigEventResult",
    "ReconfigResult",
    "ReplicaServer",
    "ReplicatedRegister",
    "RetryPolicy",
    "StaleReadAdversary",
    "SynchronousNetwork",
    "Timestamp",
    "TimingScenario",
    "TraceScenario",
    "TraceWorkloadResult",
    "ValueTimestampPair",
    "WorkloadResult",
    "WorkloadScenario",
    "blast_radius_scenario",
    "build_replicas",
    "byzantine_scenario",
    "check_register_history",
    "churn_scenario",
    "correlated_failure_scenario",
    "crash_recover_scenario",
    "crash_scenario",
    "fault_free_scenario",
    "flaky_links_scenario",
    "hot_quorum_strategy",
    "lattice_embedding",
    "partition_scenario",
    "percolation_scenario",
    "random_crash_scenario",
    "reoptimise_strategy",
    "resolve_strategy",
    "run_adversarial_workload",
    "run_event_workload",
    "run_reconfig_event_workload",
    "run_reconfig_workload",
    "run_scenario",
    "run_trace_workload",
    "run_workload",
    "scenario_suite",
    "slow_server_scenario",
    "timing_scenario_suite",
]
