"""Replicated-register simulation over masking quorum systems.

This subpackage implements the protocol the paper's quorum systems exist to
serve: the masking-quorum read/write register of [MR98a], with Byzantine and
crash fault injection, a synchronous network, and a workload runner that
measures empirical load and availability.

Two layers are provided:

* the **message-level** simulator (:class:`ReplicatedRegister`,
  :class:`QuorumClient`, :class:`SynchronousNetwork`, the replica servers) —
  one request object per delivery, used by the protocol-step tests and
  examples; and
* the **vectorised scenario engine** (:mod:`repro.simulation.engine`,
  :mod:`repro.simulation.scenarios`) — batched array execution of whole
  workloads over the bitmask incidence machinery, behind
  :func:`run_workload`.  See ``docs/simulation.md``.
"""

from repro.simulation.client import OperationResult, QuorumClient
from repro.simulation.engine import WorkloadResult, resolve_strategy, run_scenario
from repro.simulation.faults import FaultInjector, FaultScenario
from repro.simulation.messages import Timestamp, ValueTimestampPair
from repro.simulation.network import SynchronousNetwork
from repro.simulation.register import ReplicatedRegister
from repro.simulation.runner import run_workload
from repro.simulation.scenarios import (
    BYZANTINE_MODELS,
    WorkloadScenario,
    byzantine_scenario,
    churn_scenario,
    correlated_failure_scenario,
    crash_scenario,
    fault_free_scenario,
    partition_scenario,
    random_crash_scenario,
    scenario_suite,
)
from repro.simulation.server import BYZANTINE_BEHAVIOURS, ByzantineReplicaServer, ReplicaServer

__all__ = [
    "BYZANTINE_BEHAVIOURS",
    "BYZANTINE_MODELS",
    "ByzantineReplicaServer",
    "FaultInjector",
    "FaultScenario",
    "OperationResult",
    "QuorumClient",
    "ReplicaServer",
    "ReplicatedRegister",
    "SynchronousNetwork",
    "Timestamp",
    "ValueTimestampPair",
    "WorkloadResult",
    "WorkloadScenario",
    "byzantine_scenario",
    "churn_scenario",
    "correlated_failure_scenario",
    "crash_scenario",
    "fault_free_scenario",
    "partition_scenario",
    "random_crash_scenario",
    "resolve_strategy",
    "run_scenario",
    "run_workload",
    "scenario_suite",
]
