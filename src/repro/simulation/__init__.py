"""Replicated-register simulation over masking quorum systems.

This subpackage implements the protocol the paper's quorum systems exist to
serve: the masking-quorum read/write register of [MR98a], with Byzantine and
crash fault injection, a synchronous network, and a workload runner that
measures empirical load and availability.
"""

from repro.simulation.client import OperationResult, QuorumClient
from repro.simulation.faults import FaultInjector, FaultScenario
from repro.simulation.messages import Timestamp, ValueTimestampPair
from repro.simulation.network import SynchronousNetwork
from repro.simulation.register import ReplicatedRegister
from repro.simulation.runner import WorkloadResult, run_workload
from repro.simulation.server import BYZANTINE_BEHAVIOURS, ByzantineReplicaServer, ReplicaServer

__all__ = [
    "BYZANTINE_BEHAVIOURS",
    "ByzantineReplicaServer",
    "FaultInjector",
    "FaultScenario",
    "OperationResult",
    "QuorumClient",
    "ReplicaServer",
    "ReplicatedRegister",
    "SynchronousNetwork",
    "Timestamp",
    "ValueTimestampPair",
    "WorkloadResult",
    "run_workload",
]
