"""Membership-reconfiguration workloads: epochs driven through both engines.

A :class:`MembershipTimeline` pairs a :class:`~repro.core.membership.Membership`
(the epoch sequence of join/sever events) with the fraction of the workload
spent in each epoch — the membership analogue of
:class:`~repro.simulation.events.FaultTimeline`, which only toggles
responsiveness of a fixed universe.  :func:`run_reconfig_workload` drives the
vectorised engine through the epochs and :func:`run_reconfig_event_workload`
drives the event-driven protocol stack, stitching the per-epoch histories
into one timeline checked with the epoch-extended register checker
(:func:`~repro.simulation.history.check_register_history` with ``epochs=``).

Semantics
---------
* The register **reinitialises at each reconfiguration** (no state transfer):
  each epoch starts from the initial pair, and the first operation of an
  epoch is therefore a write (the engines already force this).
* The quorum system is **rebound per epoch**
  (:func:`~repro.core.membership.rebind_system` via ``Membership.rebind``):
  construction parameters are recomputed as a pure function of the epoch's
  size, and the masking parameter is clamped to the epoch's own bound.
* The access strategy is **re-optimised per epoch** under one of three
  policies: ``"reweight"`` renormalises the previous epoch's strategy over
  its surviving quorums and falls back to a full re-solve when nothing
  survives, ``"resolve"`` always re-solves the load LP (or re-samples, for
  implicit systems), and ``"uniform"`` rebuilds the uniform strategy.
* All epochs consume **one continuing rng stream**, so a run is a
  deterministic function of the seed and — because each epoch slice is a
  plain :func:`~repro.simulation.engine.run_scenario` call — the vectorised
  and sequential modes stay bit-for-bit identical.

``docs/membership.md`` documents the epoch model and the checker rules at
epoch boundaries.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, replace

import numpy as np

from repro.core.membership import Epoch, Membership
from repro.core.quorum_system import QuorumSystem
from repro.core.rng import ensure_rng
from repro.core.strategy import Strategy
from repro.exceptions import SimulationError
from repro.simulation.engine import WorkloadResult, resolve_strategy, run_scenario
from repro.simulation.history import (
    EpochWindow,
    HistoryCheck,
    check_register_history,
)
from repro.simulation.runner import run_event_workload
from repro.simulation.scenarios import WorkloadScenario

__all__ = [
    "REOPTIMISE_POLICIES",
    "EpochOutcome",
    "MembershipTimeline",
    "ReconfigEventResult",
    "ReconfigResult",
    "reoptimise_strategy",
    "run_reconfig_event_workload",
    "run_reconfig_workload",
]

#: Strategy re-optimisation policies applied on epoch change.
REOPTIMISE_POLICIES = ("reweight", "resolve", "uniform")


@dataclass(frozen=True)
class MembershipTimeline:
    """A membership epoch sequence spread over a workload.

    Attributes
    ----------
    membership:
        The epoch sequence (initial universe plus join/sever events).
    fractions:
        Fraction of the workload's operations spent in each epoch; must be
        positive and sum to 1 (equal split when omitted).
    """

    membership: Membership
    fractions: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        fractions = self.fractions
        if not fractions:
            count = self.membership.num_epochs
            fractions = tuple(1.0 / count for _ in range(count))
            object.__setattr__(self, "fractions", fractions)
        if len(fractions) != self.membership.num_epochs:
            raise SimulationError(
                f"{self.membership.num_epochs} epochs but {len(fractions)} fractions"
            )
        if any(fraction <= 0.0 for fraction in fractions):
            raise SimulationError("epoch fractions must be positive")
        if abs(sum(fractions) - 1.0) > 1e-9:
            raise SimulationError(
                f"epoch fractions sum to {sum(fractions)}, expected 1"
            )

    @property
    def num_epochs(self) -> int:
        return self.membership.num_epochs

    def operations_per_epoch(self, num_operations: int) -> tuple[int, ...]:
        """Split an operation budget over the epochs (each gets at least one).

        Boundaries are the cumulative fractions rounded down, bumped so every
        epoch runs at least one operation; the final epoch absorbs the
        remainder — the same convention as
        :meth:`~repro.simulation.scenarios.WorkloadScenario.phase_of_operations`.
        """
        count = self.num_epochs
        if num_operations < count:
            raise SimulationError(
                f"need at least one operation per epoch: {num_operations} "
                f"operations over {count} epochs"
            )
        boundaries = np.floor(
            np.cumsum(self.fractions) * num_operations
        ).astype(np.int64)
        # Boundaries must be strictly increasing (one operation per epoch
        # minimum) and leave room for every epoch still to come.
        previous = 0
        for position in range(count):
            ceiling = num_operations - (count - 1 - position)
            previous = int(min(max(boundaries[position], previous + 1), ceiling))
            boundaries[position] = previous
        boundaries[-1] = num_operations
        counts = np.diff(boundaries, prepend=0)
        return tuple(int(value) for value in counts)


@dataclass(frozen=True)
class EpochOutcome:
    """One epoch's slice of a reconfiguration workload.

    ``policy`` records the re-optimisation that actually happened for the
    epoch's strategy: ``"initial"`` for epoch 0, else ``"reweight"``,
    ``"resolve"`` or ``"uniform"`` (a requested re-weight that found no
    surviving quorum is reported as the ``"resolve"`` it fell back to).
    """

    index: int
    n: int
    b: int
    system_name: str
    policy: str
    support_size: int
    result: WorkloadResult
    strategy: Strategy | None = None

    def to_dict(self) -> dict:
        return {
            "epoch": self.index,
            "n": self.n,
            "b": self.b,
            "system": self.system_name,
            "policy": self.policy,
            "support_size": self.support_size,
            "operations": self.result.operations,
            "availability": self.result.availability,
            "empirical_load": self.result.empirical_load,
            "consistency_violations": self.result.consistency_violations,
            "stale_reads": self.result.stale_reads,
        }


@dataclass(frozen=True)
class ReconfigResult:
    """Aggregate outcome of a reconfiguration workload (vectorised engine)."""

    outcomes: tuple[EpochOutcome, ...]

    @property
    def num_epochs(self) -> int:
        return len(self.outcomes)

    @property
    def operations(self) -> int:
        return sum(outcome.result.operations for outcome in self.outcomes)

    @property
    def failed_operations(self) -> int:
        return sum(outcome.result.failed_operations for outcome in self.outcomes)

    @property
    def consistency_violations(self) -> int:
        return sum(
            outcome.result.consistency_violations for outcome in self.outcomes
        )

    @property
    def stale_reads(self) -> int:
        return sum(outcome.result.stale_reads for outcome in self.outcomes)

    @property
    def availability(self) -> float:
        total = self.operations
        if total == 0:
            return 0.0
        return (total - self.failed_operations) / total

    @property
    def is_consistent(self) -> bool:
        return self.consistency_violations == 0

    def to_dict(self) -> dict:
        return {
            "num_epochs": self.num_epochs,
            "operations": self.operations,
            "availability": self.availability,
            "consistency_violations": self.consistency_violations,
            "stale_reads": self.stale_reads,
            "epochs": [outcome.to_dict() for outcome in self.outcomes],
        }


@dataclass(frozen=True)
class ReconfigEventResult:
    """Aggregate outcome of a reconfiguration workload (event engine).

    ``check`` is the verdict of the epoch-extended register checker over the
    stitched history; ``windows`` are the epoch windows it was checked
    against, and ``history`` the combined (time-shifted) records.
    """

    outcomes: tuple[EpochOutcome, ...]
    windows: tuple[EpochWindow, ...]
    check: HistoryCheck
    history: tuple = ()

    @property
    def num_epochs(self) -> int:
        return len(self.outcomes)

    @property
    def operations(self) -> int:
        return sum(outcome.result.operations for outcome in self.outcomes)

    @property
    def is_consistent(self) -> bool:
        return self.check.ok

    def to_dict(self) -> dict:
        return {
            "num_epochs": self.num_epochs,
            "operations": self.operations,
            "check_ok": self.check.ok,
            "fabricated_reads": self.check.fabricated_reads,
            "stale_reads": self.check.stale_reads,
            "cross_epoch_reads": self.check.cross_epoch_reads,
            "foreign_quorum_members": self.check.foreign_quorum_members,
            "epochs": [outcome.to_dict() for outcome in self.outcomes],
        }


def _full_resolve(rebound: QuorumSystem) -> Strategy:
    """Full per-epoch re-solve: the load LP, or re-sampling when implicit."""
    if getattr(rebound, "is_implicit", False):
        return rebound.sampled_optimal_strategy()
    return resolve_strategy(rebound, "optimal")


def reoptimise_strategy(
    system: QuorumSystem,
    membership: Membership,
    epoch_index: int,
    *,
    previous: Strategy | None = None,
    policy: str = "reweight",
) -> tuple[Strategy, str]:
    """Produce the access strategy for an epoch under the given policy.

    Returns ``(strategy, applied)`` where ``applied`` names the policy that
    actually produced the strategy: a ``"reweight"`` whose surviving support
    is empty falls back to — and is reported as — ``"resolve"``.  This is
    the unit the membership benchmark times (incremental re-weight vs. full
    LP re-solve).
    """
    if policy not in REOPTIMISE_POLICIES:
        raise SimulationError(
            f"unknown re-optimisation policy {policy!r}; "
            f"choose one of {REOPTIMISE_POLICIES}"
        )
    rebound = membership.rebind(system, epoch_index)
    if policy == "uniform":
        return resolve_strategy(rebound, None), "uniform"
    if policy == "reweight" and previous is not None:
        restricted = previous.restricted_to(rebound.universe.elements)
        if restricted is not None:
            return restricted, "reweight"
    return _full_resolve(rebound), "resolve"


def _epoch_b(b: int | None, rebound: QuorumSystem) -> int:
    """The epoch's own masking parameter: the requested ``b`` clamped to
    what the epoch's rebound system can mask."""
    bound = rebound.masking_bound()
    if b is None:
        return bound
    return min(b, bound)


def _check_initial(system: QuorumSystem, timeline: MembershipTimeline) -> None:
    if timeline.membership.initial != system.universe:
        raise SimulationError(
            "the timeline's initial universe must match the deployed system's "
            f"universe (epoch 0 has n={timeline.membership.initial.size}, "
            f"system has n={system.universe.size})"
        )


def run_reconfig_workload(
    system: QuorumSystem,
    *,
    timeline: MembershipTimeline,
    b: int | None = None,
    num_operations: int = 300,
    scenario_factory: Callable[[Epoch, QuorumSystem], WorkloadScenario | None]
    | None = None,
    policy: str = "reweight",
    strategy: Strategy | str | None = None,
    rng: np.random.Generator | int | None = None,
    write_fraction: float = 0.5,
    max_attempts: int = 10,
    allow_overload: bool = False,
    mode: str = "vectorised",
) -> ReconfigResult:
    """Drive the vectorised engine through a membership timeline.

    Parameters
    ----------
    system:
        The quorum system deployed in epoch 0 (its universe must equal the
        timeline's initial universe).
    timeline:
        Epoch sequence plus per-epoch operation fractions.
    b:
        Masking parameter; clamped per epoch to the rebound system's own
        bound (``None`` uses each epoch's bound directly).
    num_operations:
        Total operations across all epochs.
    scenario_factory:
        Optional callable ``(epoch, rebound_system) -> scenario`` injecting
        per-epoch faults (``None`` runs every epoch fault-free).
    policy:
        Strategy re-optimisation policy on epoch change (see
        :func:`reoptimise_strategy`).
    strategy:
        Epoch-0 strategy specification (``None``/``"uniform"``/``"optimal"``
        or a :class:`~repro.core.strategy.Strategy`).
    mode:
        ``"vectorised"`` or ``"sequential"`` — forwarded to
        :func:`~repro.simulation.engine.run_scenario`; both modes consume
        the same continuing rng stream and agree bit for bit.
    """
    _check_initial(system, timeline)
    rng = ensure_rng(rng)
    operations = timeline.operations_per_epoch(num_operations)
    membership = timeline.membership

    outcomes: list[EpochOutcome] = []
    current: Strategy | None = None
    for epoch in membership:
        rebound = membership.rebind(system, epoch.index)
        if epoch.index == 0:
            current = resolve_strategy(rebound, strategy)
            applied = "initial"
        else:
            current, applied = reoptimise_strategy(
                system, membership, epoch.index, previous=current, policy=policy
            )
        epoch_b = _epoch_b(b, rebound)
        scenario = (
            scenario_factory(epoch, rebound) if scenario_factory is not None else None
        )
        result = run_scenario(
            rebound,
            b=epoch_b,
            num_operations=operations[epoch.index],
            scenario=scenario,
            strategy=current,
            rng=rng,
            write_fraction=write_fraction,
            max_attempts=max_attempts,
            allow_overload=allow_overload,
            mode=mode,
            epoch=epoch.index,
        )
        outcomes.append(
            EpochOutcome(
                index=epoch.index,
                n=epoch.n,
                b=epoch_b,
                system_name=rebound.name,
                policy=applied,
                support_size=len(current),
                result=result,
                strategy=current,
            )
        )
    return ReconfigResult(outcomes=tuple(outcomes))


def run_reconfig_event_workload(
    system: QuorumSystem,
    *,
    timeline: MembershipTimeline,
    b: int | None = None,
    num_clients: int = 4,
    operations_per_client: int = 20,
    policy: str = "reweight",
    strategy: Strategy | str | None = None,
    rng: np.random.Generator | int | None = None,
    write_fraction: float = 0.5,
    max_attempts: int = 10,
    keep_history: bool = True,
) -> ReconfigEventResult:
    """Drive the event-driven protocol stack through a membership timeline.

    Each epoch runs its slice of every client's operation budget
    (``operations_per_client`` split by the timeline's fractions) over the
    epoch's rebound system, the per-epoch histories are stitched onto one
    time axis, and the combined history is checked with the epoch-extended
    register checker — zero violations expected at ≤ b faults per epoch.
    """
    _check_initial(system, timeline)
    rng = ensure_rng(rng)
    per_client = timeline.operations_per_epoch(operations_per_client)
    membership = timeline.membership

    outcomes: list[EpochOutcome] = []
    windows: list[EpochWindow] = []
    combined: list = []
    offset = 0.0
    current: Strategy | None = None
    for epoch in membership:
        rebound = membership.rebind(system, epoch.index)
        if epoch.index == 0:
            current = resolve_strategy(rebound, strategy)
            applied = "initial"
        else:
            current, applied = reoptimise_strategy(
                system, membership, epoch.index, previous=current, policy=policy
            )
        epoch_b = _epoch_b(b, rebound)
        result = run_event_workload(
            rebound,
            b=epoch_b,
            num_clients=num_clients,
            operations_per_client=per_client[epoch.index],
            strategy=current,
            rng=rng,
            write_fraction=write_fraction,
            max_attempts=max_attempts,
            keep_history=True,
        )
        for record in result.history:
            combined.append(
                replace(
                    record,
                    invoked_at=record.invoked_at + offset,
                    responded_at=record.responded_at + offset,
                )
            )
        span = offset + result.duration + 1.0
        windows.append(
            EpochWindow(
                index=epoch.index,
                start=offset,
                end=span,
                members=epoch.member_set(),
                b=epoch_b,
            )
        )
        offset = span
        outcomes.append(
            EpochOutcome(
                index=epoch.index,
                n=epoch.n,
                b=epoch_b,
                system_name=rebound.name,
                policy=applied,
                support_size=len(current),
                result=result,
                strategy=current,
            )
        )
    windows[-1] = replace(windows[-1], end=float("inf"))
    check = check_register_history(combined, epochs=windows)
    return ReconfigEventResult(
        outcomes=tuple(outcomes),
        windows=tuple(windows),
        check=check,
        history=tuple(combined) if keep_history else (),
    )
