"""Discrete-event core of the message-level simulator.

The original message layer was strictly synchronous: a client called
``network.send`` and got the reply in the same Python call, so only one
client could be "on the wire" at a time and nothing timing-dependent —
concurrent readers and writers, slow-but-correct servers, messages lost or
reordered in flight — could be exercised.  This module replaces that with a
discrete-event simulation:

* :class:`EventScheduler` — a heap-based event loop with deterministic
  ``(time, sequence)`` ordering and lazy cancellation;
* :class:`LatencyModel` — per-link message delays (constant + uniform jitter
  + exponential tail), with per-server multipliers for asymmetric links;
* :class:`LinkFaults` — message loss and duplication probabilities
  (reordering falls out of random per-message latencies);
* :class:`FaultTimeline` — a time-indexed schedule of
  :class:`~repro.simulation.faults.FaultScenario` states, so servers can
  crash and recover *mid-operation*;
* :class:`EventNetwork` — the asynchronous message layer: ``send`` schedules
  a delivery and returns immediately; replies come back through callbacks at
  a later simulated time.

The old synchronous layer survives as the **zero-latency special case**:
:class:`~repro.simulation.network.SynchronousNetwork` wraps an
:class:`EventNetwork` with ``LatencyModel.zero()`` and pumps the scheduler to
quiescence inside each ``send`` — one code path for delivery, dispatch and
accounting across both layers (and the agreement test in
``tests/test_simulation_events.py`` holds the two to operation-for-operation
equality).

Accounting (aligned with the vectorised engine's Definition 3.8 fix): the
network keeps **attempted** deliveries (every send, crashed/lost included)
separate from **delivered** requests (actually handled by a responsive
server); load normalisation by successful operations lives one level up, in
the clients (see :mod:`repro.simulation.client`).
"""

from __future__ import annotations

import heapq
import itertools
from bisect import bisect_right
from collections.abc import Callable, Hashable, Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core import floats
from repro.core.rng import ensure_rng
from repro.core.universe import Universe
from repro.exceptions import SimulationError
from repro.simulation.faults import FaultScenario
from repro.simulation.server import ReplicaServer

__all__ = [
    "EventNetwork",
    "EventScheduler",
    "FaultTimeline",
    "LatencyModel",
    "LinkFaults",
    "ScheduledEvent",
]


# ----------------------------------------------------------------------
# The event loop.
# ----------------------------------------------------------------------
@dataclass(order=True)
class ScheduledEvent:
    """A callback scheduled at a simulated time.

    Events are totally ordered by ``(time, sequence)``: the sequence number
    breaks ties in scheduling order, which keeps runs deterministic for a
    fixed seed.  Cancellation is lazy — the scheduler skips cancelled events
    when it pops them.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it."""
        self.cancelled = True


class EventScheduler:
    """A heap-based discrete-event loop.

    ``schedule`` inserts a callback at ``now + delay`` and returns a handle
    that can be cancelled; ``run`` pops events in time order, advancing
    :attr:`now` to each event's time before firing it.  Callbacks may
    schedule further events (that is how protocol state machines resume
    themselves).
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[ScheduledEvent] = []
        self._sequence = itertools.count()
        #: Number of events fired (cancelled events excluded).
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} in the past")
        event = ScheduledEvent(self.now + delay, next(self._sequence), callback)
        heapq.heappush(self._heap, event)
        return event

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for event in self._heap if not event.cancelled)

    def run(self, *, until: float | None = None, max_events: int | None = None) -> int:
        """Fire events in time order; return how many fired.

        Stops when the heap is empty, when the next event lies beyond
        ``until``, or after ``max_events`` events (a guard against runaway
        protocol loops).  Events exactly at ``until`` still fire.
        """
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                break
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and event.time > until:
                break
            heapq.heappop(self._heap)
            self.now = max(self.now, event.time)
            event.callback()
            fired += 1
            self.events_processed += 1
        if until is not None:
            self.now = max(self.now, until)
        return fired


# ----------------------------------------------------------------------
# Timing knobs.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LatencyModel:
    """Per-link one-way message delay.

    A delay sample is ``(base + U[0, jitter) + Exp(tail_mean)) * factor``,
    where ``factor`` is the per-server multiplier (defaults to 1).  With all
    three parameters zero the model draws **no randomness at all**, which is
    what makes the zero-latency event network reproduce the synchronous
    layer's rng stream exactly.

    Parameters
    ----------
    base:
        Deterministic delay component applied to every message.
    jitter:
        Width of the uniform random component; any positive jitter makes
        messages overtake each other (reordering).
    tail_mean:
        Mean of an exponential component modelling congestion tails.
    server_factors:
        Per-server multiplier on *link* delays to/from that server, as a
        tuple of ``(server_id, factor)`` pairs — asymmetric links (a distant
        rack, a congested uplink).  Slow-but-correct *servers* are a fault
        state, not a link property: use ``FaultScenario.slow``, which
        stretches service time at the replica.
    """

    base: float = 0.0
    jitter: float = 0.0
    tail_mean: float = 0.0
    server_factors: tuple = ()

    def __post_init__(self):
        if self.base < 0 or self.jitter < 0 or self.tail_mean < 0:
            raise SimulationError("latency components must be non-negative")
        for server_id, factor in self.server_factors:
            if factor <= 0:
                raise SimulationError(
                    f"latency factor for server {server_id!r} must be positive, got {factor}"
                )

    @staticmethod
    def zero() -> "LatencyModel":
        """The degenerate model: every message arrives instantly."""
        return LatencyModel()

    @staticmethod
    def uniform(base: float, jitter: float) -> "LatencyModel":
        """Constant floor plus uniform jitter — the workhorse LAN model."""
        return LatencyModel(base=base, jitter=jitter)

    @property
    def is_zero(self) -> bool:
        """Whether the model is deterministic zero delay (draws no randomness)."""
        return (
            floats.is_zero(self.base)
            and floats.is_zero(self.jitter)
            and floats.is_zero(self.tail_mean)
        )

    def factor_for(self, server_id: Hashable) -> float:
        for known_id, factor in self.server_factors:
            if known_id == server_id:
                return factor
        return 1.0

    def sample(self, rng: np.random.Generator, server_id: Hashable) -> float:
        """Draw one one-way delay for a message to/from ``server_id``."""
        if self.is_zero:
            return 0.0
        delay = self.base
        if self.jitter > 0.0:
            delay += self.jitter * rng.random()
        if self.tail_mean > 0.0:
            delay += rng.exponential(self.tail_mean)
        return delay * self.factor_for(server_id)


@dataclass(frozen=True)
class LinkFaults:
    """Message-level link misbehaviour.

    Each direction of each request/reply is independently lost with
    probability ``loss`` and duplicated with probability ``duplication``.
    A lost *request* looks to the client exactly like a crashed server (the
    per-request timeout fires); a lost *reply* additionally means the server
    did the work without the client learning of it.  With both probabilities
    zero no randomness is drawn.
    """

    loss: float = 0.0
    duplication: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.loss < 1.0:
            raise SimulationError(f"loss probability must lie in [0, 1), got {self.loss}")
        if not 0.0 <= self.duplication <= 1.0:
            raise SimulationError(
                f"duplication probability must lie in [0, 1], got {self.duplication}"
            )

    @staticmethod
    def none() -> "LinkFaults":
        """Perfectly reliable links."""
        return LinkFaults()

    @property
    def is_clean(self) -> bool:
        return floats.is_zero(self.loss) and floats.is_zero(self.duplication)

    def copies(self, rng: np.random.Generator) -> int:
        """How many copies of a message actually travel (0 = lost)."""
        if self.is_clean:
            return 1
        if self.loss > 0.0 and rng.random() < self.loss:
            return 0
        if self.duplication > 0.0 and rng.random() < self.duplication:
            return 2
        return 1


class FaultTimeline:
    """A time-indexed schedule of fault states.

    ``transitions`` is a sequence of ``(time, FaultScenario)`` pairs: the
    scenario at the largest time not exceeding the query time is active.  A
    single static scenario is the one-entry special case.  This is what lets
    servers crash and recover *mid-operation*: the network consults the
    timeline at each delivery's simulated time, so a request sent before a
    crash can find the server dead on arrival (and vice versa after a
    recovery).
    """

    def __init__(self, transitions: Sequence[tuple[float, FaultScenario]]):
        if not transitions:
            raise SimulationError("a fault timeline needs at least one state")
        ordered = sorted(transitions, key=lambda pair: pair[0])
        if ordered[0][0] > 0.0:
            raise SimulationError(
                f"the first timeline state must start at time 0, got {ordered[0][0]}"
            )
        times = [time for time, _ in ordered]
        if len(set(times)) != len(times):
            raise SimulationError("timeline transition times must be distinct")
        self._times = times
        self._scenarios = [scenario for _, scenario in ordered]

    @staticmethod
    def static(scenario: FaultScenario) -> "FaultTimeline":
        """Wrap a single scenario as an always-active timeline."""
        return FaultTimeline([(0.0, scenario)])

    @property
    def scenarios(self) -> tuple[FaultScenario, ...]:
        return tuple(self._scenarios)

    @property
    def byzantine(self) -> frozenset:
        """Servers Byzantine in *any* state (replica behaviour is fixed per run)."""
        result: frozenset = frozenset()
        for scenario in self._scenarios:
            result |= scenario.byzantine
        return result

    @property
    def max_byzantine(self) -> int:
        """The largest simultaneous Byzantine count over all states."""
        return max(scenario.num_byzantine for scenario in self._scenarios)

    def active(self, time: float) -> FaultScenario:
        """The fault state in force at simulated ``time``."""
        return self._scenarios[bisect_right(self._times, time) - 1]

    def validate_against(self, universe: Universe) -> None:
        """Check that every state only mentions servers of ``universe``."""
        universe_set = universe.as_frozenset()
        for time, state in zip(self._times, self._scenarios):
            unknown = (
                state.byzantine
                | state.crashed
                | frozenset(server_id for server_id, _ in state.slow)
            ) - universe_set
            if unknown:
                raise SimulationError(
                    f"fault state at time {time} mentions servers outside the "
                    f"universe: {sorted(unknown, key=repr)[:4]}"
                )

    def is_responsive(self, server_id: Hashable, time: float) -> bool:
        return self.active(time).is_responsive(server_id)

    def slow_factor(self, server_id: Hashable, time: float) -> float:
        return self.active(time).slow_factor(server_id)


# ----------------------------------------------------------------------
# The asynchronous message layer.
# ----------------------------------------------------------------------
_HANDLERS = {
    "TimestampRequest": "handle_timestamp",
    "ReadRequest": "handle_read",
    "WriteRequest": "handle_write",
}


class EventNetwork:
    """Connects replicas through the event scheduler.

    ``send`` charges the attempted-delivery counter, samples the request's
    fate (latency, loss, duplication) and returns immediately; the reply — if
    the server is responsive at delivery time and no message is lost — comes
    back through ``on_reply(server_id, reply)`` at a strictly later scheduler
    step.  Crashed servers and lost messages produce *nothing*: detecting
    silence is the caller's job (clients run per-request timeouts).

    Parameters
    ----------
    servers:
        Replica objects keyed by server id.
    timeline:
        Fault states over time (a static :class:`FaultScenario` is wrapped
        automatically).  Slow-server factors of the active state stretch the
        server's service time.
    scheduler:
        The event loop deliveries are scheduled on.
    latency / faults:
        Link timing and reliability knobs; both default to the clean
        zero-latency model under which no network randomness is drawn.
    rng:
        Randomness source for latency samples and loss/duplication draws
        (unused — and never advanced — when both models are deterministic).
    """

    def __init__(
        self,
        servers: dict[Hashable, ReplicaServer],
        timeline: FaultTimeline | FaultScenario,
        *,
        scheduler: EventScheduler,
        latency: LatencyModel | None = None,
        faults: LinkFaults | None = None,
        rng: np.random.Generator | None = None,
    ):
        if not servers:
            raise SimulationError("a network needs at least one replica")
        if isinstance(timeline, FaultScenario):
            timeline = FaultTimeline.static(timeline)
        self._servers = dict(servers)
        self.timeline = timeline
        self.scheduler = scheduler
        self.latency = latency if latency is not None else LatencyModel.zero()
        self.faults = faults if faults is not None else LinkFaults.none()
        self.rng = ensure_rng(rng)
        #: Requests sent to each server (crashed/lost ones included: the
        #: client pays the message either way).
        self.attempted_counts: dict[Hashable, int] = {sid: 0 for sid in self._servers}
        #: Requests actually handled by a responsive server.
        self.delivered_counts: dict[Hashable, int] = {sid: 0 for sid in self._servers}

    @property
    def server_ids(self) -> frozenset:
        """The identities of all replicas on the network."""
        return frozenset(self._servers)

    def server(self, server_id: Hashable) -> ReplicaServer:
        """Return the replica object with the given id (test/inspection hook)."""
        return self._servers[server_id]

    @property
    def now(self) -> float:
        return self.scheduler.now

    def _dispatch(self, server: ReplicaServer, request: object) -> object:
        handler_name = _HANDLERS.get(type(request).__name__)
        if handler_name is None:
            raise SimulationError(f"unsupported request type {type(request).__name__}")
        return getattr(server, handler_name)(request)

    def send(
        self,
        server_id: Hashable,
        request: object,
        on_reply: Callable[[Hashable, object], None],
    ) -> None:
        """Send ``request`` towards one replica; the reply arrives by callback.

        The request travels for one sampled latency, is handled (or silently
        dropped, if the server is crashed *at delivery time* or the message
        is lost), and the reply travels back for another sampled latency —
        possibly overtaking other messages.  Duplicated requests are handled
        twice; the caller sees at most one reply per handled copy and must
        de-duplicate by ``server_id`` if it cares.
        """
        server = self._servers.get(server_id)
        if server is None:
            raise SimulationError(f"no replica with id {server_id!r} on this network")
        if request is None:
            raise SimulationError("cannot deliver an empty request")
        self.attempted_counts[server_id] += 1
        for _ in range(self.faults.copies(self.rng)):
            request_delay = self.latency.sample(self.rng, server_id)
            self.scheduler.schedule(
                request_delay,
                lambda: self._deliver(server_id, server, request, on_reply),
            )

    def _deliver(
        self,
        server_id: Hashable,
        server: ReplicaServer,
        request: object,
        on_reply: Callable[[Hashable, object], None],
    ) -> None:
        arrival = self.scheduler.now
        if not self.timeline.is_responsive(server_id, arrival):
            return  # dead on arrival: the client's timeout is the only signal
        self.delivered_counts[server_id] += 1
        reply = self._dispatch(server, request)
        slow = self.timeline.slow_factor(server_id, arrival)
        # A slow server stretches its service time by (factor - 1) mean link
        # latencies; with a zero-latency model there is no timescale to
        # stretch, so slowness degenerates to zero delay (the synchronous
        # special case cannot express it).
        service_delay = 0.0
        if not self.latency.is_zero and slow > 1.0:
            mean_latency = (
                self.latency.base + 0.5 * self.latency.jitter + self.latency.tail_mean
            )
            service_delay = (slow - 1.0) * mean_latency
        for _ in range(self.faults.copies(self.rng)):
            reply_delay = self.latency.sample(self.rng, server_id)
            self.scheduler.schedule(
                service_delay + reply_delay, lambda: on_reply(server_id, reply)
            )

    def broadcast(
        self,
        server_ids: Iterable[Hashable],
        request: object,
        on_reply: Callable[[Hashable, object], None],
    ) -> None:
        """Send ``request`` to several replicas; replies arrive individually."""
        for server_id in server_ids:
            self.send(server_id, request, on_reply)

    def empirical_message_rates(self, total_operations: int) -> dict[Hashable, float]:
        """Attempted deliveries per server, per client operation.

        This is a *message* rate (retries, both write phases and probes to
        crashed servers included) — a cost diagnostic, **not** the empirical
        load of Definition 3.8.  The load (successful-operation access
        frequency) is accounted at the client layer; see
        ``QuorumClient.successful_access_counts``.
        """
        if total_operations <= 0:
            raise SimulationError(
                f"total_operations must be positive, got {total_operations}"
            )
        return {
            server_id: count / total_operations
            for server_id, count in self.attempted_counts.items()
        }
