"""Replica servers for the masking-quorum replicated register.

A correct replica stores a single ``(value, timestamp)`` pair and serves
three request types: timestamp queries, read queries and (conditional)
writes.  Byzantine replicas answer the same requests but may lie; several
canonical adversarial behaviours are provided, chosen to attack exactly the
properties the masking quorum is supposed to protect (fabricated high
timestamps, stale values, garbage values).  Crashed replicas never answer —
the network layer models that by returning ``None``.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.core.rng import ensure_rng
from repro.exceptions import SimulationError
from repro.simulation.messages import (
    ReadReply,
    ReadRequest,
    Timestamp,
    TimestampReply,
    TimestampRequest,
    ValueTimestampPair,
    WriteAck,
    WriteRequest,
)

__all__ = ["ReplicaServer", "ByzantineReplicaServer", "BYZANTINE_BEHAVIOURS"]


class ReplicaServer:
    """A correct replica of the shared register.

    Parameters
    ----------
    server_id:
        The identity of this replica (an element of the quorum system's
        universe).
    initial_value:
        The value held before any write; paired with the zero timestamp.
    """

    def __init__(self, server_id: Hashable, initial_value: object = None):
        self.server_id = server_id
        self._pair = ValueTimestampPair(value=initial_value, timestamp=Timestamp.zero())
        #: Number of requests served, used for empirical load measurements.
        self.access_count = 0

    @property
    def current_pair(self) -> ValueTimestampPair:
        """The replica's current ``(value, timestamp)`` pair."""
        return self._pair

    def restore(self, pair: ValueTimestampPair) -> None:
        """Install recovered state without counting it as an access.

        The durable-storage recovery path (:mod:`repro.storage`) calls this
        once, before the replica serves any request, so a restarted process
        answers with its pre-crash register instead of the zero pair.  A
        recovered pair can only be *newer* than the fresh zero state, so the
        protocol's install invariant (timestamps never move backwards) is
        preserved.
        """
        if pair.timestamp > self._pair.timestamp:
            self._pair = pair

    # ------------------------------------------------------------------
    # Request handlers.
    # ------------------------------------------------------------------
    def handle_timestamp(self, request: TimestampRequest) -> TimestampReply:
        """Return the timestamp of the currently stored value."""
        self.access_count += 1
        return TimestampReply(server_id=self.server_id, timestamp=self._pair.timestamp)

    def handle_read(self, request: ReadRequest) -> ReadReply:
        """Return the currently stored ``(value, timestamp)`` pair."""
        self.access_count += 1
        return ReadReply(server_id=self.server_id, pair=self._pair)

    def handle_write(self, request: WriteRequest) -> WriteAck:
        """Install the written pair if it is newer than the stored one."""
        self.access_count += 1
        if request.pair.timestamp > self._pair.timestamp:
            self._pair = request.pair
            return WriteAck(server_id=self.server_id, accepted=True)
        return WriteAck(server_id=self.server_id, accepted=False)


class ByzantineReplicaServer(ReplicaServer):
    """A replica under adversarial control.

    The behaviour parameter selects the lie told to readers:

    * ``"fabricate-timestamp"`` — report a bogus value with an enormous
      timestamp to *every* query, attempting to trick readers into returning
      it.  The masking read rule (accept only pairs vouched for by ``b + 1``
      servers) must defeat this as long as at most ``b`` replicas collude.
    * ``"forge-on-read"`` — answer timestamp queries honestly (so writers do
      not learn about the forgery and cannot outrun it) but forge read
      replies.  This is the strongest read attack: with ``2b + 1`` colluders
      it reliably corrupts reads, demonstrating that the masking bound is
      tight.
    * ``"stale"`` — always report the initial (outdated) pair, attempting to
      make readers miss completed writes.
    * ``"random-value"`` — report a random value with the current timestamp.
    * ``"drop-writes"`` — behave correctly for reads but silently discard
      writes (a correctness attack on the writer's quorum).

    Colluding replicas share ``collusion_token`` so that their fabricated
    answers agree with each other — the strongest version of the attack.
    """

    def __init__(
        self,
        server_id: Hashable,
        behaviour: str = "fabricate-timestamp",
        *,
        rng: np.random.Generator | None = None,
        collusion_token: object = "forged-value",
        initial_value: object = None,
    ):
        super().__init__(server_id, initial_value=initial_value)
        if behaviour not in BYZANTINE_BEHAVIOURS:
            raise SimulationError(
                f"unknown Byzantine behaviour {behaviour!r}; "
                f"choose one of {sorted(BYZANTINE_BEHAVIOURS)}"
            )
        self.behaviour = behaviour
        self.rng = ensure_rng(rng)
        self.collusion_token = collusion_token
        self._initial_pair = self._pair

    # Each handler counts the access exactly once: the delegating paths leave
    # the increment to the base-class handler, the lying paths do it
    # themselves.  (Byzantine replicas used to increment *and* fall through
    # to ``super()``, reporting up to 2x their true empirical load.)
    def handle_timestamp(self, request: TimestampRequest) -> TimestampReply:
        if self.behaviour == "fabricate-timestamp":
            self.access_count += 1
            return TimestampReply(
                server_id=self.server_id, timestamp=Timestamp(10**9, int(1e6))
            )
        if self.behaviour == "stale":
            self.access_count += 1
            return TimestampReply(
                server_id=self.server_id, timestamp=self._initial_pair.timestamp
            )
        return super().handle_timestamp(request)

    def handle_read(self, request: ReadRequest) -> ReadReply:
        if self.behaviour in ("fabricate-timestamp", "forge-on-read"):
            self.access_count += 1
            forged = ValueTimestampPair(
                value=self.collusion_token, timestamp=Timestamp(10**9, int(1e6))
            )
            return ReadReply(server_id=self.server_id, pair=forged)
        if self.behaviour == "stale":
            self.access_count += 1
            return ReadReply(server_id=self.server_id, pair=self._initial_pair)
        if self.behaviour == "random-value":
            self.access_count += 1
            forged = ValueTimestampPair(
                value=("garbage", int(self.rng.integers(1_000_000))),
                timestamp=self._pair.timestamp,
            )
            return ReadReply(server_id=self.server_id, pair=forged)
        return super().handle_read(request)

    def handle_write(self, request: WriteRequest) -> WriteAck:
        if self.behaviour == "drop-writes":
            self.access_count += 1
            return WriteAck(server_id=self.server_id, accepted=True)  # lies about accepting
        return super().handle_write(request)


#: The recognised Byzantine behaviours.
BYZANTINE_BEHAVIOURS = frozenset(
    {"fabricate-timestamp", "forge-on-read", "stale", "random-value", "drop-writes"}
)
