"""The masking-quorum client protocol of [MR98a].

A client performs each operation at a single quorum of replicas:

* **write(v)** — query a quorum for timestamps, pick a timestamp strictly
  larger than every answer, then send ``(v, ts)`` to every member of a
  quorum and wait for their acknowledgements.
* **read()** — query a quorum for ``(value, timestamp)`` pairs, keep only the
  pairs returned by at least ``b + 1`` replicas (so that at least one honest
  replica vouches for each surviving pair), and return the value with the
  highest surviving timestamp.

Consistency relies exactly on the ``2b + 1`` intersection of masking quorum
systems: the read quorum shares at least ``2b + 1`` replicas with the last
complete write's quorum, of which at least ``b + 1`` are honest and report
the written pair, while any value fabricated by the at most ``b`` Byzantine
replicas is reported at most ``b`` times and filtered out.

Two client flavours share the quorum-selection logic (and therefore consume
identical randomness for identical histories):

* :class:`QuorumClient` — the blocking client over the synchronous network:
  each ``read()``/``write()`` call runs the whole operation.  Crashed
  replicas answer ``None`` immediately, so silence detection is free.
* :class:`AsyncQuorumClient` — a **resumable operation state machine** over
  the event-driven network: ``read()``/``write()`` start the operation and
  return; replies resume it through callbacks, silence is detected by a
  per-request timeout, and retries follow a :class:`RetryPolicy`.  Many such
  clients interleave within one scheduler run, which is what makes
  concurrent write/write and read/write histories (and their checking — see
  :mod:`repro.simulation.history`) possible.

Accounting (shared by both flavours, aligned with the vectorised engine):

* ``attempts`` in an :class:`OperationResult` is the *real* number of quorum
  probes the operation made — the timestamp/read phase's probes plus, for
  writes that lost a quorum member between the two phases, the write-phase
  retry probes.  (Earlier versions hardcoded ``attempts=1`` on success and
  ``2 * max_attempts`` on write-retry failure.)
* ``successful_access_counts`` / ``attempted_access_counts`` tally per-server
  quorum accesses of successful operations and of every probe respectively,
  mirroring the engine's ``per_server_load`` / ``per_server_attempted``
  split, so the message-level and vectorised paths measure the same
  Definition 3.8 quantity.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.quorum_system import QuorumSystem
from repro.core.rng import ensure_rng
from repro.core.strategy import Strategy
from repro.exceptions import SimulationError
from repro.simulation.events import EventNetwork, EventScheduler
from repro.simulation.messages import (
    ReadRequest,
    Timestamp,
    TimestampRequest,
    ValueTimestampPair,
    WriteRequest,
)
from repro.simulation.network import SynchronousNetwork

if TYPE_CHECKING:  # circular at runtime: history records client results
    from repro.simulation.history import HistoryRecorder

__all__ = ["AsyncQuorumClient", "OperationResult", "QuorumClient", "RetryPolicy"]


@dataclass(frozen=True)
class OperationResult:
    """Outcome of a single client operation.

    Attributes
    ----------
    success:
        Whether a fully responsive quorum was found and the protocol
        completed.
    value:
        For reads, the returned value (``None`` on failure or when no
        sufficiently vouched pair exists).
    timestamp:
        For reads, the timestamp of the returned value; for writes, the
        timestamp that was installed.
    quorum:
        The quorum used by the successful attempt (``None`` on failure).
    attempts:
        How many quorum probes the operation actually made: the
        timestamp/read phase's probes, plus write-phase retry probes when
        the first write broadcast lost a quorum member.
    latency:
        Simulated time from invocation to completion (event-driven clients
        only; ``0.0`` under the synchronous layer, where operations are
        instantaneous).
    """

    success: bool
    value: object = None
    timestamp: Timestamp | None = None
    quorum: frozenset | None = None
    attempts: int = 0
    latency: float = 0.0


@dataclass(frozen=True)
class RetryPolicy:
    """How an event-driven client waits and retries.

    Attributes
    ----------
    max_attempts:
        Quorum probes per probing phase before the operation is declared
        failed (unavailability), matching the synchronous client's knob.
    request_timeout:
        Simulated time a probe waits for the slowest quorum member before
        declaring the silent members suspected and moving to another quorum.
    retry_unvouched_reads:
        When a read finds no pair vouched by ``b + 1`` replicas (possible
        under concurrency with an interleaved write), retry the read phase
        at a fresh quorum instead of reporting an unsuccessful read.  Off by
        default — the synchronous client reports the failure, and the
        zero-latency agreement guarantee relies on matching it.
    """

    max_attempts: int = 10
    request_timeout: float = 1.0
    retry_unvouched_reads: bool = False

    def __post_init__(self):
        if self.max_attempts < 1:
            raise SimulationError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.request_timeout <= 0:
            raise SimulationError(
                f"request_timeout must be positive, got {self.request_timeout}"
            )


class _QuorumSelectionBase:
    """Quorum sampling, suspicion steering and access accounting.

    Shared by the synchronous and event-driven clients so that both flavours
    draw from the client rng in exactly the same order for the same history —
    the zero-latency agreement test depends on this.
    """

    def __init__(
        self,
        client_id: int,
        system: QuorumSystem,
        *,
        b: int,
        rng: np.random.Generator | None,
        strategy: Strategy | None,
    ):
        if b < 0:
            raise SimulationError(f"masking parameter must be >= 0, got {b}")
        self.client_id = client_id
        self.system = system
        self.b = b
        self.rng = ensure_rng(rng)
        self.strategy = strategy
        #: The largest timestamp this client has observed or produced.
        self.last_timestamp = Timestamp.zero()
        #: Servers observed to be unresponsive; used as a simple failure
        #: detector so that retries steer towards live quorums (this is what
        #: makes the client achieve the system's resilience ``f`` instead of
        #: blindly resampling quorums that contain known-dead servers).
        self.suspected: set = set()
        #: Per-server quorum accesses of *successful* operations (the
        #: empirical-load numerator of Definition 3.8) and of *every* probe.
        self.successful_access_counts: Counter = Counter()
        self.attempted_access_counts: Counter = Counter()
        #: Operations completed successfully / started, for normalisation.
        self.successful_operations = 0
        self.operations_started = 0

    def _choose_quorum(self) -> frozenset:
        """Sample a quorum, preferring one that avoids all suspected servers."""
        if self.strategy is not None:
            return self._choose_from_strategy()
        if not self.suspected:
            return self.system.sample_quorum(self.rng)
        return self.system.sample_quorum_avoiding(self.rng, frozenset(self.suspected))

    def _choose_from_strategy(self, *, attempts: int = 50) -> frozenset:
        """Sample the access strategy, steering away from suspected servers.

        Mirrors ``QuorumSystem.sample_quorum_avoiding``: resample the strategy
        until a quorum avoids every suspected server, falling back to the last
        sample when avoidance keeps failing.
        """
        quorum = self.strategy.sample(self.rng)
        if not self.suspected:
            return quorum
        for _ in range(attempts):
            if not quorum & self.suspected:
                return quorum
            quorum = self.strategy.sample(self.rng)
        return quorum

    def _record_success(self, quorum: frozenset) -> None:
        self.successful_operations += 1
        self.successful_access_counts.update(quorum)

    def _fresh_timestamp(self, replies: dict) -> Timestamp:
        """Pick a timestamp strictly larger than every answer and all past picks.

        Advancing ``last_timestamp`` *here* — before the install completes —
        means a client never reuses a counter even when the install fails
        half-way, so every write operation in a history carries a unique
        timestamp (the property the history checker asserts).
        """
        highest = self.last_timestamp
        for reply in replies.values():
            if reply.timestamp > highest:
                highest = reply.timestamp
        fresh = highest.next_for(self.client_id)
        self.last_timestamp = fresh
        return fresh


class QuorumClient(_QuorumSelectionBase):
    """A blocking client of the replicated register (synchronous network).

    Parameters
    ----------
    client_id:
        Unique integer identity, embedded in timestamps for uniqueness.
    system:
        The quorum system governing which replica sets constitute a quorum.
    network:
        The message layer connecting to the replicas.
    b:
        The number of Byzantine failures the deployment is meant to mask;
        reads require each accepted pair to be vouched by ``b + 1`` replicas.
    max_attempts:
        How many quorums to try before declaring an operation failed
        (unavailability).
    rng:
        Randomness source for quorum sampling.
    strategy:
        Optional access strategy (Definition 3.8) to sample quorums from —
        e.g. the load-optimal strategy of :func:`~repro.core.load.exact_load`,
        so clients access the system at its actual ``L(Q)`` instead of the
        construction's default sampling.  When omitted, quorums come from
        ``system.sample_quorum`` as before.
    """

    def __init__(
        self,
        client_id: int,
        system: QuorumSystem,
        network: SynchronousNetwork,
        *,
        b: int,
        max_attempts: int = 10,
        rng: np.random.Generator | None = None,
        strategy: Strategy | None = None,
    ):
        super().__init__(client_id, system, b=b, rng=rng, strategy=strategy)
        if max_attempts < 1:
            raise SimulationError(f"max_attempts must be >= 1, got {max_attempts}")
        self.network = network
        self.max_attempts = max_attempts

    # ------------------------------------------------------------------
    # Quorum probing.
    # ------------------------------------------------------------------
    def _collect_from_quorum(self, quorum: frozenset, request: object) -> dict | None:
        """Send ``request`` to every member of ``quorum``.

        Returns the replies keyed by server id, or ``None`` when some member
        did not answer (the quorum is unavailable and another must be tried).
        Unresponsive members are recorded in :attr:`suspected`.
        """
        replies = self.network.broadcast(quorum, request)
        silent = {server_id for server_id, reply in replies.items() if reply is None}
        if silent:
            self.suspected |= silent
            return None
        return replies

    def _probe(self, request_factory) -> tuple[frozenset | None, dict | None, int]:
        """Try up to ``max_attempts`` quorums; return the first responsive one.

        Returns ``(quorum, replies, attempts)`` with the real probe count, or
        ``(None, None, max_attempts)`` when the budget is exhausted.
        """
        for attempt in range(1, self.max_attempts + 1):
            quorum = self._choose_quorum()
            self.attempted_access_counts.update(quorum)
            replies = self._collect_from_quorum(quorum, request_factory())
            if replies is not None:
                return quorum, replies, attempt
        return None, None, self.max_attempts

    # ------------------------------------------------------------------
    # Protocol operations.
    # ------------------------------------------------------------------
    def write(self, value: object) -> OperationResult:
        """Write ``value`` to the register (query timestamps, then install)."""
        self.operations_started += 1
        quorum, replies, attempts = self._probe(
            lambda: TimestampRequest(client_id=self.client_id)
        )
        if quorum is None:
            return OperationResult(success=False, attempts=attempts)

        new_timestamp = self._fresh_timestamp(replies)
        pair = ValueTimestampPair(value=value, timestamp=new_timestamp)

        write_replies = self._collect_from_quorum(
            quorum, WriteRequest(client_id=self.client_id, pair=pair)
        )
        if write_replies is None:
            # The quorum answered the timestamp query but lost a member before
            # the write; retry the whole install through fresh quorums,
            # accumulating the real probe count.
            quorum, write_replies, retry_attempts = self._probe(
                lambda: WriteRequest(client_id=self.client_id, pair=pair)
            )
            attempts += retry_attempts
            if quorum is None:
                return OperationResult(success=False, attempts=attempts)

        self._record_success(quorum)
        return OperationResult(
            success=True,
            value=value,
            timestamp=new_timestamp,
            quorum=quorum,
            attempts=attempts,
        )

    def read(self) -> OperationResult:
        """Read the register, masking up to ``b`` Byzantine replies."""
        self.operations_started += 1
        quorum, replies, attempts = self._probe(
            lambda: ReadRequest(client_id=self.client_id)
        )
        if quorum is None:
            return OperationResult(success=False, attempts=attempts)

        # Count how many replicas vouch for each (value, timestamp) pair and
        # keep the pairs vouched for by at least b + 1 replicas.
        votes: Counter = Counter(reply.pair for reply in replies.values())
        vouched = [pair for pair, count in votes.items() if count >= self.b + 1]
        if not vouched:
            # Possible only under concurrency or mis-configuration; report an
            # unsuccessful read rather than returning an unvouched value.
            return OperationResult(success=False, quorum=quorum, attempts=attempts)

        best = max(vouched, key=lambda pair: pair.timestamp)
        if best.timestamp > self.last_timestamp:
            self.last_timestamp = best.timestamp
        self._record_success(quorum)
        return OperationResult(
            success=True,
            value=best.value,
            timestamp=best.timestamp,
            quorum=quorum,
            attempts=attempts,
        )


# ----------------------------------------------------------------------
# The event-driven client.
# ----------------------------------------------------------------------
class _ProbeState:
    """One in-flight quorum probe of an async operation.

    Collects replies keyed by server id (duplicate deliveries collapse) until
    the quorum is complete or the timeout fires; ``done`` guards against
    late replies resuming an abandoned probe.
    """

    __slots__ = ("quorum", "replies", "done", "timeout_event")

    def __init__(self, quorum: frozenset):
        self.quorum = quorum
        self.replies: dict = {}
        self.done = False
        self.timeout_event = None


class AsyncQuorumClient(_QuorumSelectionBase):
    """A resumable state-machine client over the event-driven network.

    ``read``/``write`` start the operation and return immediately; the
    operation advances as replies arrive through the scheduler and completes
    by calling ``on_complete(OperationResult)``.  Because nothing blocks,
    any number of clients interleave their operations within one scheduler
    run — the concurrency the synchronous layer structurally cannot express.

    Parameters
    ----------
    client_id / system / b / rng / strategy:
        As for :class:`QuorumClient`.
    network:
        The :class:`~repro.simulation.events.EventNetwork` to speak over.
    policy:
        Timeout and retry behaviour (:class:`RetryPolicy`).
    history:
        Optional :class:`~repro.simulation.history.HistoryRecorder`; every
        completed operation is recorded with its invocation/response times
        for the concurrent-history consistency checker.
    """

    def __init__(
        self,
        client_id: int,
        system: QuorumSystem,
        network: EventNetwork,
        *,
        b: int,
        policy: RetryPolicy | None = None,
        rng: np.random.Generator | None = None,
        strategy: Strategy | None = None,
        history: "HistoryRecorder | None" = None,
    ):
        super().__init__(client_id, system, b=b, rng=rng, strategy=strategy)
        self.network = network
        self.policy = policy if policy is not None else RetryPolicy()
        self.history = history
        #: Probes that ran into their request timeout (diagnostic).
        self.timeouts = 0
        self._busy = False

    @property
    def scheduler(self) -> EventScheduler:
        return self.network.scheduler

    # ------------------------------------------------------------------
    # Probing as a resumable state machine.
    # ------------------------------------------------------------------
    def _start_probe(
        self,
        request_factory: Callable[[], object],
        on_success: Callable[[frozenset, dict, int], None],
        on_exhausted: Callable[[int], None],
        *,
        attempt: int = 0,
    ) -> None:
        """Probe quorums until one answers in full or the budget runs out.

        ``on_success(quorum, replies, attempts)`` resumes the operation;
        ``on_exhausted(attempts)`` reports unavailability.  Each probe arms a
        timeout; silent members observed at the timeout join ``suspected``
        before the next quorum is drawn, mirroring the synchronous client.
        """
        if attempt >= self.policy.max_attempts:
            on_exhausted(self.policy.max_attempts)
            return
        quorum = self._choose_quorum()
        self.attempted_access_counts.update(quorum)
        probe = _ProbeState(quorum)
        request = request_factory()

        def on_reply(server_id, reply) -> None:
            if probe.done or server_id in probe.replies:
                return
            # An answer exonerates: suspicion from lost messages or a crash
            # window that has since ended must not permanently remove a
            # correct server from quorum selection.
            self.suspected.discard(server_id)
            probe.replies[server_id] = reply
            if len(probe.replies) == len(probe.quorum):
                probe.done = True
                if probe.timeout_event is not None:
                    probe.timeout_event.cancel()
                on_success(probe.quorum, probe.replies, attempt + 1)

        def on_timeout() -> None:
            if probe.done:
                return
            probe.done = True
            self.timeouts += 1
            self.suspected |= probe.quorum - probe.replies.keys()
            self._start_probe(
                request_factory, on_success, on_exhausted, attempt=attempt + 1
            )

        self.network.broadcast(quorum, request, on_reply)
        probe.timeout_event = self.scheduler.schedule(
            self.policy.request_timeout, on_timeout
        )

    def _collect_once(
        self,
        quorum: frozenset,
        request: object,
        on_all: Callable[[dict], None],
        on_partial: Callable[[], None],
    ) -> None:
        """Broadcast to a fixed quorum once; succeed only on a full reply set."""
        probe = _ProbeState(quorum)

        def on_reply(server_id, reply) -> None:
            if probe.done or server_id in probe.replies:
                return
            self.suspected.discard(server_id)
            probe.replies[server_id] = reply
            if len(probe.replies) == len(probe.quorum):
                probe.done = True
                if probe.timeout_event is not None:
                    probe.timeout_event.cancel()
                on_all(probe.replies)

        def on_timeout() -> None:
            if probe.done:
                return
            probe.done = True
            self.timeouts += 1
            self.suspected |= probe.quorum - probe.replies.keys()
            on_partial()

        self.network.broadcast(quorum, request, on_reply)
        probe.timeout_event = self.scheduler.schedule(
            self.policy.request_timeout, on_timeout
        )

    # ------------------------------------------------------------------
    # Operation lifecycle helpers.
    # ------------------------------------------------------------------
    def _begin(self) -> float:
        if self._busy:
            raise SimulationError(
                f"client {self.client_id} already has an operation in flight; "
                "a register client is a single sequential process"
            )
        self._busy = True
        self.operations_started += 1
        return self.scheduler.now

    def _complete(
        self,
        kind: str,
        invoked_at: float,
        result: OperationResult,
        on_complete: Callable[[OperationResult], None] | None,
        *,
        attempted_pair: ValueTimestampPair | None = None,
    ) -> None:
        self._busy = False
        if result.success:
            self._record_success(result.quorum)
        if self.history is not None:
            self.history.record(
                client_id=self.client_id,
                kind=kind,
                invoked_at=invoked_at,
                responded_at=self.scheduler.now,
                result=result,
                attempted_pair=attempted_pair,
            )
        if on_complete is not None:
            on_complete(result)

    # ------------------------------------------------------------------
    # Protocol operations (resumable).
    # ------------------------------------------------------------------
    def write(
        self, value: object, on_complete: Callable[[OperationResult], None] | None = None
    ) -> None:
        """Start writing ``value``; completion arrives through ``on_complete``."""
        invoked_at = self._begin()

        def ts_phase_done(quorum: frozenset, replies: dict, attempts: int) -> None:
            new_timestamp = self._fresh_timestamp(replies)
            pair = ValueTimestampPair(value=value, timestamp=new_timestamp)
            request = WriteRequest(client_id=self.client_id, pair=pair)

            def installed(write_quorum: frozenset, attempts_total: int) -> None:
                self._complete(
                    "write",
                    invoked_at,
                    OperationResult(
                        success=True,
                        value=value,
                        timestamp=new_timestamp,
                        quorum=write_quorum,
                        attempts=attempts_total,
                        latency=self.scheduler.now - invoked_at,
                    ),
                    on_complete,
                    attempted_pair=pair,
                )

            def retry_install() -> None:
                # The quorum answered the timestamp query but lost a member
                # before the write; retry the install through fresh quorums.
                self._start_probe(
                    lambda: request,
                    lambda write_quorum, _replies, retry_attempts: installed(
                        write_quorum, attempts + retry_attempts
                    ),
                    lambda retry_attempts: self._complete(
                        "write",
                        invoked_at,
                        OperationResult(
                            success=False,
                            attempts=attempts + retry_attempts,
                            latency=self.scheduler.now - invoked_at,
                        ),
                        on_complete,
                        attempted_pair=pair,
                    ),
                )

            self._collect_once(
                quorum, request, lambda _replies: installed(quorum, attempts), retry_install
            )

        self._start_probe(
            lambda: TimestampRequest(client_id=self.client_id),
            ts_phase_done,
            lambda attempts: self._complete(
                "write",
                invoked_at,
                OperationResult(
                    success=False,
                    attempts=attempts,
                    latency=self.scheduler.now - invoked_at,
                ),
                on_complete,
            ),
        )

    def read(
        self, on_complete: Callable[[OperationResult], None] | None = None
    ) -> None:
        """Start a read; completion arrives through ``on_complete``."""
        invoked_at = self._begin()
        state = {"attempts": 0}

        def read_phase_done(quorum: frozenset, replies: dict, attempts: int) -> None:
            state["attempts"] += attempts
            votes: Counter = Counter(reply.pair for reply in replies.values())
            vouched = [pair for pair, count in votes.items() if count >= self.b + 1]
            if not vouched:
                # Under concurrency an interleaved write can split the vouch
                # counts below b + 1; the retry policy decides whether to try
                # again at a fresh quorum or report the unsuccessful read.
                if (
                    self.policy.retry_unvouched_reads
                    and state["attempts"] < self.policy.max_attempts
                ):
                    self._start_probe(
                        lambda: ReadRequest(client_id=self.client_id),
                        read_phase_done,
                        exhausted,
                    )
                    return
                self._complete(
                    "read",
                    invoked_at,
                    OperationResult(
                        success=False,
                        quorum=quorum,
                        attempts=state["attempts"],
                        latency=self.scheduler.now - invoked_at,
                    ),
                    on_complete,
                )
                return
            best = max(vouched, key=lambda pair: pair.timestamp)
            if best.timestamp > self.last_timestamp:
                self.last_timestamp = best.timestamp
            self._complete(
                "read",
                invoked_at,
                OperationResult(
                    success=True,
                    value=best.value,
                    timestamp=best.timestamp,
                    quorum=quorum,
                    attempts=state["attempts"],
                    latency=self.scheduler.now - invoked_at,
                ),
                on_complete,
            )

        def exhausted(attempts: int) -> None:
            state["attempts"] += attempts
            self._complete(
                "read",
                invoked_at,
                OperationResult(
                    success=False,
                    attempts=state["attempts"],
                    latency=self.scheduler.now - invoked_at,
                ),
                on_complete,
            )

        self._start_probe(
            lambda: ReadRequest(client_id=self.client_id), read_phase_done, exhausted
        )
