"""The masking-quorum client protocol of [MR98a].

A client performs each operation at a single quorum of replicas:

* **write(v)** — query a quorum for timestamps, pick a timestamp strictly
  larger than every answer, then send ``(v, ts)`` to every member of a
  quorum and wait for their acknowledgements.
* **read()** — query a quorum for ``(value, timestamp)`` pairs, keep only the
  pairs returned by at least ``b + 1`` replicas (so that at least one honest
  replica vouches for each surviving pair), and return the value with the
  highest surviving timestamp.

Consistency relies exactly on the ``2b + 1`` intersection of masking quorum
systems: the read quorum shares at least ``2b + 1`` replicas with the last
complete write's quorum, of which at least ``b + 1`` are honest and report
the written pair, while any value fabricated by the at most ``b`` Byzantine
replicas is reported at most ``b`` times and filtered out.

Crashed replicas never answer, so the client retries with different quorums
(sampled from the system's access strategy) until it finds a fully
responsive one — mirroring the availability question that ``Fp`` quantifies.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.core.quorum_system import QuorumSystem
from repro.core.strategy import Strategy
from repro.exceptions import SimulationError
from repro.simulation.messages import (
    ReadRequest,
    Timestamp,
    TimestampRequest,
    ValueTimestampPair,
    WriteRequest,
)
from repro.simulation.network import SynchronousNetwork

__all__ = ["OperationResult", "QuorumClient"]


@dataclass(frozen=True)
class OperationResult:
    """Outcome of a single client operation.

    Attributes
    ----------
    success:
        Whether a fully responsive quorum was found and the protocol
        completed.
    value:
        For reads, the returned value (``None`` on failure or when no
        sufficiently vouched pair exists).
    timestamp:
        For reads, the timestamp of the returned value; for writes, the
        timestamp that was installed.
    quorum:
        The quorum used by the successful attempt (``None`` on failure).
    attempts:
        How many quorums were tried.
    """

    success: bool
    value: object = None
    timestamp: Timestamp | None = None
    quorum: frozenset | None = None
    attempts: int = 0


class QuorumClient:
    """A client of the replicated register.

    Parameters
    ----------
    client_id:
        Unique integer identity, embedded in timestamps for uniqueness.
    system:
        The quorum system governing which replica sets constitute a quorum.
    network:
        The message layer connecting to the replicas.
    b:
        The number of Byzantine failures the deployment is meant to mask;
        reads require each accepted pair to be vouched by ``b + 1`` replicas.
    max_attempts:
        How many quorums to try before declaring an operation failed
        (unavailability).
    rng:
        Randomness source for quorum sampling.
    strategy:
        Optional access strategy (Definition 3.8) to sample quorums from —
        e.g. the load-optimal strategy of :func:`~repro.core.load.exact_load`,
        so clients access the system at its actual ``L(Q)`` instead of the
        construction's default sampling.  When omitted, quorums come from
        ``system.sample_quorum`` as before.
    """

    def __init__(
        self,
        client_id: int,
        system: QuorumSystem,
        network: SynchronousNetwork,
        *,
        b: int,
        max_attempts: int = 10,
        rng: np.random.Generator | None = None,
        strategy: Strategy | None = None,
    ):
        if b < 0:
            raise SimulationError(f"masking parameter must be >= 0, got {b}")
        if max_attempts < 1:
            raise SimulationError(f"max_attempts must be >= 1, got {max_attempts}")
        self.client_id = client_id
        self.system = system
        self.network = network
        self.b = b
        self.max_attempts = max_attempts
        self.rng = rng if rng is not None else np.random.default_rng()
        self.strategy = strategy
        #: The largest timestamp this client has observed or produced.
        self.last_timestamp = Timestamp.zero()
        #: Servers observed to be unresponsive; used as a simple failure
        #: detector so that retries steer towards live quorums (this is what
        #: makes the client achieve the system's resilience ``f`` instead of
        #: blindly resampling quorums that contain known-dead servers).
        self.suspected: set = set()

    # ------------------------------------------------------------------
    # Quorum probing.
    # ------------------------------------------------------------------
    def _collect_from_quorum(self, quorum: frozenset, request: object) -> dict | None:
        """Send ``request`` to every member of ``quorum``.

        Returns the replies keyed by server id, or ``None`` when some member
        did not answer (the quorum is unavailable and another must be tried).
        Unresponsive members are recorded in :attr:`suspected`.
        """
        replies = self.network.broadcast(quorum, request)
        silent = {server_id for server_id, reply in replies.items() if reply is None}
        if silent:
            self.suspected |= silent
            return None
        return replies

    def _choose_quorum(self) -> frozenset:
        """Sample a quorum, preferring one that avoids all suspected servers."""
        if self.strategy is not None:
            return self._choose_from_strategy()
        if not self.suspected:
            return self.system.sample_quorum(self.rng)
        return self.system.sample_quorum_avoiding(self.rng, frozenset(self.suspected))

    def _choose_from_strategy(self, *, attempts: int = 50) -> frozenset:
        """Sample the access strategy, steering away from suspected servers.

        Mirrors ``QuorumSystem.sample_quorum_avoiding``: resample the strategy
        until a quorum avoids every suspected server, falling back to the last
        sample when avoidance keeps failing.
        """
        quorum = self.strategy.sample(self.rng)
        if not self.suspected:
            return quorum
        for _ in range(attempts):
            if not quorum & self.suspected:
                return quorum
            quorum = self.strategy.sample(self.rng)
        return quorum

    def _probe(self, request_factory) -> tuple[frozenset, dict] | None:
        """Try up to ``max_attempts`` quorums; return the first fully responsive one."""
        for _ in range(self.max_attempts):
            quorum = self._choose_quorum()
            replies = self._collect_from_quorum(quorum, request_factory())
            if replies is not None:
                return quorum, replies
        return None

    # ------------------------------------------------------------------
    # Protocol operations.
    # ------------------------------------------------------------------
    def write(self, value: object) -> OperationResult:
        """Write ``value`` to the register (query timestamps, then install)."""
        probed = self._probe(lambda: TimestampRequest(client_id=self.client_id))
        if probed is None:
            return OperationResult(success=False, attempts=self.max_attempts)
        quorum, replies = probed

        highest = self.last_timestamp
        for reply in replies.values():
            if reply.timestamp > highest:
                highest = reply.timestamp
        new_timestamp = highest.next_for(self.client_id)
        pair = ValueTimestampPair(value=value, timestamp=new_timestamp)

        write_replies = self._collect_from_quorum(
            quorum, WriteRequest(client_id=self.client_id, pair=pair)
        )
        if write_replies is None:
            # The quorum answered the timestamp query but lost a member before
            # the write; retry the whole operation through fresh quorums.
            probed = self._probe(lambda: WriteRequest(client_id=self.client_id, pair=pair))
            if probed is None:
                return OperationResult(success=False, attempts=2 * self.max_attempts)
            quorum, write_replies = probed

        self.last_timestamp = new_timestamp
        return OperationResult(
            success=True, value=value, timestamp=new_timestamp, quorum=quorum, attempts=1
        )

    def read(self) -> OperationResult:
        """Read the register, masking up to ``b`` Byzantine replies."""
        probed = self._probe(lambda: ReadRequest(client_id=self.client_id))
        if probed is None:
            return OperationResult(success=False, attempts=self.max_attempts)
        quorum, replies = probed

        # Count how many replicas vouch for each (value, timestamp) pair and
        # keep the pairs vouched for by at least b + 1 replicas.
        votes: Counter = Counter(reply.pair for reply in replies.values())
        vouched = [pair for pair, count in votes.items() if count >= self.b + 1]
        if not vouched:
            # Possible only under concurrency or mis-configuration; report an
            # unsuccessful read rather than returning an unvouched value.
            return OperationResult(success=False, quorum=quorum, attempts=1)

        best = max(vouched, key=lambda pair: pair.timestamp)
        if best.timestamp > self.last_timestamp:
            self.last_timestamp = best.timestamp
        return OperationResult(
            success=True,
            value=best.value,
            timestamp=best.timestamp,
            quorum=quorum,
            attempts=1,
        )
