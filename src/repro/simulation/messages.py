"""Message types exchanged by the replicated-register protocol.

The masking-quorum read/write protocol of [MR98a] (the protocol the paper's
quorum systems are designed for) uses four message kinds: a timestamp query
and its reply (used by writers to pick a fresh timestamp), and a read query
and its reply (used by readers to collect candidate value/timestamp pairs).
Write requests carry the new value and timestamp and are acknowledged.

All messages are immutable dataclasses; timestamps are
:class:`Timestamp` objects ordered lexicographically by ``(counter,
client_id)`` so that two writers never produce the same timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Hashable

__all__ = [
    "Timestamp",
    "ValueTimestampPair",
    "TimestampRequest",
    "TimestampReply",
    "ReadRequest",
    "ReadReply",
    "WriteRequest",
    "WriteAck",
]


@total_ordering
@dataclass(frozen=True)
class Timestamp:
    """A logical timestamp ``(counter, client_id)``.

    Ordered first by counter, then by client identifier, so that concurrent
    writers choosing the same counter are still totally ordered and a writer
    can always generate a timestamp strictly larger than any it has seen.
    """

    counter: int
    client_id: int

    def __lt__(self, other: "Timestamp") -> bool:
        if not isinstance(other, Timestamp):
            return NotImplemented
        return (self.counter, self.client_id) < (other.counter, other.client_id)

    def next_for(self, client_id: int) -> "Timestamp":
        """Return a timestamp strictly greater than this one, owned by ``client_id``."""
        return Timestamp(self.counter + 1, client_id)

    @staticmethod
    def zero() -> "Timestamp":
        """The initial timestamp carried by unwritten replicas."""
        return Timestamp(0, -1)


@dataclass(frozen=True)
class ValueTimestampPair:
    """A candidate ``(value, timestamp)`` pair returned by a replica."""

    value: object
    timestamp: Timestamp


@dataclass(frozen=True)
class TimestampRequest:
    """Ask a replica for the timestamp of its current value."""

    client_id: int


@dataclass(frozen=True)
class TimestampReply:
    """A replica's current timestamp."""

    server_id: Hashable
    timestamp: Timestamp


@dataclass(frozen=True)
class ReadRequest:
    """Ask a replica for its current value and timestamp."""

    client_id: int


@dataclass(frozen=True)
class ReadReply:
    """A replica's current ``(value, timestamp)`` pair."""

    server_id: Hashable
    pair: ValueTimestampPair


@dataclass(frozen=True)
class WriteRequest:
    """Install ``pair`` at a replica if it is newer than what the replica holds."""

    client_id: int
    pair: ValueTimestampPair


@dataclass(frozen=True)
class WriteAck:
    """Acknowledgement of a write request."""

    server_id: Hashable
    accepted: bool
