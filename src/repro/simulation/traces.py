"""Trace-driven workloads: open-loop arrivals through the event core.

The event runner (:func:`~repro.simulation.runner.run_event_workload`) is
*closed-loop*: each client issues its next operation when the previous one
completes, so the offered rate adapts to the service rate and queueing never
builds up.  Real traffic is open-loop — operations arrive on a clock,
whether or not the system has caught up — and that is where latency
percentiles become interesting: under a diurnal peak the sojourn time
(arrival to completion, queueing included) departs from the bare service
time.

A :class:`TraceScenario` describes the arrival process: either an explicit
trace (``(time, "read"|"write")`` pairs, e.g. loaded from JSON via
:meth:`TraceScenario.from_records`) or a synthetic *diurnal* process — a
sinusoidal intensity with a configurable peak-to-trough ratio, sampled by
inverse-transform so exactly ``operations`` arrivals land in one period.
``skew`` adds hot-key concentration: the access strategy is re-weighted by a
Zipf law over its support, modelling clients that hammer a few popular
quorums (the load the busiest server sees under skew is exactly what the
paper's ``L(Q)`` optimisation is about).

:func:`run_trace_workload` replays the arrivals over the event stack with a
fixed pool of :class:`~repro.simulation.client.AsyncQuorumClient` workers
and a FIFO queue (a register client is a single sequential process, so an
arrival waits for a free client).  The reported latency statistics are
**sojourn times** — queueing delay plus protocol latency — which is what an
open-loop trace uniquely measures; the queueing delay is also reported
separately.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.floats import is_zero
from repro.core.quorum_system import QuorumSystem
from repro.core.rng import ensure_rng
from repro.core.strategy import Strategy
from repro.exceptions import SimulationError
from repro.simulation.client import AsyncQuorumClient, RetryPolicy
from repro.simulation.engine import resolve_strategy
from repro.simulation.events import (
    EventNetwork,
    EventScheduler,
    FaultTimeline,
    LatencyModel,
    LinkFaults,
)
from repro.simulation.faults import FaultScenario
from repro.simulation.history import HistoryRecorder
from repro.simulation.messages import Timestamp, ValueTimestampPair
from repro.simulation.runner import EventWorkloadResult, build_replicas
from repro.simulation.server import BYZANTINE_BEHAVIOURS

__all__ = [
    "TraceScenario",
    "TraceWorkloadResult",
    "hot_quorum_strategy",
    "run_trace_workload",
]

_OP_KINDS = frozenset({"read", "write"})


@dataclass(frozen=True)
class TraceScenario:
    """An open-loop arrival trace plus the timing environment to replay it in.

    Attributes
    ----------
    name:
        Human-readable label used in tables and reports.
    arrivals:
        Explicit trace: ``(time, kind)`` pairs with non-decreasing times and
        ``kind`` in ``{"read", "write"}``.  When empty, a diurnal process is
        generated instead (see below) with exactly the requested operation
        count.
    period:
        Length of the diurnal cycle in simulated time units; the generated
        arrivals span one period.
    peak_ratio:
        Peak-to-trough intensity ratio of the diurnal cycle (``1`` recovers
        a uniform arrival process).
    skew:
        Zipf exponent for hot-quorum concentration; ``0`` leaves the access
        strategy untouched (see :func:`hot_quorum_strategy`).
    fault_state:
        The (static) fault environment during the replay.
    latency / link_faults / byzantine_behaviour:
        The event layer's timing environment, as for
        :class:`~repro.simulation.scenarios.TimingScenario`.
    """

    name: str
    arrivals: tuple = ()
    period: float = 120.0
    peak_ratio: float = 4.0
    skew: float = 0.0
    fault_state: FaultScenario = field(default_factory=FaultScenario.fault_free)
    latency: LatencyModel = field(default_factory=lambda: LatencyModel.uniform(1.0, 0.5))
    link_faults: LinkFaults = field(default_factory=LinkFaults)
    byzantine_behaviour: str = "fabricate-timestamp"

    def __post_init__(self):
        if self.period <= 0.0:
            raise SimulationError(f"period must be positive, got {self.period}")
        if self.peak_ratio < 1.0:
            raise SimulationError(
                f"peak_ratio must be >= 1, got {self.peak_ratio}"
            )
        if self.skew < 0.0:
            raise SimulationError(f"skew must be >= 0, got {self.skew}")
        if self.byzantine_behaviour not in BYZANTINE_BEHAVIOURS:
            raise SimulationError(
                f"unknown Byzantine behaviour {self.byzantine_behaviour!r}; "
                f"choose one of {sorted(BYZANTINE_BEHAVIOURS)}"
            )
        arrivals = tuple((float(time), kind) for time, kind in self.arrivals)
        object.__setattr__(self, "arrivals", arrivals)
        previous = 0.0
        for time, kind in arrivals:
            if time < 0.0:
                raise SimulationError(f"arrival times must be >= 0, got {time}")
            if time < previous:
                raise SimulationError("arrival times must be non-decreasing")
            if kind not in _OP_KINDS:
                raise SimulationError(
                    f"arrival kind must be 'read' or 'write', got {kind!r}"
                )
            previous = time

    @classmethod
    def from_records(
        cls, name: str, records: Iterable[Mapping[str, object]], **kwargs: Any
    ) -> "TraceScenario":
        """Build a trace from ``{"t": float, "op": "read"|"write"}`` records.

        This is the on-disk trace format ``python -m repro run --trace``
        accepts: a JSON array of such objects, sorted by ``t``.
        """
        try:
            arrivals = tuple((float(item["t"]), str(item["op"])) for item in records)
        except (TypeError, KeyError) as exc:
            raise SimulationError(
                "trace records must be objects with 't' and 'op' fields"
            ) from exc
        return cls(name=name, arrivals=arrivals, **kwargs)

    @property
    def max_byzantine(self) -> int:
        return self.fault_state.num_byzantine

    def arrival_schedule(
        self,
        num_operations: int,
        rng: np.random.Generator,
        *,
        write_fraction: float = 0.5,
    ) -> tuple:
        """The ``(time, kind)`` arrivals this trace replays.

        An explicit trace is returned verbatim (``num_operations`` is
        ignored; the trace defines the workload).  Otherwise exactly
        ``num_operations`` diurnal arrivals are sampled over one period by
        inverse-transform from the intensity
        ``1 + (peak_ratio - 1) * (1 - cos(2*pi*t/period)) / 2`` and each is
        a write with probability ``write_fraction``.
        """
        if self.arrivals:
            return self.arrivals
        if num_operations < 1:
            raise SimulationError(
                f"num_operations must be >= 1, got {num_operations}"
            )
        grid = np.linspace(0.0, self.period, 2049)
        intensity = 1.0 + (self.peak_ratio - 1.0) * 0.5 * (
            1.0 - np.cos(2.0 * np.pi * grid / self.period)
        )
        cumulative = np.concatenate(
            [[0.0], np.cumsum(0.5 * (intensity[1:] + intensity[:-1]) * np.diff(grid))]
        )
        cumulative /= cumulative[-1]
        times = np.interp(np.sort(rng.random(num_operations)), cumulative, grid)
        writes = rng.random(num_operations) < write_fraction
        return tuple(
            (float(time), "write" if is_write else "read")
            for time, is_write in zip(times, writes)
        )


@dataclass
class TraceWorkloadResult(EventWorkloadResult):
    """An :class:`~repro.simulation.runner.EventWorkloadResult` for a trace replay.

    The inherited latency statistics are **sojourn times** (arrival to
    completion, queueing included); the queueing component and the offered
    arrival rate are reported separately.
    """

    queue_delay_mean: float = 0.0
    queue_delay_p99: float = 0.0
    arrival_rate: float = 0.0


def hot_quorum_strategy(
    system: QuorumSystem,
    *,
    skew: float,
    base: Strategy | None = None,
) -> Strategy:
    """Re-weight an access strategy by a Zipf law over its support.

    Quorum ``i`` of the base strategy's support (in support order) has its
    probability multiplied by ``(i + 1) ** -skew`` and the result is
    renormalised — a handful of "popular" quorums soak up most accesses,
    the hot-key pattern of real key-value traffic.  ``skew = 0`` returns the
    base strategy unchanged.
    """
    if skew < 0.0:
        raise SimulationError(f"skew must be >= 0, got {skew}")
    resolved = base if base is not None else resolve_strategy(system, None)
    if is_zero(skew):
        return resolved
    ranks = np.arange(1, len(resolved) + 1, dtype=float)
    weights = resolved.probabilities * ranks ** (-skew)
    return Strategy(
        dict(zip(resolved.support, weights)),
        normalise=True,
    )


def run_trace_workload(
    system: QuorumSystem,
    *,
    b: int,
    trace: TraceScenario,
    num_operations: int = 200,
    num_clients: int = 8,
    write_fraction: float = 0.5,
    strategy: Strategy | str | None = None,
    rng: np.random.Generator | None = None,
    max_attempts: int = 10,
    request_timeout: float | None = None,
    allow_overload: bool = False,
    keep_history: bool = False,
) -> TraceWorkloadResult:
    """Replay an open-loop arrival trace over the event-driven protocol stack.

    Arrivals join a FIFO queue served by a pool of ``num_clients`` resumable
    clients; an arrival whose turn comes starts its protocol operation
    immediately, so the measured sojourn time is queueing delay plus
    protocol latency.  Everything is a deterministic function of the ``rng``
    state (arrival sampling first, then the event stack's draws).

    Returns a :class:`TraceWorkloadResult`; the base-class accounting
    matches :func:`~repro.simulation.runner.run_event_workload`, so trace
    runs drop into the same report/comparison tooling.
    """
    if num_clients < 1:
        raise SimulationError(f"num_clients must be >= 1, got {num_clients}")
    if not 0.0 <= write_fraction <= 1.0:
        raise SimulationError(
            f"write_fraction must lie in [0, 1], got {write_fraction}"
        )
    if not isinstance(trace, TraceScenario):
        raise SimulationError(
            f"trace must be a TraceScenario, got {type(trace).__name__}"
        )
    if not allow_overload and trace.max_byzantine > b:
        raise SimulationError(
            f"trace has {trace.max_byzantine} Byzantine servers but the "
            f"deployment only masks b={b}; pass allow_overload=True to force it"
        )
    rng = ensure_rng(rng)
    universe = system.universe
    unknown = (trace.fault_state.byzantine | trace.fault_state.crashed) - universe.as_frozenset()
    if unknown:
        raise SimulationError(
            f"trace mentions servers outside the universe: {sorted(unknown, key=repr)[:4]}"
        )

    arrivals = trace.arrival_schedule(
        num_operations, rng, write_fraction=write_fraction
    )
    resolved = hot_quorum_strategy(
        system, skew=trace.skew, base=resolve_strategy(system, strategy)
    )

    latency = trace.latency
    if request_timeout is None:
        scale = latency.base + latency.jitter + 2.0 * latency.tail_mean
        slowest = max([1.0] + [factor for _, factor in trace.fault_state.slow])
        request_timeout = 1.0 if is_zero(scale) else 8.0 * scale * slowest

    timeline = FaultTimeline.static(trace.fault_state)
    scheduler = EventScheduler()
    servers = build_replicas(
        system,
        timeline.byzantine,
        byzantine_behaviour=trace.byzantine_behaviour,
        rng=rng,
    )
    network = EventNetwork(
        servers,
        timeline,
        scheduler=scheduler,
        latency=latency,
        faults=trace.link_faults,
        rng=np.random.default_rng(rng.integers(2**63)),
    )
    recorder = HistoryRecorder(
        initial_pair=ValueTimestampPair(value=None, timestamp=Timestamp.zero())
    )
    policy = RetryPolicy(max_attempts=max_attempts, request_timeout=request_timeout)
    clients = [
        AsyncQuorumClient(
            client_id,
            system,
            network,
            b=b,
            policy=policy,
            rng=np.random.default_rng(rng.integers(2**63)),
            strategy=resolved,
            history=recorder,
        )
        for client_id in range(num_clients)
    ]

    idle: deque = deque(clients)
    pending: deque = deque()
    sojourns: list[float] = []
    queue_delays: list[float] = []
    dispatched = {"count": 0}

    def try_dispatch() -> None:
        while idle and pending:
            arrived_at, kind = pending.popleft()
            client = idle.popleft()
            queue_delays.append(scheduler.now - arrived_at)
            sequence = dispatched["count"]
            dispatched["count"] += 1

            def finish(_result, client=client, arrived_at=arrived_at) -> None:
                sojourns.append(scheduler.now - arrived_at)
                idle.append(client)
                try_dispatch()

            if kind == "write":
                client.write((client.client_id, sequence), finish)
            else:
                client.read(finish)

    for arrived_at, kind in arrivals:
        scheduler.schedule(
            arrived_at,
            lambda arrived_at=arrived_at, kind=kind: (
                pending.append((arrived_at, kind)),
                try_dispatch(),
            ),
        )
    scheduler.run()

    records = recorder.records
    check = recorder.check()
    total_operations = len(records)
    successful = [record for record in records if record.success]
    total_success = max(1, len(successful))
    per_server_load = {
        server_id: sum(client.successful_access_counts[server_id] for client in clients)
        / total_success
        for server_id in universe
    }
    per_server_attempted = {
        server_id: sum(client.attempted_access_counts[server_id] for client in clients)
        / max(1, total_operations)
        for server_id in universe
    }
    per_server_messages = {
        server_id: network.attempted_counts[server_id] / max(1, total_operations)
        for server_id in universe
    }
    sojourn_array = np.array(sojourns) if sojourns else np.array([])
    queue_array = np.array(queue_delays) if queue_delays else np.array([])
    span = arrivals[-1][0] - arrivals[0][0] if len(arrivals) > 1 else 0.0
    return TraceWorkloadResult(
        operations=total_operations,
        successful_reads=sum(1 for r in successful if r.kind == "read"),
        successful_writes=sum(1 for r in successful if r.kind == "write"),
        failed_operations=total_operations - len(successful),
        consistency_violations=check.fabricated_reads,
        stale_reads=check.stale_reads,
        empirical_load=max(per_server_load.values()),
        per_server_load=per_server_load,
        per_server_messages=per_server_messages,
        per_server_attempted=per_server_attempted,
        duration=(
            max(r.responded_at for r in records) - arrivals[0][0] if records else 0.0
        ),
        events_processed=scheduler.events_processed,
        timeouts=sum(client.timeouts for client in clients),
        latency_mean=float(sojourn_array.mean()) if sojourn_array.size else 0.0,
        latency_p50=float(np.percentile(sojourn_array, 50)) if sojourn_array.size else 0.0,
        latency_p90=float(np.percentile(sojourn_array, 90)) if sojourn_array.size else 0.0,
        latency_p99=float(np.percentile(sojourn_array, 99)) if sojourn_array.size else 0.0,
        check=check,
        history=tuple(records) if keep_history else (),
        queue_delay_mean=float(queue_array.mean()) if queue_array.size else 0.0,
        queue_delay_p99=float(np.percentile(queue_array, 99)) if queue_array.size else 0.0,
        arrival_rate=len(arrivals) / span if span > 0.0 else 0.0,
    )
