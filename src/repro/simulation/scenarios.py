"""Parameterised workload scenarios for the vectorised simulation engine.

A :class:`WorkloadScenario` is a *phased* fault schedule: a sequence of
:class:`~repro.simulation.faults.FaultScenario` states, each active for a
fraction of the workload, plus the lie the Byzantine servers tell
(``"fabricate"`` — all colluders vouch for one forged pair — or
``"equivocate"`` — they split into two camps vouching for conflicting pairs).
A single static :class:`FaultScenario` is the one-phase special case.

The factory functions below build the scenario classes the evaluation cares
about:

* :func:`crash_scenario` / :func:`random_crash_scenario` — static crashes,
  chosen explicitly or by the independent-crash model of Definition 3.10;
* :func:`byzantine_scenario` — up to ``b`` (or more, for negative tests)
  lying servers;
* :func:`correlated_failure_scenario` — whole failure domains (racks) crash
  together;
* :func:`partition_scenario` — the client side of a network partition only
  reaches one block of servers, the rest look crashed;
* :func:`churn_scenario` — time-varying crashes: a different crash set per
  phase;
* :func:`scenario_suite` — one representative instance of each, used by the
  example and the scenario benchmarks.

See ``docs/simulation.md`` for how the engine executes these schedules.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass
from math import isqrt

import numpy as np

from repro.core.universe import Universe
from repro.exceptions import SimulationError
from repro.percolation.lattice import TriangularGrid
from repro.percolation.site import sample_open_vertices
from repro.simulation.events import FaultTimeline, LatencyModel, LinkFaults
from repro.simulation.faults import FaultInjector, FaultScenario

__all__ = [
    "BYZANTINE_MODELS",
    "TimingScenario",
    "WorkloadScenario",
    "blast_radius_scenario",
    "byzantine_scenario",
    "churn_scenario",
    "correlated_failure_scenario",
    "crash_recover_scenario",
    "crash_scenario",
    "fault_free_scenario",
    "flaky_links_scenario",
    "lattice_embedding",
    "partition_scenario",
    "percolation_scenario",
    "random_crash_scenario",
    "scenario_suite",
    "slow_server_scenario",
    "timing_scenario_suite",
]

#: Byzantine vouching models understood by the scenario engine.
BYZANTINE_MODELS = frozenset({"fabricate", "equivocate"})


@dataclass(frozen=True)
class WorkloadScenario:
    """A phased fault schedule plus the Byzantine vouching model.

    Attributes
    ----------
    name:
        Human-readable label used in tables and reports.
    phases:
        The fault state active during each phase, in order.
    phase_fractions:
        Fraction of the workload's operations spent in each phase; must be
        positive and sum to 1.
    byzantine_model:
        ``"fabricate"`` (all Byzantine servers vouch for one forged pair) or
        ``"equivocate"`` (they split into two camps with conflicting forged
        pairs).  Irrelevant when no phase has Byzantine servers.
    """

    name: str
    phases: tuple[FaultScenario, ...]
    phase_fractions: tuple[float, ...] = ()
    byzantine_model: str = "fabricate"

    def __post_init__(self):
        if not self.phases:
            raise SimulationError("a workload scenario needs at least one phase")
        fractions = self.phase_fractions
        if not fractions:
            fractions = tuple(1.0 / len(self.phases) for _ in self.phases)
            object.__setattr__(self, "phase_fractions", fractions)
        if len(fractions) != len(self.phases):
            raise SimulationError(
                f"{len(self.phases)} phases but {len(fractions)} phase fractions"
            )
        if any(fraction <= 0.0 for fraction in fractions):
            raise SimulationError("phase fractions must be positive")
        if abs(sum(fractions) - 1.0) > 1e-9:
            raise SimulationError(f"phase fractions sum to {sum(fractions)}, expected 1")
        if self.byzantine_model not in BYZANTINE_MODELS:
            raise SimulationError(
                f"unknown Byzantine model {self.byzantine_model!r}; "
                f"choose one of {sorted(BYZANTINE_MODELS)}"
            )

    @classmethod
    def from_fault_scenario(
        cls,
        scenario: FaultScenario,
        *,
        name: str = "static",
        byzantine_model: str = "fabricate",
    ) -> "WorkloadScenario":
        """Wrap a static :class:`FaultScenario` as a one-phase schedule."""
        return cls(
            name=name,
            phases=(scenario,),
            phase_fractions=(1.0,),
            byzantine_model=byzantine_model,
        )

    @property
    def num_phases(self) -> int:
        return len(self.phases)

    @property
    def max_byzantine(self) -> int:
        """The largest Byzantine count over all phases (checked against ``b``)."""
        return max(phase.num_byzantine for phase in self.phases)

    def validate_against(self, universe: Universe) -> None:
        """Check that every phase only mentions servers of ``universe``."""
        universe_set = universe.as_frozenset()
        for index, phase in enumerate(self.phases):
            unknown = (phase.byzantine | phase.crashed) - universe_set
            if unknown:
                raise SimulationError(
                    f"phase {index} of scenario {self.name!r} mentions servers "
                    f"outside the universe: {sorted(unknown, key=repr)[:4]}"
                )

    def phase_of_operations(self, num_operations: int) -> np.ndarray:
        """Map operation indices ``0..num_operations-1`` to phase indices.

        Phase boundaries are the cumulative phase fractions rounded down to
        operation counts; every phase is guaranteed at least the operations
        its fraction rounds to, and the final phase absorbs the remainder.
        """
        if num_operations <= 0:
            raise SimulationError(
                f"num_operations must be positive, got {num_operations}"
            )
        boundaries = np.floor(
            np.cumsum(self.phase_fractions) * num_operations
        ).astype(np.int64)
        boundaries[-1] = num_operations
        return np.searchsorted(boundaries, np.arange(num_operations), side="right")

    def __repr__(self) -> str:
        return (
            f"WorkloadScenario(name={self.name!r}, phases={self.num_phases}, "
            f"byzantine_model={self.byzantine_model!r})"
        )


def fault_free_scenario() -> WorkloadScenario:
    """The scenario with no faults at all."""
    return WorkloadScenario.from_fault_scenario(
        FaultScenario.fault_free(), name="fault-free"
    )


def crash_scenario(
    universe: Universe, crashed: Iterable[Hashable], *, name: str = "crash"
) -> WorkloadScenario:
    """A static scenario in which the given servers are crashed throughout."""
    crashed_set = universe.subset(crashed)
    return WorkloadScenario.from_fault_scenario(
        FaultScenario(crashed=crashed_set), name=name
    )


def random_crash_scenario(
    universe: Universe,
    p: float,
    rng: np.random.Generator,
    *,
    byzantine: Iterable[Hashable] = (),
    name: str = "iid-crash",
) -> WorkloadScenario:
    """Each server crashed independently with probability ``p`` (Definition 3.10)."""
    injector = FaultInjector(universe, rng)
    return WorkloadScenario.from_fault_scenario(
        injector.independent_crashes(p, byzantine=byzantine), name=name
    )


def byzantine_scenario(
    universe: Universe,
    byzantine: Iterable[Hashable],
    *,
    model: str = "fabricate",
    crashed: Iterable[Hashable] = (),
    name: str | None = None,
) -> WorkloadScenario:
    """A static scenario with lying servers (and optionally some crashed ones)."""
    byzantine_set = universe.subset(byzantine)
    crashed_set = universe.subset(crashed)
    return WorkloadScenario.from_fault_scenario(
        FaultScenario(byzantine=byzantine_set, crashed=crashed_set),
        name=name if name is not None else f"byzantine-{model}",
        byzantine_model=model,
    )


def correlated_failure_scenario(
    universe: Universe,
    groups: Sequence[Iterable[Hashable]],
    failed_groups: Iterable[int],
    *,
    name: str = "correlated",
) -> WorkloadScenario:
    """Whole failure domains crash together.

    Parameters
    ----------
    groups:
        A partition (or any covering) of the universe into failure domains —
        racks, availability zones, switches.
    failed_groups:
        Indices into ``groups``; every server of each selected group crashes.
    """
    failed = set()
    group_list = [universe.subset(group) for group in groups]
    for index in failed_groups:
        if not 0 <= index < len(group_list):
            raise SimulationError(
                f"failed group index {index} out of range for {len(group_list)} groups"
            )
        failed |= group_list[index]
    return WorkloadScenario.from_fault_scenario(
        FaultScenario(crashed=frozenset(failed)), name=name
    )


def partition_scenario(
    universe: Universe, reachable: Iterable[Hashable], *, name: str = "partition"
) -> WorkloadScenario:
    """Clients can only reach one side of a network partition.

    Servers outside ``reachable`` are unreachable from the clients'
    partition, which the synchronous model cannot distinguish from a crash;
    quorums fully inside the reachable block keep the service alive.
    """
    reachable_set = universe.subset(reachable)
    if not reachable_set:
        raise SimulationError("the clients' partition must reach at least one server")
    unreachable = universe.as_frozenset() - reachable_set
    return WorkloadScenario.from_fault_scenario(
        FaultScenario(crashed=unreachable), name=name
    )


def churn_scenario(
    universe: Universe,
    crash_sets: Sequence[Iterable[Hashable]],
    *,
    phase_fractions: Sequence[float] | None = None,
    byzantine: Iterable[Hashable] = (),
    name: str = "churn",
) -> WorkloadScenario:
    """Time-varying crashes: a different crash set in each phase.

    This toggles *responsiveness* of a fixed universe only: the membership
    never changes, crashed servers remain members (rolling restarts,
    flapping links) and may answer again in a later phase, while an optional
    fixed Byzantine set keeps lying throughout.  Actual membership change —
    servers joining or being severed mid-run, with quorum thresholds
    recomputed per epoch — is the job of the ``reconfig-*`` scenarios built
    on :class:`repro.simulation.reconfig.MembershipTimeline`; see
    ``docs/membership.md``.
    """
    if not crash_sets:
        raise SimulationError("churn needs at least one phase of crashes")
    byzantine_set = universe.subset(byzantine)
    phases = tuple(
        FaultScenario(byzantine=byzantine_set, crashed=universe.subset(crashed))
        for crashed in crash_sets
    )
    fractions = tuple(phase_fractions) if phase_fractions is not None else ()
    return WorkloadScenario(name=name, phases=phases, phase_fractions=fractions)


def lattice_embedding(universe: Universe) -> tuple[TriangularGrid, dict]:
    """Embed a square universe into the triangulated lattice of Section 7.

    Returns a :class:`~repro.percolation.lattice.TriangularGrid` of side
    ``sqrt(n)`` and a map from lattice vertices to universe elements, pairing
    both in enumeration order.  The six-neighbour adjacency of the lattice
    becomes a physical-locality model for the deployment — nearby servers
    share racks, switches and power — which is what lets site-percolation
    draws act as correlated fault scenarios on any square universe (the
    M-Path universe *is* the lattice, so there the embedding is the
    identity).
    """
    side = isqrt(universe.size)
    if side * side != universe.size or side < 2:
        raise SimulationError(
            "percolation fault models need a square universe of side >= 2, "
            f"got n={universe.size}"
        )
    grid = TriangularGrid(side)
    return grid, dict(zip(grid.vertices(), universe.elements))


def percolation_scenario(
    universe: Universe,
    *,
    p_closed: float,
    rng: np.random.Generator,
    phases: int = 8,
    name: str = "percolation",
) -> WorkloadScenario:
    """Correlated-failure phases drawn from site percolation on the lattice.

    Each phase is one independent site-percolation sample at closure
    probability ``p_closed``: closed vertices crash for the phase, open ones
    stay up.  Because sites close independently, each phase is exactly one
    trial of the Definition 3.10 crash model — the fraction of phases in
    which no quorum survives is a Monte-Carlo estimate of ``Fp``, which is
    what :func:`repro.analysis.conformance.availability_conformance` checks
    against the closed forms of :mod:`repro.core.analytic`.
    """
    if phases < 1:
        raise SimulationError(f"phases must be >= 1, got {phases}")
    grid, vertex_to_server = lattice_embedding(universe)
    states = []
    for _ in range(phases):
        open_vertices = sample_open_vertices(grid, p_closed, rng)
        crashed = frozenset(
            server
            for vertex, server in vertex_to_server.items()
            if vertex not in open_vertices
        )
        states.append(FaultScenario(crashed=crashed))
    return WorkloadScenario(name=name, phases=tuple(states))


def _lattice_ball(grid: TriangularGrid, centre, radius: int) -> set:
    """All vertices within ``radius`` lattice hops of ``centre``."""
    ball = {centre}
    frontier = {centre}
    for _ in range(radius):
        frontier = {
            neighbour
            for vertex in frontier
            for neighbour in grid.neighbours(vertex)
        } - ball
        ball |= frontier
    return ball


def blast_radius_scenario(
    universe: Universe,
    *,
    rng: np.random.Generator,
    radius: int = 1,
    blasts: int = 1,
    phases: int = 6,
    name: str = "blast-radius",
) -> WorkloadScenario:
    """Rack/zone blast radius: whole lattice neighbourhoods down per phase.

    Each phase picks ``blasts`` random epicentres on the lattice embedding
    and crashes every server within ``radius`` hops — the failure geometry
    of a dead rack or switch, where the damage is spatially contiguous
    rather than independent.  The counterpart of
    :func:`correlated_failure_scenario` with lattice locality instead of
    explicit domain lists.
    """
    if radius < 0:
        raise SimulationError(f"radius must be >= 0, got {radius}")
    if blasts < 1:
        raise SimulationError(f"blasts must be >= 1, got {blasts}")
    if phases < 1:
        raise SimulationError(f"phases must be >= 1, got {phases}")
    grid, vertex_to_server = lattice_embedding(universe)
    vertices = list(grid.vertices())
    if blasts > len(vertices):
        raise SimulationError(
            f"cannot place {blasts} blasts on {len(vertices)} vertices"
        )
    states = []
    for _ in range(phases):
        epicentres = rng.choice(len(vertices), size=blasts, replace=False)
        crashed: set = set()
        for index in epicentres:
            for vertex in _lattice_ball(grid, vertices[int(index)], radius):
                crashed.add(vertex_to_server[vertex])
        states.append(FaultScenario(crashed=frozenset(crashed)))
    return WorkloadScenario(name=name, phases=tuple(states))


@dataclass(frozen=True)
class TimingScenario:
    """A *timed* fault schedule for the event-driven simulator.

    Where :class:`WorkloadScenario` slices a batch of operations into
    fractional phases (the vectorised engine has no clock), a timing scenario
    speaks the event layer's language: fault states anchored at simulated
    *times*, link latency/reliability models, and Byzantine replica
    behaviour.  ``run_event_workload`` consumes these directly.

    Attributes
    ----------
    name:
        Human-readable label used in tables and reports.
    transitions:
        ``(time, FaultScenario)`` pairs; the scenario whose time is the
        largest not exceeding the current simulated time is in force, so
        servers crash and recover *mid-operation*.
    latency:
        The link latency model (constant + jitter + exponential tail, with
        per-server slow factors coming from the fault states themselves).
    link_faults:
        Message loss / duplication probabilities.
    byzantine_behaviour:
        The lie Byzantine replicas tell
        (:data:`~repro.simulation.server.BYZANTINE_BEHAVIOURS`).
    """

    name: str
    transitions: tuple[tuple[float, FaultScenario], ...]
    latency: LatencyModel = LatencyModel()
    link_faults: LinkFaults = LinkFaults()
    byzantine_behaviour: str = "fabricate-timestamp"

    def __post_init__(self):
        if not self.transitions:
            raise SimulationError("a timing scenario needs at least one fault state")

    @classmethod
    def static(
        cls,
        scenario: FaultScenario,
        *,
        name: str = "static",
        latency: LatencyModel | None = None,
        link_faults: LinkFaults | None = None,
        byzantine_behaviour: str = "fabricate-timestamp",
    ) -> "TimingScenario":
        """Wrap a single fault state as an always-active timing scenario."""
        return cls(
            name=name,
            transitions=((0.0, scenario),),
            latency=latency if latency is not None else LatencyModel(),
            link_faults=link_faults if link_faults is not None else LinkFaults(),
            byzantine_behaviour=byzantine_behaviour,
        )

    def timeline(self) -> FaultTimeline:
        """The :class:`~repro.simulation.events.FaultTimeline` of this scenario."""
        return FaultTimeline(self.transitions)

    @property
    def byzantine(self) -> frozenset:
        """Servers Byzantine in any state."""
        return self.timeline().byzantine

    @property
    def max_byzantine(self) -> int:
        """The largest simultaneous Byzantine count over all states."""
        return self.timeline().max_byzantine

    def validate_against(self, universe: Universe) -> None:
        """Check that every state only mentions servers of ``universe``."""
        self.timeline().validate_against(universe)


def slow_server_scenario(
    universe: Universe,
    slow: dict,
    *,
    latency: LatencyModel | None = None,
    byzantine: Iterable[Hashable] = (),
    name: str = "slow-servers",
) -> TimingScenario:
    """Slow-but-correct servers: service times stretched by per-server factors.

    Slow servers answer honestly but late; clients with tight request
    timeouts suspect them and steer away, trading their capacity for
    latency — a timing fault no untimed layer can express.
    """
    unknown = frozenset(slow) - universe.as_frozenset()
    if unknown:
        raise SimulationError(
            f"slow servers outside the universe: {sorted(unknown, key=repr)[:4]}"
        )
    state = FaultScenario(byzantine=universe.subset(byzantine), slow=dict(slow))
    return TimingScenario.static(
        state,
        name=name,
        latency=latency if latency is not None else LatencyModel.uniform(1.0, 0.5),
    )


def flaky_links_scenario(
    *,
    loss: float = 0.05,
    duplication: float = 0.02,
    latency: LatencyModel | None = None,
    byzantine: Iterable[Hashable] = (),
    universe: Universe | None = None,
    name: str = "flaky-links",
) -> TimingScenario:
    """Lossy, duplicating, reordering links between correct servers.

    Lost requests are indistinguishable from crashes (the timeout fires);
    lost replies waste server work; duplicated requests exercise handler
    idempotence; jittered latencies reorder messages in flight.
    """
    byzantine_set = (
        universe.subset(byzantine) if universe is not None else frozenset(byzantine)
    )
    return TimingScenario.static(
        FaultScenario(byzantine=byzantine_set),
        name=name,
        latency=latency if latency is not None else LatencyModel.uniform(1.0, 1.0),
        link_faults=LinkFaults(loss=loss, duplication=duplication),
    )


def crash_recover_scenario(
    universe: Universe,
    crashed: Iterable[Hashable],
    *,
    down_at: float,
    up_at: float,
    latency: LatencyModel | None = None,
    byzantine: Iterable[Hashable] = (),
    name: str = "crash-recover",
) -> TimingScenario:
    """Servers crash at ``down_at`` and recover at ``up_at`` — mid-operation.

    Requests already in flight when the crash lands find the server dead on
    arrival; operations spanning the recovery see it come back.  This is the
    timed counterpart of :func:`churn_scenario`.
    """
    if not 0.0 <= down_at < up_at:
        raise SimulationError(
            f"need 0 <= down_at < up_at, got down_at={down_at}, up_at={up_at}"
        )
    byzantine_set = universe.subset(byzantine)
    crashed_set = universe.subset(crashed)
    healthy = FaultScenario(byzantine=byzantine_set)
    degraded = FaultScenario(byzantine=byzantine_set, crashed=crashed_set)
    return TimingScenario(
        name=name,
        transitions=((0.0, healthy), (down_at, degraded), (up_at, healthy)),
        latency=latency if latency is not None else LatencyModel.uniform(1.0, 0.5),
    )


def timing_scenario_suite(
    universe: Universe,
    *,
    b: int,
    rng: np.random.Generator,
    latency: LatencyModel | None = None,
) -> list[TimingScenario]:
    """One representative instance of each timing-fault class.

    Mirrors :func:`scenario_suite` for the event-driven layer: slow servers,
    flaky links, a mid-run crash/recover window, and (when ``b > 0``) slow
    servers combined with ``b`` Byzantine ones — the hybrid the paper's
    asynchronous-but-responsive model actually allows.
    """
    latency = latency if latency is not None else LatencyModel.uniform(1.0, 0.5)
    injector = FaultInjector(universe, rng)
    elements = universe.elements
    slow_count = max(1, universe.size // 10)
    slow_map = {server_id: 4.0 for server_id in elements[:slow_count]}

    suite = [
        TimingScenario.static(
            FaultScenario.fault_free(), name="timed-fault-free", latency=latency
        ),
        slow_server_scenario(universe, slow_map, latency=latency),
        flaky_links_scenario(latency=latency),
        crash_recover_scenario(
            universe, elements[: max(1, universe.size // 4)], down_at=10.0, up_at=40.0,
            latency=latency,
        ),
    ]
    if b > 0:
        byz = injector.exact(num_byzantine=b).byzantine
        suite.append(
            slow_server_scenario(
                universe, slow_map, byzantine=byz, latency=latency,
                name="slow-plus-byzantine",
            )
        )
    return suite


def _failure_domains(universe: Universe) -> list[tuple[Hashable, ...]]:
    """Group the universe into failure domains for the default suite.

    Grid-style universes of ``(row, column)`` tuples are grouped by row;
    anything else is chopped into ``~sqrt(n)`` contiguous chunks in universe
    order.
    """
    elements = universe.elements
    if all(isinstance(element, tuple) and len(element) == 2 for element in elements):
        rows: dict[Hashable, list[Hashable]] = {}
        for element in elements:
            rows.setdefault(element[0], []).append(element)
        return [tuple(group) for group in rows.values()]
    chunk = max(1, int(round(len(elements) ** 0.5)))
    return [tuple(elements[start : start + chunk]) for start in range(0, len(elements), chunk)]


def scenario_suite(
    universe: Universe,
    *,
    b: int,
    rng: np.random.Generator,
    crash_probability: float = 0.1,
) -> list[WorkloadScenario]:
    """One representative instance of every scenario class.

    Parameters
    ----------
    universe:
        The servers of the deployment.
    b:
        The masking parameter; Byzantine scenarios use exactly ``b`` liars so
        the suite stays within the deployment's masking bound.
    rng:
        Randomness for the crash draws and fault placements.
    crash_probability:
        Per-server crash probability of the iid-crash scenario.
    """
    injector = FaultInjector(universe, rng)
    elements = universe.elements
    n = universe.size
    domains = _failure_domains(universe)

    suite = [fault_free_scenario()]
    suite.append(
        WorkloadScenario.from_fault_scenario(
            injector.independent_crashes(crash_probability), name="iid-crash"
        )
    )
    if b > 0:
        byz = injector.exact(num_byzantine=b).byzantine
        suite.append(byzantine_scenario(universe, byz, model="fabricate"))
        suite.append(byzantine_scenario(universe, byz, model="equivocate"))
    suite.append(
        correlated_failure_scenario(universe, domains, [0], name="rack-failure")
    )
    suite.append(
        partition_scenario(universe, elements[: max(1, (3 * n) // 4)], name="partition")
    )
    third = max(1, n // 3)
    suite.append(
        churn_scenario(
            universe,
            [elements[:third], elements[third : 2 * third], elements[2 * third : 2 * third + third]],
            name="churn",
        )
    )
    return suite
