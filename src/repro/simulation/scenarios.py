"""Parameterised workload scenarios for the vectorised simulation engine.

A :class:`WorkloadScenario` is a *phased* fault schedule: a sequence of
:class:`~repro.simulation.faults.FaultScenario` states, each active for a
fraction of the workload, plus the lie the Byzantine servers tell
(``"fabricate"`` — all colluders vouch for one forged pair — or
``"equivocate"`` — they split into two camps vouching for conflicting pairs).
A single static :class:`FaultScenario` is the one-phase special case.

The factory functions below build the scenario classes the evaluation cares
about:

* :func:`crash_scenario` / :func:`random_crash_scenario` — static crashes,
  chosen explicitly or by the independent-crash model of Definition 3.10;
* :func:`byzantine_scenario` — up to ``b`` (or more, for negative tests)
  lying servers;
* :func:`correlated_failure_scenario` — whole failure domains (racks) crash
  together;
* :func:`partition_scenario` — the client side of a network partition only
  reaches one block of servers, the rest look crashed;
* :func:`churn_scenario` — time-varying crashes: a different crash set per
  phase;
* :func:`scenario_suite` — one representative instance of each, used by the
  example and the scenario benchmarks.

See ``docs/simulation.md`` for how the engine executes these schedules.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.universe import Universe
from repro.exceptions import SimulationError
from repro.simulation.faults import FaultInjector, FaultScenario

__all__ = [
    "BYZANTINE_MODELS",
    "WorkloadScenario",
    "byzantine_scenario",
    "churn_scenario",
    "correlated_failure_scenario",
    "crash_scenario",
    "fault_free_scenario",
    "partition_scenario",
    "random_crash_scenario",
    "scenario_suite",
]

#: Byzantine vouching models understood by the scenario engine.
BYZANTINE_MODELS = frozenset({"fabricate", "equivocate"})


@dataclass(frozen=True)
class WorkloadScenario:
    """A phased fault schedule plus the Byzantine vouching model.

    Attributes
    ----------
    name:
        Human-readable label used in tables and reports.
    phases:
        The fault state active during each phase, in order.
    phase_fractions:
        Fraction of the workload's operations spent in each phase; must be
        positive and sum to 1.
    byzantine_model:
        ``"fabricate"`` (all Byzantine servers vouch for one forged pair) or
        ``"equivocate"`` (they split into two camps with conflicting forged
        pairs).  Irrelevant when no phase has Byzantine servers.
    """

    name: str
    phases: tuple[FaultScenario, ...]
    phase_fractions: tuple[float, ...] = ()
    byzantine_model: str = "fabricate"

    def __post_init__(self):
        if not self.phases:
            raise SimulationError("a workload scenario needs at least one phase")
        fractions = self.phase_fractions
        if not fractions:
            fractions = tuple(1.0 / len(self.phases) for _ in self.phases)
            object.__setattr__(self, "phase_fractions", fractions)
        if len(fractions) != len(self.phases):
            raise SimulationError(
                f"{len(self.phases)} phases but {len(fractions)} phase fractions"
            )
        if any(fraction <= 0.0 for fraction in fractions):
            raise SimulationError("phase fractions must be positive")
        if abs(sum(fractions) - 1.0) > 1e-9:
            raise SimulationError(f"phase fractions sum to {sum(fractions)}, expected 1")
        if self.byzantine_model not in BYZANTINE_MODELS:
            raise SimulationError(
                f"unknown Byzantine model {self.byzantine_model!r}; "
                f"choose one of {sorted(BYZANTINE_MODELS)}"
            )

    @classmethod
    def from_fault_scenario(
        cls,
        scenario: FaultScenario,
        *,
        name: str = "static",
        byzantine_model: str = "fabricate",
    ) -> "WorkloadScenario":
        """Wrap a static :class:`FaultScenario` as a one-phase schedule."""
        return cls(
            name=name,
            phases=(scenario,),
            phase_fractions=(1.0,),
            byzantine_model=byzantine_model,
        )

    @property
    def num_phases(self) -> int:
        return len(self.phases)

    @property
    def max_byzantine(self) -> int:
        """The largest Byzantine count over all phases (checked against ``b``)."""
        return max(phase.num_byzantine for phase in self.phases)

    def validate_against(self, universe: Universe) -> None:
        """Check that every phase only mentions servers of ``universe``."""
        universe_set = universe.as_frozenset()
        for index, phase in enumerate(self.phases):
            unknown = (phase.byzantine | phase.crashed) - universe_set
            if unknown:
                raise SimulationError(
                    f"phase {index} of scenario {self.name!r} mentions servers "
                    f"outside the universe: {sorted(unknown, key=repr)[:4]}"
                )

    def phase_of_operations(self, num_operations: int) -> np.ndarray:
        """Map operation indices ``0..num_operations-1`` to phase indices.

        Phase boundaries are the cumulative phase fractions rounded down to
        operation counts; every phase is guaranteed at least the operations
        its fraction rounds to, and the final phase absorbs the remainder.
        """
        if num_operations <= 0:
            raise SimulationError(
                f"num_operations must be positive, got {num_operations}"
            )
        boundaries = np.floor(
            np.cumsum(self.phase_fractions) * num_operations
        ).astype(np.int64)
        boundaries[-1] = num_operations
        return np.searchsorted(boundaries, np.arange(num_operations), side="right")

    def __repr__(self) -> str:
        return (
            f"WorkloadScenario(name={self.name!r}, phases={self.num_phases}, "
            f"byzantine_model={self.byzantine_model!r})"
        )


def fault_free_scenario() -> WorkloadScenario:
    """The scenario with no faults at all."""
    return WorkloadScenario.from_fault_scenario(
        FaultScenario.fault_free(), name="fault-free"
    )


def crash_scenario(
    universe: Universe, crashed: Iterable[Hashable], *, name: str = "crash"
) -> WorkloadScenario:
    """A static scenario in which the given servers are crashed throughout."""
    crashed_set = universe.subset(crashed)
    return WorkloadScenario.from_fault_scenario(
        FaultScenario(crashed=crashed_set), name=name
    )


def random_crash_scenario(
    universe: Universe,
    p: float,
    rng: np.random.Generator,
    *,
    byzantine: Iterable[Hashable] = (),
    name: str = "iid-crash",
) -> WorkloadScenario:
    """Each server crashed independently with probability ``p`` (Definition 3.10)."""
    injector = FaultInjector(universe, rng)
    return WorkloadScenario.from_fault_scenario(
        injector.independent_crashes(p, byzantine=byzantine), name=name
    )


def byzantine_scenario(
    universe: Universe,
    byzantine: Iterable[Hashable],
    *,
    model: str = "fabricate",
    crashed: Iterable[Hashable] = (),
    name: str | None = None,
) -> WorkloadScenario:
    """A static scenario with lying servers (and optionally some crashed ones)."""
    byzantine_set = universe.subset(byzantine)
    crashed_set = universe.subset(crashed)
    return WorkloadScenario.from_fault_scenario(
        FaultScenario(byzantine=byzantine_set, crashed=crashed_set),
        name=name if name is not None else f"byzantine-{model}",
        byzantine_model=model,
    )


def correlated_failure_scenario(
    universe: Universe,
    groups: Sequence[Iterable[Hashable]],
    failed_groups: Iterable[int],
    *,
    name: str = "correlated",
) -> WorkloadScenario:
    """Whole failure domains crash together.

    Parameters
    ----------
    groups:
        A partition (or any covering) of the universe into failure domains —
        racks, availability zones, switches.
    failed_groups:
        Indices into ``groups``; every server of each selected group crashes.
    """
    failed = set()
    group_list = [universe.subset(group) for group in groups]
    for index in failed_groups:
        if not 0 <= index < len(group_list):
            raise SimulationError(
                f"failed group index {index} out of range for {len(group_list)} groups"
            )
        failed |= group_list[index]
    return WorkloadScenario.from_fault_scenario(
        FaultScenario(crashed=frozenset(failed)), name=name
    )


def partition_scenario(
    universe: Universe, reachable: Iterable[Hashable], *, name: str = "partition"
) -> WorkloadScenario:
    """Clients can only reach one side of a network partition.

    Servers outside ``reachable`` are unreachable from the clients'
    partition, which the synchronous model cannot distinguish from a crash;
    quorums fully inside the reachable block keep the service alive.
    """
    reachable_set = universe.subset(reachable)
    if not reachable_set:
        raise SimulationError("the clients' partition must reach at least one server")
    unreachable = universe.as_frozenset() - reachable_set
    return WorkloadScenario.from_fault_scenario(
        FaultScenario(crashed=unreachable), name=name
    )


def churn_scenario(
    universe: Universe,
    crash_sets: Sequence[Iterable[Hashable]],
    *,
    phase_fractions: Sequence[float] | None = None,
    byzantine: Iterable[Hashable] = (),
    name: str = "churn",
) -> WorkloadScenario:
    """Time-varying crashes: a different crash set in each phase.

    Servers come and go between phases (rolling restarts, flapping links)
    while an optional fixed Byzantine set keeps lying throughout.
    """
    if not crash_sets:
        raise SimulationError("churn needs at least one phase of crashes")
    byzantine_set = universe.subset(byzantine)
    phases = tuple(
        FaultScenario(byzantine=byzantine_set, crashed=universe.subset(crashed))
        for crashed in crash_sets
    )
    fractions = tuple(phase_fractions) if phase_fractions is not None else ()
    return WorkloadScenario(name=name, phases=phases, phase_fractions=fractions)


def _failure_domains(universe: Universe) -> list[tuple[Hashable, ...]]:
    """Group the universe into failure domains for the default suite.

    Grid-style universes of ``(row, column)`` tuples are grouped by row;
    anything else is chopped into ``~sqrt(n)`` contiguous chunks in universe
    order.
    """
    elements = universe.elements
    if all(isinstance(element, tuple) and len(element) == 2 for element in elements):
        rows: dict[Hashable, list[Hashable]] = {}
        for element in elements:
            rows.setdefault(element[0], []).append(element)
        return [tuple(group) for group in rows.values()]
    chunk = max(1, int(round(len(elements) ** 0.5)))
    return [tuple(elements[start : start + chunk]) for start in range(0, len(elements), chunk)]


def scenario_suite(
    universe: Universe,
    *,
    b: int,
    rng: np.random.Generator,
    crash_probability: float = 0.1,
) -> list[WorkloadScenario]:
    """One representative instance of every scenario class.

    Parameters
    ----------
    universe:
        The servers of the deployment.
    b:
        The masking parameter; Byzantine scenarios use exactly ``b`` liars so
        the suite stays within the deployment's masking bound.
    rng:
        Randomness for the crash draws and fault placements.
    crash_probability:
        Per-server crash probability of the iid-crash scenario.
    """
    injector = FaultInjector(universe, rng)
    elements = universe.elements
    n = universe.size
    domains = _failure_domains(universe)

    suite = [fault_free_scenario()]
    suite.append(
        WorkloadScenario.from_fault_scenario(
            injector.independent_crashes(crash_probability), name="iid-crash"
        )
    )
    if b > 0:
        byz = injector.exact(num_byzantine=b).byzantine
        suite.append(byzantine_scenario(universe, byz, model="fabricate"))
        suite.append(byzantine_scenario(universe, byz, model="equivocate"))
    suite.append(
        correlated_failure_scenario(universe, domains, [0], name="rack-failure")
    )
    suite.append(
        partition_scenario(universe, elements[: max(1, (3 * n) // 4)], name="partition")
    )
    third = max(1, n // 3)
    suite.append(
        churn_scenario(
            universe,
            [elements[:third], elements[third : 2 * third], elements[2 * third : 2 * third + third]],
            name="churn",
        )
    )
    return suite
