"""Vectorised scenario engine for replicated-register workloads.

The legacy runner simulated workloads one message at a time: every operation
built request objects, broadcast them over a synchronous network and folded
replies in Python loops.  This engine runs the same *accounting model* as
batched array computations over the bitmask machinery of
:mod:`repro.core.bitset`:

* the access strategy is sampled as **index vectors**
  (:meth:`~repro.core.strategy.Strategy.sample_many`), never as frozensets;
* per-phase server responsiveness is a **boolean matrix**, and per-quorum
  survival is one matrix product against the strategy's incidence matrix;
* quorum success, per-server access tallies and the consistency check are
  computed with ``bincount`` / fancy-indexing / packed-``uint64`` popcounts
  instead of per-message Python loops.

Operation semantics (one operation = one row of the batch)
----------------------------------------------------------
Each operation samples a quorum from the access strategy.  If every member is
responsive in the operation's phase, the operation succeeds there.  Otherwise
the client has observed silent servers; the engine models the failure
detector of :class:`~repro.simulation.client.QuorumClient` in its idealised
limit — the retry samples from the strategy *restricted to fully-responsive
quorums* (renormalised), so an operation fails only when **no** supported
quorum is alive in its phase.  This preserves the resilience property the
protocol layer achieves by steering away from suspected servers (``f = MT - 1``
crashes never cost availability), while staying a pure array computation.
Failed operations charge all ``max_attempts`` probes to the attempted tally.

Consistency is checked with the masking-quorum vouching rule: a successful
read returns the pair vouched for by at least ``b + 1`` members of its
quorum.  Correct members of the read quorum that also belong to the last
successful write's quorum vouch for the latest value; Byzantine members vouch
for a forged pair with an enormous timestamp, either all together
(``"fabricate"``) or in two conflicting camps (``"equivocate"``).  A read is a
*violation* when the forged camp reaches ``b + 1`` vouchers inside the quorum,
and *stale* when the latest value falls short of ``b + 1`` honest vouchers.
Within the masking bound (Lemma 3.6) neither can happen, matching the
protocol-level simulator.

Determinism
-----------
``run_scenario(..., mode="sequential")`` executes the identical semantics one
operation at a time with Python integers and sets — the legacy-style
per-operation path.  Both modes consume the same pre-drawn random schedule,
so for any seed they produce **bit-for-bit identical**
:class:`WorkloadResult` objects; the agreement test in
``tests/test_simulation_engine.py`` locks this in.

``docs/simulation.md`` documents the engine, the scenario suite and how the
measured quantities relate to Definition 3.8 / Definition 3.10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import bitset as bitset_mod
from repro.core.load import exact_load
from repro.core.quorum_system import QuorumSystem
from repro.core.rng import ensure_rng
from repro.core.strategy import Strategy
from repro.exceptions import SimulationError
from repro.simulation.faults import FaultScenario
from repro.simulation.scenarios import WorkloadScenario, fault_free_scenario

__all__ = ["WorkloadResult", "resolve_strategy", "run_scenario"]


@dataclass
class WorkloadResult:
    """Aggregate statistics of one workload run.

    Attributes
    ----------
    operations:
        Total number of operations attempted (reads + writes).
    successful_reads / successful_writes:
        Operations that found a responsive quorum and completed.
    failed_operations:
        Operations that ran out of quorum attempts (unavailability).
    consistency_violations:
        Successful reads that returned something other than the latest
        successfully written value.  Must be zero whenever the number of
        Byzantine servers is at most ``b``.
    stale_reads:
        Reads that returned an older written value (possible only under
        failures mid-write; counted separately from violations).
    empirical_load:
        The busiest server's access frequency: the fraction of *successful*
        operations whose quorum contained that server.  This is the
        empirical counterpart of ``L_w(Q)`` (Definition 3.8) for the access
        strategy the clients actually used.
    per_server_load:
        Access frequency of every server, normalised by successful
        operations only (failed attempts are excluded, so the values are
        genuine access frequencies and never exceed 1).
    per_server_messages:
        Raw message deliveries per server divided by the total operation
        count (includes retries and the two-phase writes, so it exceeds the
        quorum-access frequency).
    per_server_attempted:
        Diagnostic tally: quorum accesses per server counting *every*
        attempt, failed operations included, normalised by total operations.
        This is the quantity the pre-fix runner conflated with the load.
    """

    operations: int
    successful_reads: int
    successful_writes: int
    failed_operations: int
    consistency_violations: int
    stale_reads: int
    empirical_load: float
    per_server_load: dict = field(default_factory=dict)
    per_server_messages: dict = field(default_factory=dict)
    per_server_attempted: dict = field(default_factory=dict)

    @property
    def availability(self) -> float:
        """Fraction of operations that completed successfully."""
        if self.operations == 0:
            return 0.0
        return (self.successful_reads + self.successful_writes) / self.operations

    @property
    def is_consistent(self) -> bool:
        """Whether no read ever returned a fabricated or unwritten value."""
        return self.consistency_violations == 0


def resolve_strategy(system: QuorumSystem, strategy: Strategy | str | None) -> Strategy:
    """Resolve a strategy specification into a :class:`Strategy`.

    ``None`` or ``"uniform"`` gives the uniform strategy over the system's
    quorums (the legacy runner's default); ``"optimal"`` wires in the
    load-optimal strategy of the :func:`~repro.core.load.exact_load` LP, so
    workloads can be driven at the system's actual ``L(Q)``; a
    :class:`Strategy` instance is used as given.

    For an :class:`~repro.core.quorum_system.ImplicitQuorumSystem` the
    default resolves to the system's *sampled support strategy* (the
    empirical estimate of the construction's access strategy — there is no
    full quorum list to be uniform over), and ``"optimal"`` raises the
    exact-LP budget :class:`~repro.exceptions.ComputationError` from
    :func:`~repro.core.load.exact_load` unless the base family is small
    enough to enumerate.
    """
    if strategy is None or strategy == "uniform":
        if getattr(system, "is_implicit", False):
            return system.support_strategy()
        return Strategy.uniform_over_system(system)
    if strategy == "optimal":
        optimal = exact_load(system).strategy
        if optimal is None:
            raise SimulationError(
                f"exact_load produced no strategy for {system.name}"
            )
        return optimal
    if isinstance(strategy, Strategy):
        return strategy
    raise SimulationError(
        f"strategy must be None, 'uniform', 'optimal' or a Strategy, got {strategy!r}"
    )


def _as_workload_scenario(scenario, byzantine_model: str | None) -> WorkloadScenario:
    if scenario is None:
        scenario = fault_free_scenario()
    elif isinstance(scenario, FaultScenario):
        scenario = WorkloadScenario.from_fault_scenario(scenario)
    elif not isinstance(scenario, WorkloadScenario):
        raise SimulationError(
            f"scenario must be a FaultScenario or WorkloadScenario, got {type(scenario).__name__}"
        )
    if byzantine_model is not None and byzantine_model != scenario.byzantine_model:
        scenario = WorkloadScenario(
            name=scenario.name,
            phases=scenario.phases,
            phase_fractions=scenario.phase_fractions,
            byzantine_model=byzantine_model,
        )
    return scenario


@dataclass(frozen=True)
class _Schedule:
    """The pre-drawn randomness both execution modes consume.

    Draw order is fixed (operation-type uniforms, then attempt indices, then
    steering uniforms) so a seed determines the schedule regardless of mode.
    """

    op_draws: np.ndarray  # (T,) uniforms deciding read vs write
    attempt_indices: np.ndarray  # (T, max_attempts) strategy support indices
    steer_draws: np.ndarray  # (T,) uniforms for the responsive-restricted retry


def _sample_schedule(
    strategy: Strategy,
    rng: np.random.Generator,
    num_operations: int,
    max_attempts: int,
) -> _Schedule:
    return _Schedule(
        op_draws=rng.random(num_operations),
        attempt_indices=strategy.sample_many(rng, (num_operations, max_attempts)),
        steer_draws=rng.random(num_operations),
    )


@dataclass(frozen=True)
class _PhaseTables:
    """Per-phase fault state, pre-resolved against the strategy's support."""

    crashed_rows: np.ndarray  # (P, n) bool
    alive: np.ndarray  # (P, m) bool: support quorum fully responsive
    any_alive: np.ndarray  # (P,) bool
    last_alive: np.ndarray  # (P,) int: highest alive support index (-1 if none)
    steer_cumulative: list  # per phase: cumsum of probs restricted to alive
    crashed_masks: tuple  # per phase int bitmask
    forged_camp_masks: tuple  # per phase: tuple of int bitmasks (colluding camps)
    correct_masks: tuple  # per phase int bitmask of non-Byzantine servers
    forged_camp_words: list  # per phase: (num_camps, words) packed uint64
    correct_words: np.ndarray  # (P, words) packed uint64


def _split_equivocating_camps(byzantine_positions: list[int]) -> tuple[int, int]:
    """Split Byzantine bit positions into two colluding camps (alternating)."""
    camp_a = camp_b = 0
    for rank, position in enumerate(sorted(byzantine_positions)):
        if rank % 2 == 0:
            camp_a |= 1 << position
        else:
            camp_b |= 1 << position
    return camp_a, camp_b


def _build_phase_tables(
    system: QuorumSystem,
    strategy: Strategy,
    scenario: WorkloadScenario,
    epoch: int | None = None,
) -> _PhaseTables:
    universe = system.universe
    n = universe.size
    engine = strategy.support_engine(universe, epoch=epoch)
    num_support = engine.num_quorums
    full_mask = (1 << n) - 1

    crashed_rows = np.zeros((scenario.num_phases, n), dtype=bool)
    crashed_masks = []
    forged_camp_masks = []
    correct_masks = []
    for phase_index, phase in enumerate(scenario.phases):
        crashed_positions = list(universe.indices_of(phase.crashed))
        crashed_rows[phase_index, crashed_positions] = True
        crashed_masks.append(bitset_mod.mask_of(phase.crashed, universe))
        byzantine_positions = list(universe.indices_of(phase.byzantine))
        byzantine_mask = bitset_mod.mask_of(phase.byzantine, universe)
        if not byzantine_positions:
            camps: tuple[int, ...] = ()
        elif scenario.byzantine_model == "equivocate":
            camps = tuple(
                camp for camp in _split_equivocating_camps(byzantine_positions) if camp
            )
        else:
            camps = (byzantine_mask,)
        forged_camp_masks.append(camps)
        correct_masks.append(full_mask & ~byzantine_mask)

    alive = engine.quorums_alive(crashed_rows)
    any_alive = alive.any(axis=1)
    last_alive = np.where(
        any_alive, (num_support - 1) - np.argmax(alive[:, ::-1], axis=1), -1
    ).astype(np.int64)
    steer_cumulative = [
        np.cumsum(strategy.probabilities * alive[phase_index])
        for phase_index in range(scenario.num_phases)
    ]
    forged_camp_words = [
        np.stack([bitset_mod.pack_mask(camp, n) for camp in camps])
        if camps
        else np.zeros((0, max(1, -(-n // 64))), dtype=np.uint64)
        for camps in forged_camp_masks
    ]
    correct_words = np.stack(
        [bitset_mod.pack_mask(mask, n) for mask in correct_masks]
    )
    return _PhaseTables(
        crashed_rows=crashed_rows,
        alive=alive,
        any_alive=any_alive,
        last_alive=last_alive,
        steer_cumulative=steer_cumulative,
        crashed_masks=tuple(crashed_masks),
        forged_camp_masks=tuple(forged_camp_masks),
        correct_masks=tuple(correct_masks),
        forged_camp_words=forged_camp_words,
        correct_words=correct_words,
    )


def _steered_index(cumulative: np.ndarray, draw, last_alive: int):
    """Index of the responsive-restricted retry quorum (shared by both modes).

    Inverts the cumulative distribution of the strategy restricted to alive
    quorums; the clip guards the float edge where ``draw * total`` rounds up
    to the total itself.
    """
    total = cumulative[-1]
    index = np.searchsorted(cumulative, draw * total, side="right")
    return np.minimum(index, last_alive)


def run_scenario(
    system: QuorumSystem,
    *,
    b: int,
    num_operations: int = 200,
    scenario: FaultScenario | WorkloadScenario | None = None,
    strategy: Strategy | str | None = None,
    rng: np.random.Generator | None = None,
    write_fraction: float = 0.5,
    max_attempts: int = 10,
    allow_overload: bool = False,
    byzantine_model: str | None = None,
    mode: str = "vectorised",
    epoch: int | None = None,
) -> WorkloadResult:
    """Run a batched read/write workload under a fault scenario.

    Parameters
    ----------
    system:
        The quorum system to deploy over.
    b:
        Masking parameter used by the read protocol's vouching rule.
    num_operations:
        Total operations in the batch.
    scenario:
        A static :class:`FaultScenario` or a phased
        :class:`~repro.simulation.scenarios.WorkloadScenario`
        (fault-free by default).
    strategy:
        Access strategy: ``None``/``"uniform"``, ``"optimal"`` (the
        :func:`~repro.core.load.exact_load` LP strategy) or any
        :class:`~repro.core.strategy.Strategy`.
    rng:
        Randomness source; the whole run is a deterministic function of its
        state.
    write_fraction:
        Probability that an operation is a write (the first operation, and
        every operation before the first success, is forced to be a write so
        reads always have something to observe).
    max_attempts:
        Probe budget charged to operations that find no responsive quorum.
    allow_overload:
        Permit phases with more Byzantine servers than ``b`` (negative
        tests).
    byzantine_model:
        Override the scenario's vouching model (``"fabricate"`` /
        ``"equivocate"``).
    mode:
        ``"vectorised"`` (array execution) or ``"sequential"`` (the
        per-operation reference path; same semantics, same schedule,
        identical result).
    epoch:
        Absolute membership epoch index this run executes in, forwarded to
        the strategy's mask/engine caches so a reconfiguration never reads a
        view cached under a different binding (``None`` outside reconfig
        workloads).
    """
    if num_operations <= 0:
        raise SimulationError(f"num_operations must be positive, got {num_operations}")
    if not 0.0 <= write_fraction <= 1.0:
        raise SimulationError(f"write_fraction must lie in [0, 1], got {write_fraction}")
    if max_attempts < 1:
        raise SimulationError(f"max_attempts must be >= 1, got {max_attempts}")
    if b < 0:
        raise SimulationError(f"masking parameter must be >= 0, got {b}")
    if mode not in ("vectorised", "sequential"):
        raise SimulationError(f"mode must be 'vectorised' or 'sequential', got {mode!r}")
    rng = ensure_rng(rng)

    scenario = _as_workload_scenario(scenario, byzantine_model)
    scenario.validate_against(system.universe)
    if not allow_overload and scenario.max_byzantine > b:
        raise SimulationError(
            f"scenario has {scenario.max_byzantine} Byzantine servers but the "
            f"deployment only masks b={b}; pass allow_overload=True to force it"
        )
    strategy = resolve_strategy(system, strategy)
    tables = _build_phase_tables(system, strategy, scenario, epoch)
    phase_of_op = scenario.phase_of_operations(num_operations)
    schedule = _sample_schedule(strategy, rng, num_operations, max_attempts)

    if mode == "sequential":
        return _run_sequential(
            system,
            strategy,
            scenario,
            tables,
            phase_of_op,
            schedule,
            b,
            write_fraction,
            epoch,
        )
    return _run_vectorised(
        system,
        strategy,
        scenario,
        tables,
        phase_of_op,
        schedule,
        b,
        write_fraction,
        epoch,
    )


def _assemble_result(
    system: QuorumSystem,
    *,
    num_operations: int,
    successful_reads: int,
    successful_writes: int,
    failed: int,
    violations: int,
    stale: int,
    successful_counts: np.ndarray,
    attempted_counts: np.ndarray,
    message_counts: np.ndarray,
) -> WorkloadResult:
    universe = system.universe
    successful = max(1, successful_reads + successful_writes)
    per_server_load = {
        server_id: int(successful_counts[position]) / successful
        for position, server_id in enumerate(universe)
    }
    per_server_attempted = {
        server_id: int(attempted_counts[position]) / num_operations
        for position, server_id in enumerate(universe)
    }
    per_server_messages = {
        server_id: int(message_counts[position]) / num_operations
        for position, server_id in enumerate(universe)
    }
    return WorkloadResult(
        operations=num_operations,
        successful_reads=successful_reads,
        successful_writes=successful_writes,
        failed_operations=failed,
        consistency_violations=violations,
        stale_reads=stale,
        empirical_load=max(per_server_load.values()),
        per_server_load=per_server_load,
        per_server_messages=per_server_messages,
        per_server_attempted=per_server_attempted,
    )


def _run_vectorised(
    system: QuorumSystem,
    strategy: Strategy,
    scenario: WorkloadScenario,
    tables: _PhaseTables,
    phase_of_op: np.ndarray,
    schedule: _Schedule,
    b: int,
    write_fraction: float,
    epoch: int | None = None,
) -> WorkloadResult:
    universe = system.universe
    engine = strategy.support_engine(universe, epoch=epoch)
    incidence = engine.incidence_matrix().astype(np.int64)
    packed = engine.packed()
    num_support = engine.num_quorums
    num_operations = len(phase_of_op)
    max_attempts = schedule.attempt_indices.shape[1]

    first_attempt = schedule.attempt_indices[:, 0]
    first_alive = tables.alive[phase_of_op, first_attempt]
    success = tables.any_alive[phase_of_op]
    needs_steer = success & ~first_alive

    # Responsive-restricted retry, phase by phase (phases are few).
    accessed = first_attempt.copy()
    for phase_index in range(scenario.num_phases):
        rows = np.nonzero(needs_steer & (phase_of_op == phase_index))[0]
        if rows.size:
            accessed[rows] = _steered_index(
                tables.steer_cumulative[phase_index],
                schedule.steer_draws[rows],
                int(tables.last_alive[phase_index]),
            )

    # Operation types: an operation is a write when its uniform falls below
    # the write fraction OR no write has succeeded yet; since success is a
    # pure function of the phase, "no successful write yet" is exactly "at or
    # before the first successful operation".
    op_index = np.arange(num_operations)
    if success.any():
        first_success = int(np.argmax(success))
    else:
        first_success = num_operations
    is_write = (schedule.op_draws < write_fraction) | (op_index <= first_success)

    successful_writes = int(np.count_nonzero(success & is_write))
    successful_reads = int(np.count_nonzero(success & ~is_write))
    failed = int(np.count_nonzero(~success))

    # Per-server tallies: quorum-index histograms pushed through the
    # incidence matrix.  Successful accesses count the quorum actually used;
    # the attempted tally additionally charges the failed first probes and
    # the exhausted attempt budget of failed operations.
    successful_quorum_counts = np.bincount(accessed[success], minlength=num_support)
    successful_counts = successful_quorum_counts @ incidence

    attempted_quorum_counts = np.bincount(first_attempt, minlength=num_support)
    attempted_quorum_counts += np.bincount(
        accessed[needs_steer], minlength=num_support
    )
    if failed and max_attempts > 1:
        attempted_quorum_counts += np.bincount(
            schedule.attempt_indices[~success, 1:].ravel(), minlength=num_support
        )
    attempted_counts = attempted_quorum_counts @ incidence

    # Message deliveries: every probe sends one request per quorum member
    # (the timestamp/read query), and every successful write additionally
    # broadcasts the write to its quorum.
    write_quorum_counts = np.bincount(
        accessed[success & is_write], minlength=num_support
    )
    message_counts = attempted_counts + write_quorum_counts @ incidence

    # Consistency of successful reads, by the vouching rule.
    violations = 0
    stale = 0
    read_rows = np.nonzero(success & ~is_write)[0]
    if read_rows.size:
        last_write_op = np.maximum.accumulate(
            np.where(success & is_write, op_index, -1)
        )
        write_of_read = last_write_op[read_rows]
        read_quorums = accessed[read_rows]
        write_quorums = accessed[write_of_read]
        read_phases = phase_of_op[read_rows]

        forged_vouch = np.zeros(read_rows.size, dtype=np.int64)
        for phase_index in range(scenario.num_phases):
            camp_words = tables.forged_camp_words[phase_index]
            if camp_words.shape[0] == 0:
                continue
            in_phase = np.nonzero(read_phases == phase_index)[0]
            if not in_phase.size:
                continue
            camp_counts = np.bitwise_count(
                packed[read_quorums[in_phase], None, :] & camp_words[None, :, :]
            ).sum(axis=2, dtype=np.int64)
            forged_vouch[in_phase] = camp_counts.max(axis=1)

        corrupted = forged_vouch >= b + 1
        honest_vouch = engine.intersection_counts(
            read_quorums, write_quorums, tables.correct_words[read_phases]
        )
        violations = int(np.count_nonzero(corrupted))
        stale = int(np.count_nonzero(~corrupted & (honest_vouch < b + 1)))

    return _assemble_result(
        system,
        num_operations=num_operations,
        successful_reads=successful_reads,
        successful_writes=successful_writes,
        failed=failed,
        violations=violations,
        stale=stale,
        successful_counts=successful_counts,
        attempted_counts=attempted_counts,
        message_counts=message_counts,
    )


def _run_sequential(
    system: QuorumSystem,
    strategy: Strategy,
    scenario: WorkloadScenario,
    tables: _PhaseTables,
    phase_of_op: np.ndarray,
    schedule: _Schedule,
    b: int,
    write_fraction: float,
    epoch: int | None = None,
) -> WorkloadResult:
    """Per-operation reference path: same semantics, Python-loop execution.

    Consumes the same pre-drawn schedule as the vectorised path and works on
    plain ``int`` bitmasks, so any divergence between the two is a logic bug,
    not noise — the determinism tests assert bit-for-bit equality.
    """
    universe = system.universe
    n = universe.size
    support_masks = strategy.support_masks(universe, epoch=epoch)
    num_support = len(support_masks)
    num_operations = len(phase_of_op)
    max_attempts = schedule.attempt_indices.shape[1]

    # Lazily-computed per-phase facts, from the int masks alone.
    phase_alive_any: dict[int, bool] = {}
    phase_last_alive: dict[int, int] = {}

    def quorum_alive(phase_index: int, support_index: int) -> bool:
        return not support_masks[support_index] & tables.crashed_masks[phase_index]

    def any_alive(phase_index: int) -> bool:
        if phase_index not in phase_alive_any:
            last = -1
            for support_index in range(num_support):
                if quorum_alive(phase_index, support_index):
                    last = support_index
            phase_alive_any[phase_index] = last >= 0
            phase_last_alive[phase_index] = last
        return phase_alive_any[phase_index]

    successful_reads = 0
    successful_writes = 0
    failed = 0
    violations = 0
    stale = 0
    written = False
    last_write_quorum = -1
    successful_quorum_counts = [0] * num_support
    attempted_quorum_counts = [0] * num_support
    write_quorum_counts = [0] * num_support

    for operation in range(num_operations):
        phase_index = int(phase_of_op[operation])
        first = int(schedule.attempt_indices[operation, 0])
        attempted_quorum_counts[first] += 1

        if quorum_alive(phase_index, first):
            succeeded, accessed = True, first
        elif any_alive(phase_index):
            accessed = int(
                _steered_index(
                    tables.steer_cumulative[phase_index],
                    schedule.steer_draws[operation],
                    phase_last_alive[phase_index],
                )
            )
            attempted_quorum_counts[accessed] += 1
            succeeded = True
        else:
            succeeded, accessed = False, -1
            for attempt in range(1, max_attempts):
                attempted_quorum_counts[
                    int(schedule.attempt_indices[operation, attempt])
                ] += 1

        is_write = bool(schedule.op_draws[operation] < write_fraction) or not written
        if not succeeded:
            failed += 1
            continue
        successful_quorum_counts[accessed] += 1
        if is_write:
            successful_writes += 1
            write_quorum_counts[accessed] += 1
            written = True
            last_write_quorum = accessed
            continue
        successful_reads += 1
        read_mask = support_masks[accessed]
        forged_vouch = max(
            (
                (read_mask & camp).bit_count()
                for camp in tables.forged_camp_masks[phase_index]
            ),
            default=0,
        )
        if forged_vouch >= b + 1:
            violations += 1
            continue
        honest_vouch = (
            read_mask
            & support_masks[last_write_quorum]
            & tables.correct_masks[phase_index]
        ).bit_count()
        if honest_vouch < b + 1:
            stale += 1

    def counts_to_servers(quorum_counts: list[int]) -> np.ndarray:
        server_counts = np.zeros(n, dtype=np.int64)
        for support_index, count in enumerate(quorum_counts):
            if count:
                for position in bitset_mod.iter_bit_indices(support_masks[support_index]):
                    server_counts[position] += count
        return server_counts

    successful_counts = counts_to_servers(successful_quorum_counts)
    attempted_counts = counts_to_servers(attempted_quorum_counts)
    message_counts = attempted_counts + counts_to_servers(write_quorum_counts)

    return _assemble_result(
        system,
        num_operations=num_operations,
        successful_reads=successful_reads,
        successful_writes=successful_writes,
        failed=failed,
        violations=violations,
        stale=stale,
        successful_counts=successful_counts,
        attempted_counts=attempted_counts,
        message_counts=message_counts,
    )
