"""Fault models for the replicated-register simulation.

The paper's hybrid fault model distinguishes *Byzantine* servers (up to
``b``, arbitrary behaviour) from *crashed* servers (possibly many more,
simply unresponsive).  A :class:`FaultScenario` fixes which servers are in
which state for the duration of an experiment; :class:`FaultInjector`
produces scenarios either with exact counts (``b`` Byzantine, ``f`` crashed)
or with the independent-crash model of Definition 3.10 (each server crashed
with probability ``p``).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass, field

import numpy as np

from repro.core.rng import ensure_rng
from repro.core.universe import Universe
from repro.exceptions import SimulationError

__all__ = ["FaultScenario", "FaultInjector"]


@dataclass(frozen=True)
class FaultScenario:
    """An assignment of fault states to servers.

    Attributes
    ----------
    byzantine:
        Servers that behave arbitrarily (they respond, but may lie).
    crashed:
        Servers that never respond.  A server cannot be both Byzantine and
        crashed; crashing a Byzantine server would only weaken it.
    slow:
        *Timing* faults: ``(server_id, factor)`` pairs for servers that are
        correct but slow — their service time is stretched by ``factor`` > 1.
        Only the event-driven layer (:mod:`repro.simulation.events`) gives
        slowness meaning; the synchronous and vectorised layers, which have
        no notion of time, ignore it.  A crashed server cannot also be slow.
    """

    byzantine: frozenset = field(default_factory=frozenset)
    crashed: frozenset = field(default_factory=frozenset)
    slow: tuple = ()

    def __post_init__(self):
        overlap = self.byzantine & self.crashed
        if overlap:
            raise SimulationError(
                f"servers {sorted(overlap, key=repr)[:4]} are marked both Byzantine and crashed"
            )
        if isinstance(self.slow, dict):
            object.__setattr__(
                self,
                "slow",
                tuple(sorted(self.slow.items(), key=lambda item: repr(item[0]))),
            )
        for server_id, factor in self.slow:
            if factor < 1.0:
                raise SimulationError(
                    f"slow factor for server {server_id!r} must be >= 1, got {factor}"
                )
            if server_id in self.crashed:
                raise SimulationError(
                    f"server {server_id!r} is marked both crashed and slow"
                )

    @property
    def num_byzantine(self) -> int:
        """The number of Byzantine servers."""
        return len(self.byzantine)

    @property
    def num_crashed(self) -> int:
        """The number of crashed servers."""
        return len(self.crashed)

    def is_correct(self, server_id: Hashable) -> bool:
        """Return ``True`` when the server is neither Byzantine nor crashed."""
        return server_id not in self.byzantine and server_id not in self.crashed

    def is_responsive(self, server_id: Hashable) -> bool:
        """Return ``True`` when the server replies to messages (possibly with lies)."""
        return server_id not in self.crashed

    def slow_factor(self, server_id: Hashable) -> float:
        """Service-time multiplier of a server (1.0 unless marked slow)."""
        for known_id, factor in self.slow:
            if known_id == server_id:
                return factor
        return 1.0

    @staticmethod
    def fault_free() -> "FaultScenario":
        """The scenario with no faults at all."""
        return FaultScenario()


class FaultInjector:
    """Produces fault scenarios over a fixed universe of servers.

    Parameters
    ----------
    universe:
        The servers of the replicated service.
    rng:
        Source of randomness; a fresh default generator when omitted.
    """

    def __init__(self, universe: Universe, rng: np.random.Generator | None = None):
        self.universe = universe
        self.rng = ensure_rng(rng)

    def _sample_servers(self, count: int, excluded: frozenset = frozenset()) -> frozenset:
        available = [element for element in self.universe if element not in excluded]
        if count > len(available):
            raise SimulationError(
                f"cannot pick {count} servers from {len(available)} available ones"
            )
        if count == 0:
            return frozenset()
        indices = self.rng.choice(len(available), size=count, replace=False)
        return frozenset(available[int(index)] for index in indices)

    def exact(self, num_byzantine: int, num_crashed: int = 0) -> FaultScenario:
        """Return a scenario with exactly the given fault counts, chosen uniformly."""
        if num_byzantine < 0 or num_crashed < 0:
            raise SimulationError("fault counts must be non-negative")
        byzantine = self._sample_servers(num_byzantine)
        crashed = self._sample_servers(num_crashed, excluded=byzantine)
        return FaultScenario(byzantine=byzantine, crashed=crashed)

    def independent_crashes(self, p: float, *, byzantine: Iterable[Hashable] = ()) -> FaultScenario:
        """Return a scenario where each non-Byzantine server crashes with probability ``p``.

        This is the probabilistic model behind the crash probability
        ``Fp`` (Definition 3.10); the optional fixed Byzantine set lets
        experiments combine both fault types.
        """
        if not 0.0 <= p <= 1.0:
            raise SimulationError(f"crash probability must lie in [0, 1], got {p}")
        byzantine_set = frozenset(byzantine)
        crashed = frozenset(
            element
            for element in self.universe
            if element not in byzantine_set and self.rng.random() < p
        )
        return FaultScenario(byzantine=byzantine_set, crashed=crashed)

    def targeted(
        self,
        byzantine: Iterable[Hashable],
        crashed: Iterable[Hashable] = (),
        *,
        slow: dict | None = None,
    ) -> FaultScenario:
        """Return a scenario with explicitly chosen fault sets (validated against the universe)."""
        byzantine_set = self.universe.subset(byzantine)
        crashed_set = self.universe.subset(crashed)
        slow_map = dict(slow) if slow else {}
        unknown = frozenset(slow_map) - self.universe.as_frozenset()
        if unknown:
            raise SimulationError(
                f"slow servers outside the universe: {sorted(unknown, key=repr)[:4]}"
            )
        return FaultScenario(byzantine=byzantine_set, crashed=crashed_set, slow=slow_map)

    def slow(self, count: int, factor: float, *, byzantine: Iterable[Hashable] = ()) -> FaultScenario:
        """Return a scenario with ``count`` uniformly chosen slow-but-correct servers."""
        byzantine_set = self.universe.subset(byzantine)
        chosen = self._sample_servers(count, excluded=byzantine_set)
        return FaultScenario(
            byzantine=byzantine_set, slow={server_id: factor for server_id in chosen}
        )
