"""The replicated register service: replicas + network + clients, wired together.

:class:`ReplicatedRegister` is the deployment-level object: given a quorum
system, a masking parameter and a fault scenario it creates one replica per
universe element (Byzantine replicas where the scenario says so), a
synchronous network, and hands out clients.  It is the object the examples
and the protocol-level integration tests interact with.
"""

from __future__ import annotations

from collections.abc import Hashable

import numpy as np

from repro.core.quorum_system import QuorumSystem
from repro.core.rng import ensure_rng
from repro.core.strategy import Strategy
from repro.exceptions import SimulationError
from repro.simulation.client import QuorumClient
from repro.simulation.faults import FaultScenario
from repro.simulation.network import SynchronousNetwork
from repro.simulation.server import ByzantineReplicaServer, ReplicaServer

__all__ = ["ReplicatedRegister"]


class ReplicatedRegister:
    """A shared read/write register replicated over a masking quorum system.

    Parameters
    ----------
    system:
        The quorum system; its universe defines the replica set.
    b:
        The number of Byzantine failures the deployment masks.  The
        constructor refuses scenarios with more Byzantine servers than ``b``
        unless ``allow_overload`` is set (useful for tests that demonstrate
        what goes wrong beyond the masking bound).
    scenario:
        The fault scenario; fault-free by default.
    byzantine_behaviour:
        Behaviour of the Byzantine replicas (see
        :class:`~repro.simulation.server.ByzantineReplicaServer`).
    initial_value:
        Value held by every replica before the first write.
    rng:
        Randomness source shared by Byzantine replicas and clients.
    allow_overload:
        Permit ``|byzantine| > b`` (for negative tests).
    strategy:
        Default access strategy handed to every client (e.g. the
        load-optimal strategy from :func:`~repro.core.load.exact_load`);
        individual clients can still override it.
    """

    def __init__(
        self,
        system: QuorumSystem,
        *,
        b: int,
        scenario: FaultScenario | None = None,
        byzantine_behaviour: str = "fabricate-timestamp",
        initial_value: object = None,
        rng: np.random.Generator | None = None,
        allow_overload: bool = False,
        strategy: Strategy | None = None,
    ):
        scenario = scenario if scenario is not None else FaultScenario.fault_free()
        if b < 0:
            raise SimulationError(f"masking parameter must be >= 0, got {b}")
        if not allow_overload and scenario.num_byzantine > b:
            raise SimulationError(
                f"scenario has {scenario.num_byzantine} Byzantine servers but the "
                f"deployment only masks b={b}; pass allow_overload=True to force it"
            )
        unknown = (scenario.byzantine | scenario.crashed) - system.universe.as_frozenset()
        if unknown:
            raise SimulationError(
                f"fault scenario mentions servers outside the universe: "
                f"{sorted(unknown, key=repr)[:4]}"
            )

        self.system = system
        self.b = b
        self.scenario = scenario
        self.rng = ensure_rng(rng)
        self.strategy = strategy

        servers: dict[Hashable, ReplicaServer] = {}
        for server_id in system.universe:
            if server_id in scenario.byzantine:
                servers[server_id] = ByzantineReplicaServer(
                    server_id,
                    behaviour=byzantine_behaviour,
                    rng=self.rng,
                    initial_value=initial_value,
                )
            else:
                servers[server_id] = ReplicaServer(server_id, initial_value=initial_value)
        self.servers = servers
        self.network = SynchronousNetwork(servers, scenario)
        self._next_client_id = 0
        self._clients: list[QuorumClient] = []

    def client(
        self, *, max_attempts: int = 10, strategy: Strategy | None = None
    ) -> QuorumClient:
        """Create a new client of this register.

        The client samples quorums from ``strategy`` when given, falling back
        to the register's default strategy and finally to the system's own
        ``sample_quorum``.
        """
        client = QuorumClient(
            client_id=self._next_client_id,
            system=self.system,
            network=self.network,
            b=self.b,
            max_attempts=max_attempts,
            rng=self.rng,
            strategy=strategy if strategy is not None else self.strategy,
        )
        self._next_client_id += 1
        self._clients.append(client)
        return client

    # ------------------------------------------------------------------
    # Inspection helpers used by experiments and tests.
    # ------------------------------------------------------------------
    def correct_replica_pairs(self) -> dict[Hashable, object]:
        """Return the ``(value, timestamp)`` pairs held by all correct replicas."""
        return {
            server_id: server.current_pair
            for server_id, server in self.servers.items()
            if self.scenario.is_correct(server_id)
        }

    def empirical_loads(self) -> dict[Hashable, float]:
        """Per-server access frequency over *successful* client operations.

        The empirical counterpart of the induced load ``l_w(u)`` of
        Definition 3.8, under the same accounting as the vectorised engine's
        ``per_server_load``: the numerator counts each server once per
        successful operation whose quorum contained it, and the denominator
        is the number of successful operations — so values are genuine
        access frequencies and never exceed 1.  Probes of failed operations
        are visible separately through ``attempted_loads``.
        """
        successful = max(
            1, sum(client.successful_operations for client in self._clients)
        )
        return {
            server_id: sum(
                client.successful_access_counts[server_id] for client in self._clients
            )
            / successful
            for server_id in self.system.universe
        }

    def attempted_loads(self) -> dict[Hashable, float]:
        """Per-server probe frequency counting every attempt, failures included.

        Normalised by all started operations — the diagnostic mirror of the
        engine's ``per_server_attempted`` (this is the quantity the pre-fix
        accounting conflated with the load; it can legitimately exceed 1
        under heavy faults because one operation may probe many quorums).
        """
        total = max(1, sum(client.operations_started for client in self._clients))
        return {
            server_id: sum(
                client.attempted_access_counts[server_id] for client in self._clients
            )
            / total
            for server_id in self.system.universe
        }

    def max_empirical_load(self) -> float:
        """Return the busiest server's empirical access frequency."""
        return max(self.empirical_loads().values())
