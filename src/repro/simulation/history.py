"""Concurrent-history recording and checking for the replicated register.

The event-driven simulator produces *histories*: per-operation records with
real (simulated) invocation and response times, so operations of different
clients genuinely overlap.  This module checks such histories against the
register semantics the paper's ``2b + 1``-intersection argument guarantees —
a linearizability-style analysis specialised to the [MR98a] masking-quorum
register.

What the protocol guarantees (and the checker asserts), with at most ``b``
Byzantine servers:

* **Unique write timestamps** — every write operation carries a distinct
  ``(counter, client_id)`` timestamp: counters grow monotonically per client
  and the client id breaks cross-client ties.
* **Per-client monotonicity** — a client's successive writes carry strictly
  increasing timestamps.
* **Real-time write order** — if write ``A`` completed before write ``B``
  was invoked, then ``ts(B) > ts(A)``: ``B``'s timestamp query intersects
  ``A``'s write quorum in at least ``b + 1`` honest servers, so ``B`` picks
  a larger timestamp.
* **No fabrication** — a successful read returns the initial pair or a pair
  some write operation actually produced (a pair vouched by ``b + 1``
  members of the read quorum contains at least one honest voucher).  A read
  concurrent with a write may return the old *or* the new value — but never
  a Byzantine invention.
* **No stale reads** — a successful read's timestamp is at least that of the
  latest write that *completed* before the read was invoked (the
  ``2b + 1``-intersection argument again).

Reads are **not** required to be monotonic across clients (or even within
one client): [MR98a] readers do not write back, so a value from an
incomplete write can be seen by one read and missed by the next.  That is
the well-known gap between the masking register's *regular-like* semantics
and full atomicity, and the checker deliberately does not flag it.

Beyond the masking bound (``2b + 1`` colluders answering reads) fabrication
becomes possible; ``check_register_history`` is exactly the oracle that
detects it, and the negative tests assert that it does.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.simulation.client import OperationResult
from repro.simulation.messages import Timestamp, ValueTimestampPair

__all__ = [
    "HistoryCheck",
    "HistoryRecorder",
    "OperationRecord",
    "check_register_history",
]


@dataclass(frozen=True)
class OperationRecord:
    """One completed operation of a concurrent history.

    ``attempted_pair`` is the ``(value, timestamp)`` pair a write tried to
    install — present even when the write failed after its timestamp phase,
    because a *partially* installed pair can legitimately surface in a later
    read and the checker must not call that fabrication.
    """

    client_id: int
    kind: str  # "read" | "write"
    invoked_at: float
    responded_at: float
    success: bool
    value: object = None
    timestamp: Timestamp | None = None
    quorum: frozenset | None = None
    attempts: int = 0
    attempted_pair: ValueTimestampPair | None = None

    @property
    def pair(self) -> ValueTimestampPair | None:
        """The value/timestamp pair this operation wrote or returned."""
        if self.kind == "write":
            return self.attempted_pair
        if self.success:
            return ValueTimestampPair(value=self.value, timestamp=self.timestamp)
        return None


class HistoryRecorder:
    """Collects :class:`OperationRecord` entries as operations complete.

    Handed to :class:`~repro.simulation.client.AsyncQuorumClient` instances;
    all clients of one run share a recorder, so the records interleave in
    completion order with genuine overlapping intervals.
    """

    def __init__(self, initial_pair: ValueTimestampPair | None = None):
        self.initial_pair = (
            initial_pair
            if initial_pair is not None
            else ValueTimestampPair(value=None, timestamp=Timestamp.zero())
        )
        self.records: list[OperationRecord] = []

    def record(
        self,
        *,
        client_id: int,
        kind: str,
        invoked_at: float,
        responded_at: float,
        result: OperationResult,
        attempted_pair: ValueTimestampPair | None = None,
    ) -> None:
        """Append one completed operation."""
        self.records.append(
            OperationRecord(
                client_id=client_id,
                kind=kind,
                invoked_at=invoked_at,
                responded_at=responded_at,
                success=result.success,
                value=result.value,
                timestamp=result.timestamp,
                quorum=result.quorum,
                attempts=result.attempts,
                attempted_pair=attempted_pair,
            )
        )

    def check(self, *, max_violations: int = 20) -> "HistoryCheck":
        """Run :func:`check_register_history` over the collected records."""
        return check_register_history(
            self.records, initial_pair=self.initial_pair, max_violations=max_violations
        )


@dataclass(frozen=True)
class HistoryCheck:
    """Outcome of checking one concurrent history.

    ``violations`` holds human-readable descriptions (capped); the counters
    classify them: fabricated reads (value no write produced), stale reads
    (older than the last completed write), write-order violations (real-time
    order not reflected in timestamps) and duplicate write timestamps.
    """

    operations: int
    concurrent_pairs: int
    fabricated_reads: int = 0
    stale_reads: int = 0
    write_order_violations: int = 0
    duplicate_write_timestamps: int = 0
    violations: tuple = ()

    @property
    def ok(self) -> bool:
        """Whether the history satisfies the masked-register semantics."""
        return (
            self.fabricated_reads == 0
            and self.stale_reads == 0
            and self.write_order_violations == 0
            and self.duplicate_write_timestamps == 0
        )


def _count_concurrent_pairs(records: Sequence[OperationRecord]) -> int:
    """How many operation pairs genuinely overlap in time (concurrency gauge).

    Two operations overlap when each was invoked before the other responded
    (intervals merely touching do not count).  Counted as total pairs minus
    disjoint pairs, so pairs invoked at the *same* instant — every client's
    first operation under the default zero think time — are counted too.
    """
    total = len(records)
    ends = sorted(record.responded_at for record in records)
    disjoint = 0
    instantaneous: dict[float, int] = {}
    for record in records:
        # Pairs where the other operation responded at-or-before this one's
        # invocation are disjoint, counted from their later member.  An
        # instantaneous operation would count itself here, so exclude it.
        predecessors = bisect_right(ends, record.invoked_at)
        if record.responded_at <= record.invoked_at:
            predecessors -= 1
            instantaneous[record.invoked_at] = (
                instantaneous.get(record.invoked_at, 0) + 1
            )
        disjoint += predecessors
    # Two instantaneous operations at the same instant are disjoint in both
    # directions and got counted twice; remove the double count.
    disjoint -= sum(k * (k - 1) // 2 for k in instantaneous.values())
    return total * (total - 1) // 2 - disjoint


def check_register_history(
    records: Iterable[OperationRecord],
    *,
    initial_pair: ValueTimestampPair | None = None,
    max_violations: int = 20,
) -> HistoryCheck:
    """Check a concurrent history against the masking-register semantics.

    See the module docstring for the exact properties.  The check is
    ``O(n log n)`` in the number of operations: real-time precedence uses a
    prefix-maximum over completion-sorted successful writes.
    """
    records = list(records)
    initial = (
        initial_pair
        if initial_pair is not None
        else ValueTimestampPair(value=None, timestamp=Timestamp.zero())
    )
    violations: list[str] = []
    fabricated = stale = order_violations = duplicates = 0

    def note(message: str) -> None:
        if len(violations) < max_violations:
            violations.append(message)

    writes = [record for record in records if record.kind == "write"]
    reads = [record for record in records if record.kind == "read"]

    # --- unique write timestamps (all attempts that produced a pair).
    seen: dict[Timestamp, OperationRecord] = {}
    for record in writes:
        if record.attempted_pair is None:
            continue
        timestamp = record.attempted_pair.timestamp
        if timestamp in seen:
            duplicates += 1
            note(
                f"writes by clients {seen[timestamp].client_id} and "
                f"{record.client_id} share timestamp {timestamp}"
            )
        else:
            seen[timestamp] = record

    # --- per-client strictly increasing write timestamps.
    last_by_client: dict[int, Timestamp] = {}
    for record in sorted(writes, key=lambda item: item.invoked_at):
        if record.attempted_pair is None:
            continue
        timestamp = record.attempted_pair.timestamp
        previous = last_by_client.get(record.client_id)
        if previous is not None and not timestamp > previous:
            order_violations += 1
            note(
                f"client {record.client_id} wrote {timestamp} after {previous}"
            )
        last_by_client[record.client_id] = timestamp

    # --- real-time order and staleness via a prefix max over completions.
    completed = sorted(
        (record for record in writes if record.success),
        key=lambda item: item.responded_at,
    )
    completion_times = [record.responded_at for record in completed]
    prefix_max: list[Timestamp] = []
    best = initial.timestamp
    for record in completed:
        if record.timestamp > best:
            best = record.timestamp
        prefix_max.append(best)

    def latest_completed_before(time: float) -> Timestamp:
        """Largest timestamp among successful writes completed before ``time``."""
        index = bisect_left(completion_times, time)
        if index == 0:
            return initial.timestamp
        return prefix_max[index - 1]

    for record in completed:
        floor = latest_completed_before(record.invoked_at)
        if not record.timestamp > floor:
            order_violations += 1
            note(
                f"write {record.timestamp} by client {record.client_id} does not "
                f"exceed {floor}, installed by a write that completed before it began"
            )

    # --- reads: no fabrication, no staleness.
    legitimate = {initial}
    for record in writes:
        if record.attempted_pair is not None:
            legitimate.add(record.attempted_pair)

    for record in reads:
        if not record.success:
            continue  # aborted/unavailable reads make no claim
        pair = ValueTimestampPair(value=record.value, timestamp=record.timestamp)
        if pair not in legitimate:
            fabricated += 1
            note(
                f"read by client {record.client_id} returned {pair.value!r} @ "
                f"{pair.timestamp}, which no write produced"
            )
            continue
        floor = latest_completed_before(record.invoked_at)
        if record.timestamp < floor:
            stale += 1
            note(
                f"read by client {record.client_id} returned {record.timestamp}, "
                f"older than {floor} which was completely written before the read began"
            )

    return HistoryCheck(
        operations=len(records),
        concurrent_pairs=_count_concurrent_pairs(records),
        fabricated_reads=fabricated,
        stale_reads=stale,
        write_order_violations=order_violations,
        duplicate_write_timestamps=duplicates,
        violations=tuple(violations),
    )
