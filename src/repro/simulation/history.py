"""Concurrent-history recording and checking for the replicated register.

The event-driven simulator produces *histories*: per-operation records with
real (simulated) invocation and response times, so operations of different
clients genuinely overlap.  This module checks such histories against the
register semantics the paper's ``2b + 1``-intersection argument guarantees —
a linearizability-style analysis specialised to the [MR98a] masking-quorum
register.

What the protocol guarantees (and the checker asserts), with at most ``b``
Byzantine servers:

* **Unique write timestamps** — every write operation carries a distinct
  ``(counter, client_id)`` timestamp: counters grow monotonically per client
  and the client id breaks cross-client ties.
* **Per-client monotonicity** — a client's successive writes carry strictly
  increasing timestamps.
* **Real-time write order** — if write ``A`` completed before write ``B``
  was invoked, then ``ts(B) > ts(A)``: ``B``'s timestamp query intersects
  ``A``'s write quorum in at least ``b + 1`` honest servers, so ``B`` picks
  a larger timestamp.
* **No fabrication** — a successful read returns the initial pair or a pair
  some write operation actually produced (a pair vouched by ``b + 1``
  members of the read quorum contains at least one honest voucher).  A read
  concurrent with a write may return the old *or* the new value — but never
  a Byzantine invention.
* **No stale reads** — a successful read's timestamp is at least that of the
  latest write that *completed* before the read was invoked (the
  ``2b + 1``-intersection argument again).

Reads are **not** required to be monotonic across clients (or even within
one client): [MR98a] readers do not write back, so a value from an
incomplete write can be seen by one read and missed by the next.  That is
the well-known gap between the masking register's *regular-like* semantics
and full atomicity, and the checker deliberately does not flag it.

Beyond the masking bound (``2b + 1`` colluders answering reads) fabrication
becomes possible; ``check_register_history`` is exactly the oracle that
detects it, and the negative tests assert that it does.

Epoch boundaries
----------------
With ``epochs=`` the checker extends the same rules across membership
reconfigurations (``docs/membership.md``).  Each :class:`EpochWindow` carries
the epoch's member set and its own masking parameter ``b``; the register
reinitialises at each reconfiguration (no state transfer), so write checks
run *per epoch* with the epoch's own ``b``, while reads get the boundary
rule: a read overlapping a reconfiguration may return a value legitimate in
**some** covering epoch, but a value from an already-evicted epoch is a
``cross_epoch_reads`` violation and a quorum containing servers outside every
covering epoch's membership is a ``foreign_quorum_members`` violation (a
severed server acknowledged the operation).
"""

from __future__ import annotations

import json
from bisect import bisect_left, bisect_right
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import SimulationError
from repro.simulation.client import OperationResult
from repro.simulation.messages import Timestamp, ValueTimestampPair

__all__ = [
    "EpochWindow",
    "HistoryCheck",
    "HistoryRecorder",
    "OperationRecord",
    "check_register_history",
    "dump_history_jsonl",
    "freeze_value",
    "load_history_jsonl",
    "record_from_dict",
    "record_to_dict",
]


def freeze_value(value: object) -> object:
    """Recursively turn JSON containers into hashable equivalents.

    Lists become tuples and dicts become sorted ``(key, value)`` tuples, so a
    value that travelled through JSON (the service wire, a history file)
    compares and hashes equal to the tuple-shaped value a writer produced.
    The checker relies on this: legitimate pairs live in a set.
    """
    if isinstance(value, list):
        return tuple(freeze_value(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((key, freeze_value(item)) for key, item in value.items()))
    return value


@dataclass(frozen=True)
class OperationRecord:
    """One completed operation of a concurrent history.

    ``attempted_pair`` is the ``(value, timestamp)`` pair a write tried to
    install — present even when the write failed after its timestamp phase,
    because a *partially* installed pair can legitimately surface in a later
    read and the checker must not call that fabrication.
    """

    client_id: int
    kind: str  # "read" | "write"
    invoked_at: float
    responded_at: float
    success: bool
    value: object = None
    timestamp: Timestamp | None = None
    quorum: frozenset | None = None
    attempts: int = 0
    attempted_pair: ValueTimestampPair | None = None

    @property
    def pair(self) -> ValueTimestampPair | None:
        """The value/timestamp pair this operation wrote or returned."""
        if self.kind == "write":
            return self.attempted_pair
        if self.success:
            return ValueTimestampPair(value=self.value, timestamp=self.timestamp)
        return None


class HistoryRecorder:
    """Collects :class:`OperationRecord` entries as operations complete.

    Handed to :class:`~repro.simulation.client.AsyncQuorumClient` instances;
    all clients of one run share a recorder, so the records interleave in
    completion order with genuine overlapping intervals.
    """

    def __init__(self, initial_pair: ValueTimestampPair | None = None):
        self.initial_pair = (
            initial_pair
            if initial_pair is not None
            else ValueTimestampPair(value=None, timestamp=Timestamp.zero())
        )
        self.records: list[OperationRecord] = []

    def record(
        self,
        *,
        client_id: int,
        kind: str,
        invoked_at: float,
        responded_at: float,
        result: OperationResult,
        attempted_pair: ValueTimestampPair | None = None,
    ) -> None:
        """Append one completed operation."""
        self.records.append(
            OperationRecord(
                client_id=client_id,
                kind=kind,
                invoked_at=invoked_at,
                responded_at=responded_at,
                success=result.success,
                value=result.value,
                timestamp=result.timestamp,
                quorum=result.quorum,
                attempts=result.attempts,
                attempted_pair=attempted_pair,
            )
        )

    def check(self, *, max_violations: int = 20) -> "HistoryCheck":
        """Run :func:`check_register_history` over the collected records."""
        return check_register_history(
            self.records, initial_pair=self.initial_pair, max_violations=max_violations
        )


@dataclass(frozen=True)
class EpochWindow:
    """One membership epoch projected onto the simulated time axis.

    ``members`` is the epoch's member set and ``b`` its own masking
    parameter (a reconfiguration may change how many faults the epoch's
    quorum system masks).  Windows are half-open ``[start, end)``; the final
    window may use ``float("inf")`` as its end.
    """

    index: int
    start: float
    end: float
    members: frozenset = field(default_factory=frozenset)
    b: int = 0

    def covers(self, invoked_at: float, responded_at: float) -> bool:
        """Whether the operation's interval overlaps this window."""
        return invoked_at < self.end and responded_at >= self.start


@dataclass(frozen=True)
class HistoryCheck:
    """Outcome of checking one concurrent history.

    ``violations`` holds human-readable descriptions (capped); the counters
    classify them: fabricated reads (value no write produced), stale reads
    (older than the last completed write), write-order violations (real-time
    order not reflected in timestamps), duplicate write timestamps, and —
    under ``epochs=`` — reads returning values from evicted epochs and
    quorums containing servers severed from every covering epoch.
    """

    operations: int
    concurrent_pairs: int
    fabricated_reads: int = 0
    stale_reads: int = 0
    write_order_violations: int = 0
    duplicate_write_timestamps: int = 0
    cross_epoch_reads: int = 0
    foreign_quorum_members: int = 0
    violations: tuple = ()

    @property
    def ok(self) -> bool:
        """Whether the history satisfies the masked-register semantics."""
        return (
            self.fabricated_reads == 0
            and self.stale_reads == 0
            and self.write_order_violations == 0
            and self.duplicate_write_timestamps == 0
            and self.cross_epoch_reads == 0
            and self.foreign_quorum_members == 0
        )


def _count_concurrent_pairs(records: Sequence[OperationRecord]) -> int:
    """How many operation pairs genuinely overlap in time (concurrency gauge).

    Two operations overlap when each was invoked before the other responded
    (intervals merely touching do not count).  Counted as total pairs minus
    disjoint pairs, so pairs invoked at the *same* instant — every client's
    first operation under the default zero think time — are counted too.
    """
    total = len(records)
    ends = sorted(record.responded_at for record in records)
    disjoint = 0
    instantaneous: dict[float, int] = {}
    for record in records:
        # Pairs where the other operation responded at-or-before this one's
        # invocation are disjoint, counted from their later member.  An
        # instantaneous operation would count itself here, so exclude it.
        predecessors = bisect_right(ends, record.invoked_at)
        if record.responded_at <= record.invoked_at:
            predecessors -= 1
            instantaneous[record.invoked_at] = (
                instantaneous.get(record.invoked_at, 0) + 1
            )
        disjoint += predecessors
    # Two instantaneous operations at the same instant are disjoint in both
    # directions and got counted twice; remove the double count.
    disjoint -= sum(k * (k - 1) // 2 for k in instantaneous.values())
    return total * (total - 1) // 2 - disjoint


def check_register_history(
    records: Iterable[OperationRecord],
    *,
    initial_pair: ValueTimestampPair | None = None,
    max_violations: int = 20,
    epochs: Sequence[EpochWindow] | None = None,
) -> HistoryCheck:
    """Check a concurrent history against the masking-register semantics.

    See the module docstring for the exact properties.  The check is
    ``O(n log n)`` in the number of operations: real-time precedence uses a
    prefix-maximum over completion-sorted successful writes.

    With ``epochs`` (sorted :class:`EpochWindow` list) the history spans
    membership reconfigurations: write checks run per epoch with the epoch's
    own ``b``, reads apply the covering-epoch boundary rule, and two extra
    counters (``cross_epoch_reads``, ``foreign_quorum_members``) classify
    the reconfiguration-specific violations.
    """
    records = list(records)
    initial = (
        initial_pair
        if initial_pair is not None
        else ValueTimestampPair(value=None, timestamp=Timestamp.zero())
    )
    if epochs is not None:
        return _check_epoch_history(records, initial, max_violations, list(epochs))
    violations: list[str] = []
    fabricated = stale = order_violations = duplicates = 0

    def note(message: str) -> None:
        if len(violations) < max_violations:
            violations.append(message)

    writes = [record for record in records if record.kind == "write"]
    reads = [record for record in records if record.kind == "read"]

    # --- unique write timestamps (all attempts that produced a pair).
    seen: dict[Timestamp, OperationRecord] = {}
    for record in writes:
        if record.attempted_pair is None:
            continue
        timestamp = record.attempted_pair.timestamp
        if timestamp in seen:
            duplicates += 1
            note(
                f"writes by clients {seen[timestamp].client_id} and "
                f"{record.client_id} share timestamp {timestamp}"
            )
        else:
            seen[timestamp] = record

    # --- per-client strictly increasing write timestamps.
    last_by_client: dict[int, Timestamp] = {}
    for record in sorted(writes, key=lambda item: item.invoked_at):
        if record.attempted_pair is None:
            continue
        timestamp = record.attempted_pair.timestamp
        previous = last_by_client.get(record.client_id)
        if previous is not None and not timestamp > previous:
            order_violations += 1
            note(
                f"client {record.client_id} wrote {timestamp} after {previous}"
            )
        last_by_client[record.client_id] = timestamp

    # --- real-time order and staleness via a prefix max over completions.
    completed = sorted(
        (record for record in writes if record.success),
        key=lambda item: item.responded_at,
    )
    completion_times = [record.responded_at for record in completed]
    prefix_max: list[Timestamp] = []
    best = initial.timestamp
    for record in completed:
        if record.timestamp > best:
            best = record.timestamp
        prefix_max.append(best)

    def latest_completed_before(time: float) -> Timestamp:
        """Largest timestamp among successful writes completed before ``time``."""
        index = bisect_left(completion_times, time)
        if index == 0:
            return initial.timestamp
        return prefix_max[index - 1]

    for record in completed:
        floor = latest_completed_before(record.invoked_at)
        if not record.timestamp > floor:
            order_violations += 1
            note(
                f"write {record.timestamp} by client {record.client_id} does not "
                f"exceed {floor}, installed by a write that completed before it began"
            )

    # --- reads: no fabrication, no staleness.
    legitimate = {initial}
    for record in writes:
        if record.attempted_pair is not None:
            legitimate.add(record.attempted_pair)

    for record in reads:
        if not record.success:
            continue  # aborted/unavailable reads make no claim
        pair = ValueTimestampPair(value=record.value, timestamp=record.timestamp)
        if pair not in legitimate:
            fabricated += 1
            note(
                f"read by client {record.client_id} returned {pair.value!r} @ "
                f"{pair.timestamp}, which no write produced"
            )
            continue
        floor = latest_completed_before(record.invoked_at)
        if record.timestamp < floor:
            stale += 1
            note(
                f"read by client {record.client_id} returned {record.timestamp}, "
                f"older than {floor} which was completely written before the read began"
            )

    return HistoryCheck(
        operations=len(records),
        concurrent_pairs=_count_concurrent_pairs(records),
        fabricated_reads=fabricated,
        stale_reads=stale,
        write_order_violations=order_violations,
        duplicate_write_timestamps=duplicates,
        violations=tuple(violations),
    )


def _check_epoch_history(
    records: list[OperationRecord],
    initial: ValueTimestampPair,
    max_violations: int,
    windows: list[EpochWindow],
) -> HistoryCheck:
    """Check a history spanning membership reconfigurations.

    The register reinitialises at each reconfiguration, so the classic
    single-epoch checks run independently over each epoch's writes (each
    epoch restarts from ``initial`` and enforces its own timestamp order),
    while reads are checked centrally with the boundary rule: the returned
    pair must be legitimate in the read's primary epoch (then the epoch-local
    staleness floor applies) or in *some other epoch covering* the read's
    interval; a pair only ever produced in an earlier, non-covering epoch is
    a cross-epoch read, and anything else is fabrication.
    """
    if not windows:
        raise SimulationError("epochs must contain at least one EpochWindow")
    for earlier, later in zip(windows, windows[1:]):
        if later.start < earlier.start:
            raise SimulationError("epoch windows must be sorted by start time")
    starts = [window.start for window in windows]

    def primary_of(record: OperationRecord) -> int:
        return max(bisect_right(starts, record.invoked_at) - 1, 0)

    def covering(record: OperationRecord) -> list[int]:
        positions = [
            position
            for position, window in enumerate(windows)
            if window.covers(record.invoked_at, record.responded_at)
        ]
        primary = primary_of(record)
        if primary not in positions:
            positions.append(primary)
        return positions

    violations: list[str] = []
    fabricated = stale = order_violations = duplicates = 0
    cross_epoch = foreign = 0

    def note(message: str) -> None:
        if len(violations) < max_violations:
            violations.append(message)

    writes_by_epoch: dict[int, list[OperationRecord]] = {}
    for record in records:
        if record.kind == "write":
            writes_by_epoch.setdefault(primary_of(record), []).append(record)

    # Classic per-epoch write checks: each epoch restarts from the initial
    # pair, so unique timestamps / monotonicity / real-time order are all
    # epoch-local properties.
    for position, epoch_writes in sorted(writes_by_epoch.items()):
        sub_check = check_register_history(
            epoch_writes, initial_pair=initial, max_violations=max_violations
        )
        duplicates += sub_check.duplicate_write_timestamps
        order_violations += sub_check.write_order_violations
        for message in sub_check.violations:
            note(f"[epoch {windows[position].index}] {message}")

    # Staleness floors and legitimate pairs, one set per epoch.
    floor_fns = {
        position: _write_floor(epoch_writes, initial.timestamp)
        for position, epoch_writes in writes_by_epoch.items()
    }
    legitimate: dict[int, set] = {}
    for position in range(len(windows)):
        pairs = {initial}
        for record in writes_by_epoch.get(position, ()):
            if record.attempted_pair is not None:
                pairs.add(record.attempted_pair)
        legitimate[position] = pairs

    for record in records:
        if not record.success or record.quorum is None:
            continue
        positions = covering(record)
        with_members = [
            position for position in positions if windows[position].members
        ]
        if with_members and not any(
            record.quorum <= windows[position].members for position in with_members
        ):
            foreign += 1
            epoch_ids = [windows[position].index for position in with_members]
            note(
                f"{record.kind} by client {record.client_id} was acknowledged by "
                f"a quorum containing servers outside every covering epoch "
                f"{epoch_ids} — a severed server answered"
            )

    for record in records:
        if record.kind != "read" or not record.success:
            continue
        pair = ValueTimestampPair(value=record.value, timestamp=record.timestamp)
        primary = primary_of(record)
        positions = covering(record)
        if pair in legitimate[primary]:
            floor_fn = floor_fns.get(primary)
            floor = floor_fn(record.invoked_at) if floor_fn else initial.timestamp
            if record.timestamp < floor:
                stale += 1
                note(
                    f"[epoch {windows[primary].index}] read by client "
                    f"{record.client_id} returned {record.timestamp}, older than "
                    f"{floor} which was completely written before the read began"
                )
        elif any(
            pair in legitimate[position] for position in positions if position != primary
        ):
            pass  # boundary rule: legitimate in a covering epoch
        elif any(
            pair in legitimate[position]
            for position in range(primary)
            if position not in positions
        ):
            cross_epoch += 1
            note(
                f"read by client {record.client_id} returned {pair.value!r} @ "
                f"{pair.timestamp} from an epoch evicted before the read began"
            )
        else:
            fabricated += 1
            note(
                f"[epoch {windows[primary].index}] read by client "
                f"{record.client_id} returned {pair.value!r} @ {pair.timestamp}, "
                f"which no write produced in any covering epoch"
            )

    return HistoryCheck(
        operations=len(records),
        concurrent_pairs=_count_concurrent_pairs(records),
        fabricated_reads=fabricated,
        stale_reads=stale,
        write_order_violations=order_violations,
        duplicate_write_timestamps=duplicates,
        cross_epoch_reads=cross_epoch,
        foreign_quorum_members=foreign,
        violations=tuple(violations),
    )


def _write_floor(writes: Sequence[OperationRecord], initial_timestamp: Timestamp):
    """Build the epoch-local staleness floor over completed writes.

    Returns a closure mapping a time to the largest timestamp among
    successful writes that completed strictly before it (the same
    prefix-maximum the single-epoch path uses).
    """
    completed = sorted(
        (record for record in writes if record.success),
        key=lambda item: item.responded_at,
    )
    completion_times = [record.responded_at for record in completed]
    prefix_max: list[Timestamp] = []
    best = initial_timestamp
    for record in completed:
        if record.timestamp > best:
            best = record.timestamp
        prefix_max.append(best)

    def latest_completed_before(time: float) -> Timestamp:
        index = bisect_left(completion_times, time)
        if index == 0:
            return initial_timestamp
        return prefix_max[index - 1]

    return latest_completed_before


# ----------------------------------------------------------------------
# History serialisation (service logs, golden fixtures).
# ----------------------------------------------------------------------
def _timestamp_to_json(timestamp: Timestamp | None) -> list | None:
    return None if timestamp is None else [timestamp.counter, timestamp.client_id]


def _timestamp_from_json(raw: object) -> Timestamp | None:
    if raw is None:
        return None
    if not isinstance(raw, (list, tuple)) or len(raw) != 2:
        raise SimulationError(f"a serialised timestamp must be [counter, client_id], got {raw!r}")
    return Timestamp(counter=int(raw[0]), client_id=int(raw[1]))


def record_to_dict(record: OperationRecord) -> dict:
    """Serialise one :class:`OperationRecord` to a JSON-stable dict.

    Quorum members and values may be tuples (grid coordinates); they travel
    as JSON arrays and :func:`record_from_dict` freezes them back, so a
    round-tripped history is checker-equivalent to the original.
    """
    attempted = record.attempted_pair
    return {
        "client_id": record.client_id,
        "kind": record.kind,
        "invoked_at": record.invoked_at,
        "responded_at": record.responded_at,
        "success": record.success,
        "value": record.value,
        "timestamp": _timestamp_to_json(record.timestamp),
        "quorum": sorted(record.quorum) if record.quorum is not None else None,
        "attempts": record.attempts,
        "attempted_pair": (
            None
            if attempted is None
            else {
                "value": attempted.value,
                "timestamp": _timestamp_to_json(attempted.timestamp),
            }
        ),
    }


def record_from_dict(payload: dict) -> OperationRecord:
    """Rebuild an :class:`OperationRecord` from :func:`record_to_dict` output."""
    if not isinstance(payload, dict):
        raise SimulationError(f"a serialised record must be a JSON object, got {payload!r}")
    kind = payload.get("kind")
    if kind not in ("read", "write"):
        raise SimulationError(f"serialised record kind must be 'read' or 'write', got {kind!r}")
    raw_quorum = payload.get("quorum")
    quorum = (
        None
        if raw_quorum is None
        else frozenset(freeze_value(member) for member in raw_quorum)
    )
    raw_attempted = payload.get("attempted_pair")
    if raw_attempted is None:
        attempted = None
    else:
        attempted_timestamp = _timestamp_from_json(raw_attempted.get("timestamp"))
        if attempted_timestamp is None:
            raise SimulationError("a serialised attempted_pair needs a timestamp")
        attempted = ValueTimestampPair(
            value=freeze_value(raw_attempted.get("value")), timestamp=attempted_timestamp
        )
    try:
        return OperationRecord(
            client_id=int(payload["client_id"]),
            kind=kind,
            invoked_at=float(payload["invoked_at"]),
            responded_at=float(payload["responded_at"]),
            success=bool(payload["success"]),
            value=freeze_value(payload.get("value")),
            timestamp=_timestamp_from_json(payload.get("timestamp")),
            quorum=quorum,
            attempts=int(payload.get("attempts", 0)),
            attempted_pair=attempted,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SimulationError(f"malformed serialised record: {exc!r}") from None


def dump_history_jsonl(records: Iterable[OperationRecord], path: str | Path) -> int:
    """Write a history as JSON Lines (one record per line); returns the count."""
    count = 0
    with Path(path).open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record_to_dict(record), separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def load_history_jsonl(path: str | Path) -> list[OperationRecord]:
    """Load a JSON Lines history written by :func:`dump_history_jsonl`."""
    records: list[OperationRecord] = []
    try:
        handle = Path(path).open("r", encoding="utf-8")
    except OSError as exc:
        raise SimulationError(f"cannot read history file {path}: {exc}") from None
    with handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SimulationError(
                    f"{path}:{line_number}: not valid JSON: {exc}"
                ) from None
            try:
                records.append(record_from_dict(payload))
            except SimulationError as exc:
                raise SimulationError(f"{path}:{line_number}: {exc}") from None
    return records
