"""Workload runner: end-to-end experiments over the replicated register.

The runner drives alternating writes and reads from a population of clients
against a :class:`~repro.simulation.register.ReplicatedRegister`, checks the
register's safety property (every successful read returns the last
successfully written value — the regular-register semantics the masking
protocol provides under non-concurrent access), and gathers the statistics
the paper's measures talk about: per-server access frequency (empirical
load) and operation availability under crash faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.quorum_system import QuorumSystem
from repro.exceptions import SimulationError
from repro.simulation.faults import FaultScenario
from repro.simulation.register import ReplicatedRegister

__all__ = ["WorkloadResult", "run_workload"]


@dataclass
class WorkloadResult:
    """Aggregate statistics of one workload run.

    Attributes
    ----------
    operations:
        Total number of operations attempted (reads + writes).
    successful_reads / successful_writes:
        Operations that found a responsive quorum and completed.
    failed_operations:
        Operations that ran out of quorum attempts (unavailability).
    consistency_violations:
        Successful reads that returned something other than the latest
        successfully written value.  Must be zero whenever the number of
        Byzantine servers is at most ``b``.
    stale_reads:
        Reads that returned an older written value (possible only under
        failures mid-write; counted separately from violations).
    empirical_load:
        The busiest server's access frequency: the fraction of successful
        operations whose quorum contained that server.  This is the
        empirical counterpart of ``L_w(Q)`` (Definition 3.8) for the access
        strategy the clients actually used.
    per_server_load:
        Access frequency of every server (same normalisation).
    per_server_messages:
        Raw message deliveries per server (includes retries and the
        two-phase writes, so it exceeds the quorum-access frequency).
    """

    operations: int
    successful_reads: int
    successful_writes: int
    failed_operations: int
    consistency_violations: int
    stale_reads: int
    empirical_load: float
    per_server_load: dict = field(default_factory=dict)
    per_server_messages: dict = field(default_factory=dict)

    @property
    def availability(self) -> float:
        """Fraction of operations that completed successfully."""
        if self.operations == 0:
            return 0.0
        return (self.successful_reads + self.successful_writes) / self.operations

    @property
    def is_consistent(self) -> bool:
        """Whether no read ever returned a fabricated or unwritten value."""
        return self.consistency_violations == 0


def run_workload(
    system: QuorumSystem,
    *,
    b: int,
    num_operations: int = 200,
    num_clients: int = 4,
    scenario: FaultScenario | None = None,
    byzantine_behaviour: str = "fabricate-timestamp",
    rng: np.random.Generator | None = None,
    write_fraction: float = 0.5,
    allow_overload: bool = False,
) -> WorkloadResult:
    """Run a read/write workload and collect consistency and load statistics.

    Parameters
    ----------
    system:
        The quorum system to deploy over.
    b:
        Masking parameter used by the read protocol.
    num_operations:
        Total operations across all clients.
    num_clients:
        Number of clients issuing operations round-robin.
    scenario:
        Fault scenario (fault-free by default).
    byzantine_behaviour:
        Lie told by Byzantine replicas.
    write_fraction:
        Probability that an operation is a write.
    allow_overload:
        Forwarded to :class:`ReplicatedRegister` (negative tests only).
    """
    if num_operations <= 0:
        raise SimulationError(f"num_operations must be positive, got {num_operations}")
    if not 0.0 <= write_fraction <= 1.0:
        raise SimulationError(f"write_fraction must lie in [0, 1], got {write_fraction}")
    rng = rng if rng is not None else np.random.default_rng()

    register = ReplicatedRegister(
        system,
        b=b,
        scenario=scenario,
        byzantine_behaviour=byzantine_behaviour,
        rng=rng,
        allow_overload=allow_overload,
    )
    clients = [register.client() for _ in range(max(1, num_clients))]

    written_values: list[object] = []
    successful_reads = 0
    successful_writes = 0
    failed = 0
    violations = 0
    stale = 0
    write_counter = 0
    universe = system.universe
    # Per-server access tally, indexed by universe position so the final
    # per-server report can be assembled in one pass over the universe order.
    quorum_access_counts = np.zeros(system.n, dtype=np.int64)

    def record_access(quorum: frozenset | None) -> None:
        if quorum is None:
            return
        quorum_access_counts[list(universe.indices_of(quorum))] += 1

    for operation_index in range(num_operations):
        client = clients[operation_index % len(clients)]
        do_write = rng.random() < write_fraction or not written_values
        if do_write:
            value = ("payload", write_counter)
            write_counter += 1
            result = client.write(value)
            record_access(result.quorum)
            if result.success:
                successful_writes += 1
                written_values.append(value)
            else:
                failed += 1
        else:
            result = client.read()
            record_access(result.quorum)
            if not result.success:
                failed += 1
                continue
            successful_reads += 1
            if result.value == written_values[-1]:
                continue
            if result.value in written_values or (
                result.value is None and not written_values
            ):
                stale += 1
            else:
                violations += 1

    successful = max(1, successful_reads + successful_writes)
    per_server_load = {
        server_id: int(quorum_access_counts[position]) / successful
        for position, server_id in enumerate(universe)
    }
    return WorkloadResult(
        operations=num_operations,
        successful_reads=successful_reads,
        successful_writes=successful_writes,
        failed_operations=failed,
        consistency_violations=violations,
        stale_reads=stale,
        empirical_load=max(per_server_load.values()),
        per_server_load=per_server_load,
        per_server_messages=register.empirical_loads(num_operations),
    )
