"""Workload runner: end-to-end experiments over the replicated register.

This module is the stable entry point for workload experiments; since the
vectorised scenario engine landed, :func:`run_workload` is a thin
compatibility wrapper over :func:`repro.simulation.engine.run_scenario`.  The
engine executes batches of operations as array computations over the bitmask
incidence machinery (see :mod:`repro.simulation.engine` for the execution
semantics and ``docs/simulation.md`` for the measurement model); the
message-level protocol objects (:class:`~repro.simulation.client.QuorumClient`,
:class:`~repro.simulation.register.ReplicatedRegister`) remain available for
protocol-step tests and examples.

Accounting note (the Definition 3.8 fix): ``empirical_load`` and
``per_server_load`` count quorum accesses of *successful* operations only and
normalise by the successful-operation count, so they are genuine access
frequencies — the empirical counterpart of the induced load ``l_w(u)``.
Probes made by failed operations are reported separately in
``per_server_attempted`` (the quantity the pre-fix runner conflated with the
load, which could exceed 1 under heavy faults).
"""

from __future__ import annotations

import numpy as np

from repro.core.quorum_system import QuorumSystem
from repro.core.strategy import Strategy
from repro.exceptions import SimulationError
from repro.simulation.engine import WorkloadResult, run_scenario
from repro.simulation.faults import FaultScenario
from repro.simulation.scenarios import BYZANTINE_MODELS, WorkloadScenario
from repro.simulation.server import BYZANTINE_BEHAVIOURS

__all__ = ["WorkloadResult", "run_workload"]


def _byzantine_model_for(behaviour: str) -> str:
    """Map a replica-level Byzantine behaviour onto the engine's vouch model.

    All the message-level lies of
    :class:`~repro.simulation.server.ByzantineReplicaServer` put the whole
    Byzantine set behind a single forged candidate, so they map to the
    ``"fabricate"`` camp model; ``"equivocate"`` (a scenario-engine model with
    two conflicting camps) is also accepted directly.
    """
    if behaviour in BYZANTINE_MODELS:
        return behaviour
    if behaviour not in BYZANTINE_BEHAVIOURS:
        raise SimulationError(
            f"unknown Byzantine behaviour {behaviour!r}; choose one of "
            f"{sorted(BYZANTINE_BEHAVIOURS | BYZANTINE_MODELS)}"
        )
    return "fabricate"


def run_workload(
    system: QuorumSystem,
    *,
    b: int,
    num_operations: int = 200,
    num_clients: int = 4,
    scenario: FaultScenario | WorkloadScenario | None = None,
    byzantine_behaviour: str = "fabricate-timestamp",
    rng: np.random.Generator | None = None,
    write_fraction: float = 0.5,
    allow_overload: bool = False,
    strategy: Strategy | str | None = None,
    max_attempts: int = 10,
    engine: str = "vectorised",
) -> WorkloadResult:
    """Run a read/write workload and collect consistency and load statistics.

    Parameters
    ----------
    system:
        The quorum system to deploy over.
    b:
        Masking parameter used by the read protocol.
    num_operations:
        Total operations across all clients.
    num_clients:
        Accepted and ignored for API compatibility (the legacy runner's
        ``max(1, num_clients)`` tolerance included); the engine's accounting
        is client-count independent.
    scenario:
        Fault scenario — static or phased (fault-free by default).
    byzantine_behaviour:
        Lie told by Byzantine replicas; mapped onto the engine's vouching
        model (see :func:`_byzantine_model_for`).  When a phased
        :class:`~repro.simulation.scenarios.WorkloadScenario` is passed, its
        own ``byzantine_model`` wins and this argument is ignored.
    write_fraction:
        Probability that an operation is a write.
    allow_overload:
        Permit more Byzantine servers than ``b`` (negative tests only).
    strategy:
        Access strategy: ``None``/``"uniform"`` for the legacy uniform
        behaviour, ``"optimal"`` for the load-optimal LP strategy of
        :func:`~repro.core.load.exact_load`, or an explicit
        :class:`~repro.core.strategy.Strategy`.
    max_attempts:
        Probe budget charged to unavailable operations.
    engine:
        ``"vectorised"`` (default) or ``"sequential"`` — the per-operation
        reference path with identical semantics and, for a given rng state,
        bit-for-bit identical results.
    """
    del num_clients  # legacy parameter; the engine's accounting is client-agnostic
    byzantine_model: str | None = None
    if not isinstance(scenario, WorkloadScenario):
        byzantine_model = _byzantine_model_for(byzantine_behaviour)
    return run_scenario(
        system,
        b=b,
        num_operations=num_operations,
        scenario=scenario,
        strategy=strategy,
        rng=rng,
        write_fraction=write_fraction,
        max_attempts=max_attempts,
        allow_overload=allow_overload,
        byzantine_model=byzantine_model,
        mode=engine,
    )
