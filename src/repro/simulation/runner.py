"""Workload runner: end-to-end experiments over the replicated register.

This module is the stable entry point for workload experiments; since the
vectorised scenario engine landed, :func:`run_workload` is a thin
compatibility wrapper over :func:`repro.simulation.engine.run_scenario`.  The
engine executes batches of operations as array computations over the bitmask
incidence machinery (see :mod:`repro.simulation.engine` for the execution
semantics and ``docs/simulation.md`` for the measurement model); the
message-level protocol objects (:class:`~repro.simulation.client.QuorumClient`,
:class:`~repro.simulation.register.ReplicatedRegister`) remain available for
protocol-step tests and examples.

Accounting note (the Definition 3.8 fix): ``empirical_load`` and
``per_server_load`` count quorum accesses of *successful* operations only and
normalise by the successful-operation count, so they are genuine access
frequencies — the empirical counterpart of the induced load ``l_w(u)``.
Probes made by failed operations are reported separately in
``per_server_attempted`` (the quantity the pre-fix runner conflated with the
load, which could exceed 1 under heavy faults).
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field

import numpy as np

from repro.core.floats import is_zero
from repro.core.quorum_system import QuorumSystem
from repro.core.rng import ensure_rng
from repro.core.strategy import Strategy
from repro.exceptions import SimulationError
from repro.simulation.client import AsyncQuorumClient, RetryPolicy
from repro.simulation.engine import WorkloadResult, resolve_strategy, run_scenario
from repro.simulation.events import (
    EventNetwork,
    EventScheduler,
    FaultTimeline,
    LatencyModel,
    LinkFaults,
)
from repro.simulation.faults import FaultScenario
from repro.simulation.history import HistoryCheck, HistoryRecorder
from repro.simulation.messages import Timestamp, ValueTimestampPair
from repro.simulation.scenarios import (
    BYZANTINE_MODELS,
    TimingScenario,
    WorkloadScenario,
)
from repro.simulation.server import (
    BYZANTINE_BEHAVIOURS,
    ByzantineReplicaServer,
    ReplicaServer,
)

__all__ = [
    "EventWorkloadResult",
    "WorkloadResult",
    "build_replicas",
    "run_event_workload",
    "run_workload",
]


def build_replicas(
    system: QuorumSystem,
    byzantine: frozenset,
    *,
    byzantine_behaviour: str = "fabricate-timestamp",
    initial_value: object = None,
    rng: np.random.Generator | None = None,
) -> dict[Hashable, ReplicaServer]:
    """One replica per universe element, Byzantine where ``byzantine`` says so.

    Shared by :class:`~repro.simulation.register.ReplicatedRegister` setups
    and the event-driven drivers; Byzantine replicas get independent
    generators spawned from ``rng`` so replica randomness never perturbs the
    clients' draw streams (the zero-latency agreement relies on that).
    """
    rng = ensure_rng(rng)
    seeds = iter(rng.integers(2**63, size=max(1, len(byzantine))))
    servers: dict[Hashable, ReplicaServer] = {}
    for server_id in system.universe:
        if server_id in byzantine:
            servers[server_id] = ByzantineReplicaServer(
                server_id,
                behaviour=byzantine_behaviour,
                rng=np.random.default_rng(int(next(seeds))),
                initial_value=initial_value,
            )
        else:
            servers[server_id] = ReplicaServer(server_id, initial_value=initial_value)
    return servers


@dataclass
class EventWorkloadResult(WorkloadResult):
    """A :class:`WorkloadResult` extended with timing and history facts.

    The inherited accounting keeps its engine semantics (``per_server_load``
    over successful operations, ``per_server_attempted`` over every probe,
    ``per_server_messages`` as raw sends per operation), while the event
    layer adds what only a clock can measure:

    Attributes
    ----------
    duration:
        Simulated time from the first invocation to the last completion.
    events_processed:
        Scheduler events fired over the run.
    timeouts:
        Probes that ran into their request timeout.
    latency_mean / latency_p50 / latency_p90 / latency_p99:
        Operation latency statistics over successful operations (simulated
        time units; ``0.0`` when nothing succeeded).
    check:
        The concurrent-history consistency verdict
        (:class:`~repro.simulation.history.HistoryCheck`);
        ``consistency_violations`` and ``stale_reads`` of the base class are
        its fabricated/stale counters.
    history:
        The raw operation records (populated when ``keep_history=True``).
    """

    duration: float = 0.0
    events_processed: int = 0
    timeouts: int = 0
    latency_mean: float = 0.0
    latency_p50: float = 0.0
    latency_p90: float = 0.0
    latency_p99: float = 0.0
    check: HistoryCheck | None = None
    history: tuple = field(default_factory=tuple)


def _resolve_timing(scenario, latency, link_faults, byzantine_behaviour):
    """Normalise the scenario argument into (timeline, latency, faults, behaviour).

    Explicit keyword arguments win over what a :class:`TimingScenario`
    bundles; ``None`` means "use the scenario's choice, else the default".
    """
    if scenario is None:
        scenario = FaultScenario.fault_free()
    if isinstance(scenario, TimingScenario):
        return (
            scenario.timeline(),
            latency if latency is not None else scenario.latency,
            link_faults if link_faults is not None else scenario.link_faults,
            byzantine_behaviour
            if byzantine_behaviour is not None
            else scenario.byzantine_behaviour,
        )
    if isinstance(scenario, FaultScenario):
        timeline = FaultTimeline.static(scenario)
    elif isinstance(scenario, FaultTimeline):
        timeline = scenario
    else:
        raise SimulationError(
            "scenario must be a FaultScenario, FaultTimeline or TimingScenario, "
            f"got {type(scenario).__name__}"
        )
    return (
        timeline,
        latency if latency is not None else LatencyModel.zero(),
        link_faults if link_faults is not None else LinkFaults.none(),
        byzantine_behaviour,
    )


def run_event_workload(
    system: QuorumSystem,
    *,
    b: int,
    num_clients: int = 8,
    operations_per_client: int = 25,
    scenario: FaultScenario | FaultTimeline | TimingScenario | None = None,
    byzantine_behaviour: str | None = None,
    latency: LatencyModel | None = None,
    link_faults: LinkFaults | None = None,
    write_fraction: float = 0.5,
    max_attempts: int = 10,
    request_timeout: float | None = None,
    retry_unvouched_reads: bool = False,
    think_time: float = 0.0,
    strategy: Strategy | str | None = None,
    initial_value: object = None,
    rng: np.random.Generator | None = None,
    allow_overload: bool = False,
    keep_history: bool = False,
) -> EventWorkloadResult:
    """Run a *concurrent* workload over the event-driven protocol stack.

    ``num_clients`` resumable clients each perform ``operations_per_client``
    operations back to back (plus an optional exponential ``think_time``
    between them), interleaving through the shared
    :class:`~repro.simulation.events.EventScheduler`; latency, message loss,
    duplication, slow servers and mid-run crash/recover transitions all come
    from the scenario/knobs.  The completed history is checked with
    :func:`~repro.simulation.history.check_register_history`.

    Each client draws quorums from its own generator spawned off ``rng``, so
    runs are deterministic functions of the seed.  An
    :class:`~repro.core.quorum_system.ImplicitQuorumSystem` deployment works
    unchanged at ``n = 10^3..10^4``: with the default strategy the clients
    sample fresh quorums straight from the base construction
    (``sample_quorum`` / ``sample_quorum_avoiding``), so no quorum family is
    ever enumerated (see ``docs/analysis.md``).  ``request_timeout``
    defaults to a generous multiple of the latency scale (or 1.0 when the
    latency model is zero).  ``retry_unvouched_reads`` lets reads whose vote
    was split below ``b + 1`` by an interleaved write retry at a fresh
    quorum instead of aborting — the concurrency-liveness knob of
    :class:`~repro.simulation.client.RetryPolicy`.

    Returns an :class:`EventWorkloadResult`; the base-class fields follow the
    engine's accounting so event runs drop into the same comparison tooling.
    """
    if num_clients < 1:
        raise SimulationError(f"num_clients must be >= 1, got {num_clients}")
    if operations_per_client < 1:
        raise SimulationError(
            f"operations_per_client must be >= 1, got {operations_per_client}"
        )
    if not 0.0 <= write_fraction <= 1.0:
        raise SimulationError(f"write_fraction must lie in [0, 1], got {write_fraction}")
    if think_time < 0.0:
        raise SimulationError(f"think_time must be non-negative, got {think_time}")
    rng = ensure_rng(rng)

    timeline, latency, link_faults, byzantine_behaviour = _resolve_timing(
        scenario, latency, link_faults, byzantine_behaviour
    )
    if byzantine_behaviour is None:
        byzantine_behaviour = "fabricate-timestamp"
    if byzantine_behaviour not in BYZANTINE_BEHAVIOURS:
        raise SimulationError(
            f"unknown Byzantine behaviour {byzantine_behaviour!r}; "
            f"choose one of {sorted(BYZANTINE_BEHAVIOURS)}"
        )
    if not allow_overload and timeline.max_byzantine > b:
        raise SimulationError(
            f"scenario has {timeline.max_byzantine} Byzantine servers but the "
            f"deployment only masks b={b}; pass allow_overload=True to force it"
        )
    timeline.validate_against(system.universe)
    if request_timeout is None:
        scale = latency.base + latency.jitter + 2.0 * latency.tail_mean
        slowest = max(
            [1.0]
            + [factor for state in timeline.scenarios for _, factor in state.slow]
        )
        request_timeout = 1.0 if is_zero(scale) else 8.0 * scale * slowest

    resolved_strategy = (
        resolve_strategy(system, strategy) if strategy is not None else None
    )
    scheduler = EventScheduler()
    servers = build_replicas(
        system,
        timeline.byzantine,
        byzantine_behaviour=byzantine_behaviour,
        initial_value=initial_value,
        rng=rng,
    )
    network = EventNetwork(
        servers,
        timeline,
        scheduler=scheduler,
        latency=latency,
        faults=link_faults,
        rng=np.random.default_rng(rng.integers(2**63)),
    )
    recorder = HistoryRecorder(
        initial_pair=ValueTimestampPair(value=initial_value, timestamp=Timestamp.zero())
    )
    policy = RetryPolicy(
        max_attempts=max_attempts,
        request_timeout=request_timeout,
        retry_unvouched_reads=retry_unvouched_reads,
    )

    clients = [
        AsyncQuorumClient(
            client_id,
            system,
            network,
            b=b,
            policy=policy,
            rng=np.random.default_rng(rng.integers(2**63)),
            strategy=resolved_strategy,
            history=recorder,
        )
        for client_id in range(num_clients)
    ]
    pacing_rng = np.random.default_rng(rng.integers(2**63))

    # Each client is a little generator process: finish an operation,
    # optionally think, start the next.  Writers-first seeding is unnecessary
    # (reads of the initial value are legitimate); interleaving comes from
    # latency jitter and staggered starts.
    def start_client(client: AsyncQuorumClient, remaining: int) -> None:
        if remaining <= 0:
            return
        def next_operation(_result) -> None:
            delay = (
                pacing_rng.exponential(think_time) if think_time > 0.0 else 0.0
            )
            scheduler.schedule(delay, lambda: start_client(client, remaining - 1))

        if client.rng.random() < write_fraction:
            client.write((client.client_id, remaining), next_operation)
        else:
            client.read(next_operation)

    for client in clients:
        offset = pacing_rng.exponential(think_time) if think_time > 0.0 else 0.0
        scheduler.schedule(offset, lambda c=client: start_client(c, operations_per_client))
    scheduler.run()

    records = recorder.records
    check = recorder.check()
    num_operations = len(records)
    successful = [record for record in records if record.success]
    latencies = np.array(
        [record.responded_at - record.invoked_at for record in successful]
    )
    universe = system.universe
    total_success = max(1, len(successful))
    per_server_load = {
        server_id: sum(client.successful_access_counts[server_id] for client in clients)
        / total_success
        for server_id in universe
    }
    per_server_attempted = {
        server_id: sum(client.attempted_access_counts[server_id] for client in clients)
        / max(1, num_operations)
        for server_id in universe
    }
    per_server_messages = {
        server_id: network.attempted_counts[server_id] / max(1, num_operations)
        for server_id in universe
    }
    return EventWorkloadResult(
        operations=num_operations,
        successful_reads=sum(1 for r in successful if r.kind == "read"),
        successful_writes=sum(1 for r in successful if r.kind == "write"),
        failed_operations=num_operations - len(successful),
        consistency_violations=check.fabricated_reads,
        stale_reads=check.stale_reads,
        empirical_load=max(per_server_load.values()),
        per_server_load=per_server_load,
        per_server_messages=per_server_messages,
        per_server_attempted=per_server_attempted,
        duration=(
            max(r.responded_at for r in records)
            - min(r.invoked_at for r in records)
            if records
            else 0.0
        ),
        events_processed=scheduler.events_processed,
        timeouts=sum(client.timeouts for client in clients),
        latency_mean=float(latencies.mean()) if latencies.size else 0.0,
        latency_p50=float(np.percentile(latencies, 50)) if latencies.size else 0.0,
        latency_p90=float(np.percentile(latencies, 90)) if latencies.size else 0.0,
        latency_p99=float(np.percentile(latencies, 99)) if latencies.size else 0.0,
        check=check,
        history=tuple(records) if keep_history else (),
    )


def _byzantine_model_for(behaviour: str) -> str:
    """Map a replica-level Byzantine behaviour onto the engine's vouch model.

    All the message-level lies of
    :class:`~repro.simulation.server.ByzantineReplicaServer` put the whole
    Byzantine set behind a single forged candidate, so they map to the
    ``"fabricate"`` camp model; ``"equivocate"`` (a scenario-engine model with
    two conflicting camps) is also accepted directly.
    """
    if behaviour in BYZANTINE_MODELS:
        return behaviour
    if behaviour not in BYZANTINE_BEHAVIOURS:
        raise SimulationError(
            f"unknown Byzantine behaviour {behaviour!r}; choose one of "
            f"{sorted(BYZANTINE_BEHAVIOURS | BYZANTINE_MODELS)}"
        )
    return "fabricate"


def run_workload(
    system: QuorumSystem,
    *,
    b: int,
    num_operations: int = 200,
    num_clients: int = 4,
    scenario: FaultScenario | WorkloadScenario | None = None,
    byzantine_behaviour: str = "fabricate-timestamp",
    rng: np.random.Generator | None = None,
    write_fraction: float = 0.5,
    allow_overload: bool = False,
    strategy: Strategy | str | None = None,
    max_attempts: int = 10,
    engine: str = "vectorised",
) -> WorkloadResult:
    """Run a read/write workload and collect consistency and load statistics.

    Parameters
    ----------
    system:
        The quorum system to deploy over.
    b:
        Masking parameter used by the read protocol.
    num_operations:
        Total operations across all clients.
    num_clients:
        Accepted and ignored for API compatibility (the legacy runner's
        ``max(1, num_clients)`` tolerance included); the engine's accounting
        is client-count independent.
    scenario:
        Fault scenario — static or phased (fault-free by default).
    byzantine_behaviour:
        Lie told by Byzantine replicas; mapped onto the engine's vouching
        model (see :func:`_byzantine_model_for`).  When a phased
        :class:`~repro.simulation.scenarios.WorkloadScenario` is passed, its
        own ``byzantine_model`` wins and this argument is ignored.
    write_fraction:
        Probability that an operation is a write.
    allow_overload:
        Permit more Byzantine servers than ``b`` (negative tests only).
    strategy:
        Access strategy: ``None``/``"uniform"`` for the legacy uniform
        behaviour, ``"optimal"`` for the load-optimal LP strategy of
        :func:`~repro.core.load.exact_load`, or an explicit
        :class:`~repro.core.strategy.Strategy`.
    max_attempts:
        Probe budget charged to unavailable operations.
    engine:
        ``"vectorised"`` (default) or ``"sequential"`` — the per-operation
        reference path with identical semantics and, for a given rng state,
        bit-for-bit identical results.
    """
    del num_clients  # legacy parameter; the engine's accounting is client-agnostic
    byzantine_model: str | None = None
    if not isinstance(scenario, WorkloadScenario):
        byzantine_model = _byzantine_model_for(byzantine_behaviour)
    return run_scenario(
        system,
        b=b,
        num_operations=num_operations,
        scenario=scenario,
        strategy=strategy,
        rng=rng,
        write_fraction=write_fraction,
        max_attempts=max_attempts,
        allow_overload=allow_overload,
        byzantine_model=byzantine_model,
        mode=engine,
    )
