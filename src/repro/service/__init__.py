"""Networked masking-quorum register service.

The live-deployment layer over the protocol core: asyncio TCP replicas
(:mod:`repro.service.replica`) speaking a length-prefixed JSON frame
protocol (:mod:`repro.service.wire`) whose READ_TS / READ / WRITE phases
mirror the simulator's message schema, an async client library
(:mod:`repro.service.client`) that reuses the simulator's quorum selection
and retry machinery and records checker-compatible histories, and a
supervisor + load generator (:mod:`repro.service.harness`) behind
``python -m repro serve`` / ``python -m repro loadgen``.

See ``docs/service.md`` for the wire protocol, deployment and
fault-injection knobs, and the simulator-vs-service fidelity table.
"""

from repro.service.client import ServiceQuorumClient, call_endpoint
from repro.service.harness import (
    ClusterSpec,
    ReplicaHandle,
    ServiceCluster,
    ServiceRunResult,
    discover_initial_pair,
    load_cluster_file,
    run_load,
    run_supervisor,
)
from repro.service.replica import ReplicaConfig, ReplicaService, run_replica
from repro.service.wire import MAX_FRAME_BYTES, decode_frame, encode_frame

__all__ = [
    "MAX_FRAME_BYTES",
    "ClusterSpec",
    "ReplicaConfig",
    "ReplicaHandle",
    "ReplicaService",
    "ServiceCluster",
    "ServiceQuorumClient",
    "ServiceRunResult",
    "call_endpoint",
    "decode_frame",
    "discover_initial_pair",
    "encode_frame",
    "load_cluster_file",
    "run_load",
    "run_replica",
    "run_supervisor",
]
