"""Asyncio TCP replica server for the masking-quorum register.

One :class:`ReplicaService` wraps one simulator replica state machine
(:class:`~repro.simulation.server.ReplicaServer`, or its Byzantine variant
when the process is playing an adversary) behind a TCP listener speaking the
length-prefixed JSON frame protocol of :mod:`repro.service.wire`.  The
protocol handlers are *exactly* the simulator's — a live replica and a
simulated replica run the same state transitions — so every guarantee the
simulator's tests establish carries over to the wire.

Beyond the three protocol phases the replica answers two introspection
frames (``STATUS`` — identity and health; ``METRICS`` — op counts, the
per-server empirical load counter and service-latency percentiles) and two
fault-injection control frames (``STALL`` freezes protocol replies until
``RESUME``, modelling the *slow/stalled* replica of
:class:`~repro.simulation.faults.FaultScenario` without killing the
process).

Each replica is configured from a :class:`~repro.api.registry.SystemSpec`
plus its *index* in the universe order, mirroring how real quorum
deployments ship one config to N processes.  ``port=0`` binds an ephemeral
port; the chosen address is published through an optional *ready file* so a
supervisor can discover it race-free.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import Counter, deque
from dataclasses import dataclass
from pathlib import Path
from typing import Hashable

from repro.api.registry import SystemSpec, build
from repro.core.rng import ensure_rng
from repro.exceptions import ServiceError, StorageError, WireProtocolError
from repro.service import wire
from repro.simulation.messages import Timestamp
from repro.simulation.server import (
    BYZANTINE_BEHAVIOURS,
    ByzantineReplicaServer,
    ReplicaServer,
)
from repro.storage import DurableStore, FsyncPolicy

__all__ = ["ReplicaConfig", "ReplicaService", "run_replica"]

#: Sliding window of per-request service latencies kept for METRICS.
_LATENCY_WINDOW = 4096


@dataclass(frozen=True)
class ReplicaConfig:
    """Everything one replica process needs to serve its share of the system.

    ``index`` addresses the replica inside ``spec``'s universe order; the
    universe element at that index becomes the replica's protocol identity.
    ``byzantine_behaviour`` (one of
    :data:`~repro.simulation.server.BYZANTINE_BEHAVIOURS`) turns the replica
    into an adversary for fault-injection runs.  ``ready_file`` is written
    once the listener is bound, carrying the actual host/port (ephemeral
    ports included) as JSON.

    ``data_dir`` makes the replica *durable*: accepted writes are
    journalled to a :class:`~repro.storage.DurableStore` in that directory
    before they are acked, and a restarted process recovers its register
    from it.  ``fsync`` (``always`` / ``interval:N`` / ``never``) and
    ``snapshot_every`` (journalled writes between log compactions) tune the
    store; both are ignored without ``data_dir``.
    """

    spec: SystemSpec
    index: int
    host: str = "127.0.0.1"
    port: int = 0
    byzantine_behaviour: str | None = None
    initial_value: object = None
    seed: int | None = None
    ready_file: str | None = None
    data_dir: str | None = None
    fsync: str = "always"
    snapshot_every: int = 1024

    def __post_init__(self) -> None:
        if self.byzantine_behaviour is not None and (
            self.byzantine_behaviour not in BYZANTINE_BEHAVIOURS
        ):
            raise ServiceError(
                f"unknown Byzantine behaviour {self.byzantine_behaviour!r}; "
                f"choose one of {sorted(BYZANTINE_BEHAVIOURS)}"
            )
        if self.data_dir is not None:
            FsyncPolicy.parse(self.fsync)  # reject a bad policy at config time


def _percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile over a non-empty sorted sample list."""
    rank = min(len(samples) - 1, max(0, int(fraction * len(samples))))
    return samples[rank]


class ReplicaService:
    """One live replica: simulator state machine + asyncio TCP front end."""

    def __init__(self, config: ReplicaConfig):
        self.config = config
        system = build(config.spec)
        if not 0 <= config.index < len(system.universe):
            raise ServiceError(
                f"replica index {config.index} outside the universe of "
                f"{len(system.universe)} servers declared by {config.spec.construction!r}"
            )
        self.server_id: Hashable = system.universe.element_at(config.index)
        if config.byzantine_behaviour is not None:
            self.replica: ReplicaServer = ByzantineReplicaServer(
                self.server_id,
                config.byzantine_behaviour,
                rng=ensure_rng(config.seed),
                initial_value=config.initial_value,
            )
        else:
            self.replica = ReplicaServer(self.server_id, initial_value=config.initial_value)
        # Durable state: open (= recover) the store before serving anything,
        # so a restarted replica answers with its pre-crash register.
        self._store: DurableStore | None = None
        if config.data_dir is not None:
            self._store = DurableStore(
                config.data_dir,
                fsync=config.fsync,
                snapshot_every=config.snapshot_every,
                initial_value=config.initial_value,
            )
            if self._store.recovery.pair.timestamp > Timestamp.zero():
                self.replica.restore(self._store.recovery.pair)
        self._server: asyncio.base_events.Server | None = None
        self._started_at = time.monotonic()
        self._op_counts: Counter = Counter()
        self._protocol_errors = 0
        self._latencies: deque = deque(maxlen=_LATENCY_WINDOW)
        # Set => serving; cleared by a STALL frame, restored by RESUME.
        self._running = asyncio.Event()
        self._running.set()

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; only valid after :meth:`start`."""
        if self._server is None:
            raise ServiceError("replica has not been started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> None:
        """Bind the listener and publish the ready file (if configured)."""
        if self._server is not None:
            raise ServiceError("replica already started")
        try:
            self._server = await asyncio.start_server(
                self._serve_connection, host=self.config.host, port=self.config.port
            )
        except OSError as exc:
            raise ServiceError(
                f"replica {self.config.index} cannot bind "
                f"{self.config.host}:{self.config.port}: {exc}"
            ) from exc
        if self.config.ready_file:
            host, port = self.address
            payload = {
                "index": self.config.index,
                "host": host,
                "port": port,
                "byzantine": self.config.byzantine_behaviour,
            }
            ready = Path(self.config.ready_file)
            tmp = ready.with_suffix(ready.suffix + ".tmp")
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            tmp.replace(ready)  # atomic: the supervisor never reads a torn file

    async def serve_forever(self) -> None:
        """Run until cancelled (the subprocess entry point's main loop)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._store is not None:
            self._store.close()

    # ------------------------------------------------------------------
    # Introspection frames.
    # ------------------------------------------------------------------
    def _storage_payload(self) -> dict:
        return self._store.status() if self._store is not None else {"durable": False}

    def status_payload(self) -> dict:
        pair = self.replica.current_pair
        return {
            "type": "STATUS_REPLY",
            "index": self.config.index,
            "server": list(self.server_id)
            if isinstance(self.server_id, tuple)
            else self.server_id,
            "construction": self.config.spec.construction,
            "byzantine": self.config.byzantine_behaviour,
            "stalled": not self._running.is_set(),
            "uptime_seconds": time.monotonic() - self._started_at,
            # The current register pair, protocol encodings: the substrate
            # of b+1-vouched state discovery (harness.discover_initial_pair).
            "value": pair.value,
            "ts": wire.encode_timestamp(pair.timestamp),
            "storage": self._storage_payload(),
            "ok": True,
        }

    def metrics_payload(self) -> dict:
        samples = sorted(self._latencies)
        return {
            "type": "METRICS_REPLY",
            "index": self.config.index,
            "operations": dict(self._op_counts),
            "access_count": self.replica.access_count,
            "protocol_errors": self._protocol_errors,
            "latency_seconds": {
                "count": len(samples),
                "p50": _percentile(samples, 0.50) if samples else None,
                "p90": _percentile(samples, 0.90) if samples else None,
                "p99": _percentile(samples, 0.99) if samples else None,
                "max": samples[-1] if samples else None,
            },
            "storage": self._storage_payload(),
        }

    # ------------------------------------------------------------------
    # Connection handling.
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    payload = await wire.read_frame(reader)
                except WireProtocolError as exc:
                    # Malformed input never crashes or hangs the replica: it
                    # answers with ERROR and drops the connection.
                    self._protocol_errors += 1
                    await self._send_error(writer, str(exc))
                    return
                if payload is None:
                    return  # clean EOF
                try:
                    reply = await self._handle_frame(payload)
                except (WireProtocolError, StorageError) as exc:
                    # A journalling failure must not ack the write: answer
                    # ERROR and drop the connection — the client sees
                    # silence, exactly like a crashed server.
                    self._protocol_errors += 1
                    await self._send_error(writer, str(exc))
                    return
                await wire.write_frame(writer, reply)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError, asyncio.CancelledError):
                # The task is ending either way; a cancel racing listener
                # shutdown must not surface as an unhandled-exception log.
                pass

    async def _handle_frame(self, payload: dict) -> dict:
        kind = payload.get("type")
        if kind == "STATUS":
            return self.status_payload()
        if kind == "METRICS":
            return self.metrics_payload()
        if kind == "STALL":
            self._running.clear()
            return {"type": "OK", "stalled": True}
        if kind == "RESUME":
            self._running.set()
            return {"type": "OK", "stalled": False}
        # Protocol phases go through the simulator state machine.  A stalled
        # replica holds the reply (clients see a timeout, exactly like the
        # FaultScenario "slow" servers) but keeps answering control frames.
        request = wire.frame_to_request(payload)
        await self._running.wait()
        started = time.monotonic()
        if kind == "READ_TS":
            reply = self.replica.handle_timestamp(request)  # type: ignore[arg-type]
        elif kind == "READ":
            reply = self.replica.handle_read(request)  # type: ignore[arg-type]
        else:
            reply = self.replica.handle_write(request)  # type: ignore[arg-type]
            # Durability contract: the accepted pair hits the journal
            # *before* the ack frame goes out.
            if self._store is not None and getattr(reply, "accepted", False):
                self._store.journal(request.pair)  # type: ignore[attr-defined]
        self._op_counts[kind] += 1
        self._latencies.append(time.monotonic() - started)
        return wire.reply_to_frame(reply, server_index=self.config.index)

    @staticmethod
    async def _send_error(writer: asyncio.StreamWriter, message: str) -> None:
        try:
            await wire.write_frame(writer, {"type": "ERROR", "message": message})
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def run_replica(config: ReplicaConfig) -> None:
    """Start one replica and serve until cancelled (``python -m repro serve``)."""
    await ReplicaService(config).serve_forever()
