"""Length-prefixed JSON frame protocol for the networked register service.

Every message on a replica connection is one *frame*: a 4-byte big-endian
unsigned length ``N`` followed by ``N`` bytes of UTF-8 JSON encoding a single
object with a ``"type"`` field.  The frame types mirror the simulator's
message schema (:mod:`repro.simulation.messages`) phase for phase:

========================  =====================================  ==========
frame type                simulator message                       direction
========================  =====================================  ==========
``READ_TS``               :class:`TimestampRequest`               request
``READ_TS_REPLY``         :class:`TimestampReply`                 reply
``READ``                  :class:`ReadRequest`                    request
``READ_REPLY``            :class:`ReadReply`                      reply
``WRITE``                 :class:`WriteRequest`                   request
``WRITE_ACK``             :class:`WriteAck`                       reply
``STATUS`` / ``METRICS``  — (service health / load introspection)  request
``STALL`` / ``RESUME``    — (fault-injection control)              request
``ERROR``                 — (protocol error report)                reply
========================  =====================================  ==========

Timestamps travel as ``[counter, client_id]`` pairs
(:func:`encode_timestamp` / :func:`decode_timestamp`) and replicas are
addressed by their *index* in the universe order (universe elements may be
tuples, which JSON cannot key); values may be any JSON value and are
canonicalised with :func:`canonical_value` on both the write and the read
path so recorded histories compare pairs by value, not by Python identity.

``STATUS_REPLY`` additionally carries the replica's current register pair
(``value`` + ``ts``, same encodings as the protocol frames — the substrate
of server-side state discovery after a full-cluster restart) and, like
``METRICS_REPLY``, a ``storage`` section reporting durable-state health
(WAL length, snapshot age, fsync policy — see :mod:`repro.storage`;
``{"durable": false}`` when the replica runs without a data directory).

The codec is deliberately strict: oversized, truncated, non-JSON and
unknown-type frames all raise :class:`~repro.exceptions.WireProtocolError`
(never a hang, never an unhandled crash) — the replica answers with an
``ERROR`` frame and closes the connection.  ``tests/test_service_wire.py``
fuzzes exactly this contract.
"""

from __future__ import annotations

import asyncio
import json
import struct

from repro.exceptions import WireProtocolError
from repro.simulation.history import freeze_value
from repro.simulation.messages import (
    ReadReply,
    ReadRequest,
    Timestamp,
    TimestampReply,
    TimestampRequest,
    ValueTimestampPair,
    WriteAck,
    WriteRequest,
)

__all__ = [
    "MAX_FRAME_BYTES",
    "canonical_value",
    "decode_frame",
    "decode_timestamp",
    "encode_frame",
    "encode_timestamp",
    "frame_to_reply",
    "frame_to_request",
    "read_frame",
    "reply_to_frame",
    "request_to_frame",
    "write_frame",
]

#: Hard ceiling on one frame's JSON body; a length prefix above this is
#: rejected before any allocation happens (malicious or corrupt peers).
MAX_FRAME_BYTES = 1 << 20

_LENGTH = struct.Struct("!I")

#: Frame types that carry a protocol request a replica must answer.
REQUEST_TYPES = frozenset({"READ_TS", "READ", "WRITE", "STATUS", "METRICS", "STALL", "RESUME"})

#: Frame types a client may receive back.
REPLY_TYPES = frozenset(
    {"READ_TS_REPLY", "READ_REPLY", "WRITE_ACK", "STATUS_REPLY", "METRICS_REPLY", "OK", "ERROR"}
)


def canonical_value(value: object) -> object:
    """Round-trip a value through JSON and freeze it into hashable form.

    Writers and readers both canonicalise, so a written ``("a", 1)`` tuple
    and the ``["a", 1]`` list JSON hands back compare equal in the history
    checker's legitimate-pair set.  Non-JSON-serialisable values are a
    :class:`~repro.exceptions.WireProtocolError` at the sender.
    """
    try:
        return freeze_value(json.loads(json.dumps(value)))
    except (TypeError, ValueError) as exc:
        raise WireProtocolError(f"value {value!r} is not JSON-serialisable: {exc}") from None


# ----------------------------------------------------------------------
# Frame encoding / decoding.
# ----------------------------------------------------------------------
def encode_frame(payload: dict) -> bytes:
    """Encode one frame: 4-byte big-endian length + UTF-8 JSON body."""
    if not isinstance(payload, dict) or "type" not in payload:
        raise WireProtocolError(
            f"a frame payload must be a dict with a 'type' field, got {payload!r}"
        )
    try:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise WireProtocolError(f"frame payload is not JSON-serialisable: {exc}") from None
    if len(body) > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"frame body of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(body)) + body


def decode_frame(data: bytes) -> tuple[dict, bytes]:
    """Decode one frame from ``data``; return ``(payload, remainder)``.

    Raises :class:`~repro.exceptions.WireProtocolError` when the prefix
    announces an oversized or zero-length body, when the announced body is
    truncated, or when the body is not a JSON object with a ``"type"``.
    """
    if len(data) < _LENGTH.size:
        raise WireProtocolError(
            f"truncated frame: {len(data)} bytes is shorter than the 4-byte length prefix"
        )
    (length,) = _LENGTH.unpack_from(data)
    if length == 0:
        raise WireProtocolError("zero-length frame body")
    if length > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    end = _LENGTH.size + length
    if len(data) < end:
        raise WireProtocolError(
            f"truncated frame: header announces {length} bytes, {len(data) - _LENGTH.size} present"
        )
    body = data[_LENGTH.size : end]
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireProtocolError(f"frame body is not valid UTF-8 JSON: {exc}") from None
    if not isinstance(payload, dict) or not isinstance(payload.get("type"), str):
        raise WireProtocolError(
            "frame body must be a JSON object with a string 'type' field"
        )
    return payload, data[end:]


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame from an asyncio stream; ``None`` on clean EOF.

    A connection closed mid-frame raises
    :class:`~repro.exceptions.WireProtocolError` (truncated frame), as does
    an oversized length prefix — callers must not keep the connection.
    """
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise WireProtocolError(
            f"connection closed inside a frame header ({len(exc.partial)}/4 bytes)"
        ) from None
    (length,) = _LENGTH.unpack(header)
    if length == 0 or length > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"frame length {length} outside (0, {MAX_FRAME_BYTES}]"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise WireProtocolError(
            f"connection closed inside a frame body ({len(exc.partial)}/{length} bytes)"
        ) from None
    payload, remainder = decode_frame(header + body)
    assert not remainder  # readexactly consumed exactly one frame
    return payload


async def write_frame(writer: asyncio.StreamWriter, payload: dict) -> None:
    """Encode and send one frame, draining the transport."""
    writer.write(encode_frame(payload))
    await writer.drain()


# ----------------------------------------------------------------------
# Timestamp / pair encoding.
# ----------------------------------------------------------------------
def encode_timestamp(timestamp: Timestamp) -> list:
    """Encode a timestamp as the wire's ``[counter, client_id]`` pair.

    Public because introspection consumers (``STATUS`` register fields,
    :func:`repro.service.harness.discover_initial_pair`) speak the same
    encoding as the protocol frames.
    """
    return [int(timestamp.counter), int(timestamp.client_id)]


def decode_timestamp(raw: object) -> Timestamp:
    """Decode a ``[counter, client_id]`` pair; strict about shape."""
    if (
        not isinstance(raw, (list, tuple))
        or len(raw) != 2
        or not all(isinstance(part, int) and not isinstance(part, bool) for part in raw)
    ):
        raise WireProtocolError(
            f"a timestamp must be a [counter, client_id] integer pair, got {raw!r}"
        )
    return Timestamp(counter=raw[0], client_id=raw[1])


def _require_int(payload: dict, key: str) -> int:
    value = payload.get(key)
    if not isinstance(value, int) or isinstance(value, bool):
        raise WireProtocolError(
            f"{payload.get('type', '?')} frame needs an integer {key!r}, got {value!r}"
        )
    return value


# ----------------------------------------------------------------------
# Request translation (client -> replica).
# ----------------------------------------------------------------------
def request_to_frame(request: object) -> dict:
    """Translate a simulator request message into its wire frame."""
    if isinstance(request, TimestampRequest):
        return {"type": "READ_TS", "client": request.client_id}
    if isinstance(request, ReadRequest):
        return {"type": "READ", "client": request.client_id}
    if isinstance(request, WriteRequest):
        return {
            "type": "WRITE",
            "client": request.client_id,
            "value": request.pair.value,
            "ts": encode_timestamp(request.pair.timestamp),
        }
    raise WireProtocolError(f"cannot frame request of type {type(request).__name__}")


def frame_to_request(payload: dict) -> object:
    """Translate a request frame into the simulator message it mirrors.

    ``STATUS``/``METRICS``/``STALL``/``RESUME`` frames are service-level and
    have no simulator twin; they are handled by the replica directly and
    rejected here.
    """
    kind = payload.get("type")
    if kind == "READ_TS":
        return TimestampRequest(client_id=_require_int(payload, "client"))
    if kind == "READ":
        return ReadRequest(client_id=_require_int(payload, "client"))
    if kind == "WRITE":
        if "ts" not in payload:
            raise WireProtocolError("WRITE frame needs a 'ts' field")
        pair = ValueTimestampPair(
            value=canonical_value(payload.get("value")),
            timestamp=decode_timestamp(payload["ts"]),
        )
        return WriteRequest(client_id=_require_int(payload, "client"), pair=pair)
    raise WireProtocolError(f"unknown or non-protocol request frame type {kind!r}")


# ----------------------------------------------------------------------
# Reply translation (replica -> client).
# ----------------------------------------------------------------------
def reply_to_frame(reply: object, *, server_index: int) -> dict:
    """Translate a simulator reply message into its wire frame.

    Replies carry the replica's universe *index* (not the raw server id,
    which may be a tuple); clients map indices back onto universe elements.
    """
    if isinstance(reply, TimestampReply):
        return {
            "type": "READ_TS_REPLY",
            "server": server_index,
            "ts": encode_timestamp(reply.timestamp),
        }
    if isinstance(reply, ReadReply):
        return {
            "type": "READ_REPLY",
            "server": server_index,
            "value": reply.pair.value,
            "ts": encode_timestamp(reply.pair.timestamp),
        }
    if isinstance(reply, WriteAck):
        return {"type": "WRITE_ACK", "server": server_index, "accepted": bool(reply.accepted)}
    raise WireProtocolError(f"cannot frame reply of type {type(reply).__name__}")


def frame_to_reply(payload: dict, *, server_id: object) -> object:
    """Translate a reply frame back into the simulator message it mirrors.

    ``server_id`` is the universe element the answering replica index maps
    to; it is substituted so client-side vouch counting and history records
    speak universe elements exactly like the simulator stack.
    """
    kind = payload.get("type")
    if kind == "READ_TS_REPLY":
        if "ts" not in payload:
            raise WireProtocolError("READ_TS_REPLY frame needs a 'ts' field")
        return TimestampReply(server_id=server_id, timestamp=decode_timestamp(payload["ts"]))
    if kind == "READ_REPLY":
        if "ts" not in payload:
            raise WireProtocolError("READ_REPLY frame needs a 'ts' field")
        pair = ValueTimestampPair(
            value=canonical_value(payload.get("value")),
            timestamp=decode_timestamp(payload["ts"]),
        )
        return ReadReply(server_id=server_id, pair=pair)
    if kind == "WRITE_ACK":
        accepted = payload.get("accepted")
        if not isinstance(accepted, bool):
            raise WireProtocolError(
                f"WRITE_ACK frame needs a boolean 'accepted', got {accepted!r}"
            )
        return WriteAck(server_id=server_id, accepted=accepted)
    if kind == "ERROR":
        raise WireProtocolError(
            f"replica reported a protocol error: {payload.get('message', '?')}"
        )
    raise WireProtocolError(f"unknown reply frame type {kind!r}")
