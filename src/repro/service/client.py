"""Async client library for the networked masking-quorum register.

:class:`ServiceQuorumClient` is the live-socket sibling of the simulator's
:class:`~repro.simulation.client.AsyncQuorumClient`: it inherits the same
:class:`~repro.simulation.client._QuorumSelectionBase` (quorum sampling,
strategy steering, suspicion bookkeeping, per-server access accounting and
the unique-timestamp rule), runs the identical two-phase write / vouched
read protocol, and records every completed operation into a
:class:`~repro.simulation.history.HistoryRecorder` — so a live run yields a
history the PR-3 checker and the conformance suite consume unchanged.

The transport differences are confined to this module: replicas are
``(host, port)`` endpoints keyed by universe element, each probe broadcasts
frames over per-server TCP connections (opened lazily, reused across
operations) and silence is a real ``asyncio`` timeout taken from the same
:class:`~repro.simulation.client.RetryPolicy` the simulator uses.
"""

from __future__ import annotations

import asyncio
import time
from collections import Counter
from typing import Hashable, Mapping

import numpy as np

from repro.core.quorum_system import QuorumSystem
from repro.core.strategy import Strategy
from repro.exceptions import ServiceError, WireProtocolError
from repro.service import wire
from repro.simulation.client import (
    OperationResult,
    RetryPolicy,
    _QuorumSelectionBase,
)
from repro.simulation.history import HistoryRecorder
from repro.simulation.messages import (
    ReadRequest,
    TimestampRequest,
    ValueTimestampPair,
    WriteRequest,
)

__all__ = ["ServiceQuorumClient", "call_endpoint"]


async def call_endpoint(
    host: str, port: int, payload: dict, *, timeout: float = 5.0
) -> dict:
    """One-shot request/reply exchange with a replica endpoint.

    Used for STATUS / METRICS / STALL / RESUME control frames; protocol
    operations go through :class:`ServiceQuorumClient`, which pools
    connections.  Raises :class:`~repro.exceptions.ServiceError` on
    connection failure or timeout and
    :class:`~repro.exceptions.WireProtocolError` on a malformed reply.
    """
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
    except (OSError, asyncio.TimeoutError) as exc:
        raise ServiceError(f"cannot reach replica at {host}:{port}: {exc}") from None
    try:
        await asyncio.wait_for(wire.write_frame(writer, payload), timeout)
        reply = await asyncio.wait_for(wire.read_frame(reader), timeout)
    except asyncio.TimeoutError:
        raise ServiceError(
            f"replica at {host}:{port} did not answer a "
            f"{payload.get('type')} frame within {timeout}s"
        ) from None
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
    if reply is None:
        raise WireProtocolError(f"replica at {host}:{port} closed without replying")
    return reply


class ServiceQuorumClient(_QuorumSelectionBase):
    """An asyncio client of live replica processes.

    Parameters
    ----------
    client_id / system / b / rng / strategy:
        As for the simulator clients; ``b`` sets the read vouch threshold.
    endpoints:
        ``{universe element: (host, port)}`` for every replica this client
        may address.  Must cover the whole universe — a quorum can land on
        any member.
    policy:
        The PR-3 :class:`~repro.simulation.client.RetryPolicy`;
        ``request_timeout`` is interpreted in real seconds here.
    history:
        Shared :class:`~repro.simulation.history.HistoryRecorder`; operation
        intervals use a monotonic wall clock, so records from all clients of
        one process interleave on a common time axis.
    """

    def __init__(
        self,
        client_id: int,
        system: QuorumSystem,
        endpoints: Mapping[Hashable, tuple[str, int]],
        *,
        b: int,
        policy: RetryPolicy | None = None,
        rng: np.random.Generator | None = None,
        strategy: Strategy | None = None,
        history: HistoryRecorder | None = None,
    ):
        super().__init__(client_id, system, b=b, rng=rng, strategy=strategy)
        missing = [
            element for element in system.universe if element not in endpoints
        ]
        if missing:
            raise ServiceError(
                f"endpoints missing for {len(missing)} universe members, "
                f"e.g. {missing[0]!r}"
            )
        self.endpoints = dict(endpoints)
        self.policy = policy if policy is not None else RetryPolicy()
        self.history = history
        #: Probes that ran into their request timeout (diagnostic).
        self.timeouts = 0
        self._connections: dict[Hashable, tuple[asyncio.StreamReader, asyncio.StreamWriter]] = {}

    # ------------------------------------------------------------------
    # Transport.
    # ------------------------------------------------------------------
    async def _exchange(self, server_id: Hashable, request: object) -> object | None:
        """Send one request frame to one replica; ``None`` models silence.

        Any transport failure (refused connection, reset, timeout, protocol
        violation) is silence from the protocol's point of view — exactly
        how the simulator's network returns ``None`` for crashed servers.
        The connection is dropped on failure so the next probe reconnects.
        """
        host, port = self.endpoints[server_id]
        try:
            connection = self._connections.get(server_id)
            if connection is None:
                connection = await asyncio.wait_for(
                    asyncio.open_connection(host, port), self.policy.request_timeout
                )
                self._connections[server_id] = connection
            reader, writer = connection
            await asyncio.wait_for(
                wire.write_frame(writer, wire.request_to_frame(request)),
                self.policy.request_timeout,
            )
            payload = await asyncio.wait_for(
                wire.read_frame(reader), self.policy.request_timeout
            )
            if payload is None:
                raise ConnectionResetError("replica closed the connection")
            return wire.frame_to_reply(payload, server_id=server_id)
        except (OSError, asyncio.TimeoutError, WireProtocolError):
            await self._drop_connection(server_id)
            return None

    async def _drop_connection(self, server_id: Hashable) -> None:
        connection = self._connections.pop(server_id, None)
        if connection is not None:
            _reader, writer = connection
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def close(self) -> None:
        """Close every pooled connection."""
        for server_id in list(self._connections):
            await self._drop_connection(server_id)

    # ------------------------------------------------------------------
    # Quorum probing.
    # ------------------------------------------------------------------
    async def _collect_from_quorum(
        self, quorum: frozenset, request: object
    ) -> dict | None:
        """Broadcast to a quorum; full reply set or ``None`` (some silence).

        Mirrors the synchronous client: silent members join ``suspected``,
        answering members are exonerated.
        """
        members = sorted(quorum)
        replies = await asyncio.gather(
            *(self._exchange(server_id, request) for server_id in members)
        )
        collected: dict = {}
        silent = set()
        for server_id, reply in zip(members, replies):
            if reply is None:
                silent.add(server_id)
            else:
                self.suspected.discard(server_id)
                collected[server_id] = reply
        if silent:
            self.timeouts += 1
            self.suspected |= silent
            return None
        return collected

    async def _probe(self, request_factory) -> tuple[frozenset | None, dict | None, int]:
        """Try up to ``max_attempts`` quorums; return the first responsive one."""
        for attempt in range(1, self.policy.max_attempts + 1):
            quorum = self._choose_quorum()
            self.attempted_access_counts.update(quorum)
            replies = await self._collect_from_quorum(quorum, request_factory())
            if replies is not None:
                return quorum, replies, attempt
        return None, None, self.policy.max_attempts

    # ------------------------------------------------------------------
    # Protocol operations.
    # ------------------------------------------------------------------
    async def write(self, value: object) -> OperationResult:
        """Write ``value``: query a quorum for timestamps, then install."""
        value = wire.canonical_value(value)
        invoked_at = time.monotonic()
        self.operations_started += 1
        quorum, replies, attempts = await self._probe(
            lambda: TimestampRequest(client_id=self.client_id)
        )
        if quorum is None:
            return self._finish(
                "write",
                invoked_at,
                OperationResult(success=False, attempts=attempts),
            )

        new_timestamp = self._fresh_timestamp(replies)
        pair = ValueTimestampPair(value=value, timestamp=new_timestamp)
        request = WriteRequest(client_id=self.client_id, pair=pair)

        write_replies = await self._collect_from_quorum(quorum, request)
        if write_replies is None:
            # The quorum answered the timestamp query but lost a member before
            # the install; retry through fresh quorums, accumulating attempts.
            quorum, write_replies, retry_attempts = await self._probe(lambda: request)
            attempts += retry_attempts
            if quorum is None:
                return self._finish(
                    "write",
                    invoked_at,
                    OperationResult(success=False, attempts=attempts),
                    attempted_pair=pair,
                )

        return self._finish(
            "write",
            invoked_at,
            OperationResult(
                success=True,
                value=value,
                timestamp=new_timestamp,
                quorum=quorum,
                attempts=attempts,
            ),
            attempted_pair=pair,
        )

    async def read(self) -> OperationResult:
        """Read the register, masking up to ``b`` Byzantine replies."""
        invoked_at = time.monotonic()
        self.operations_started += 1
        total_attempts = 0
        while True:
            quorum, replies, attempts = await self._probe(
                lambda: ReadRequest(client_id=self.client_id)
            )
            total_attempts += attempts
            if quorum is None:
                return self._finish(
                    "read",
                    invoked_at,
                    OperationResult(success=False, attempts=total_attempts),
                )
            votes: Counter = Counter(reply.pair for reply in replies.values())
            vouched = [pair for pair, count in votes.items() if count >= self.b + 1]
            if vouched:
                best = max(vouched, key=lambda pair: pair.timestamp)
                if best.timestamp > self.last_timestamp:
                    self.last_timestamp = best.timestamp
                return self._finish(
                    "read",
                    invoked_at,
                    OperationResult(
                        success=True,
                        value=best.value,
                        timestamp=best.timestamp,
                        quorum=quorum,
                        attempts=total_attempts,
                    ),
                )
            # No pair vouched by b + 1 replicas (an interleaved write split
            # the votes); the retry policy decides whether to try again.
            if (
                self.policy.retry_unvouched_reads
                and total_attempts < self.policy.max_attempts
            ):
                continue
            return self._finish(
                "read",
                invoked_at,
                OperationResult(
                    success=False, quorum=quorum, attempts=total_attempts
                ),
            )

    # ------------------------------------------------------------------
    # Completion bookkeeping.
    # ------------------------------------------------------------------
    def _finish(
        self,
        kind: str,
        invoked_at: float,
        result: OperationResult,
        *,
        attempted_pair: ValueTimestampPair | None = None,
    ) -> OperationResult:
        responded_at = time.monotonic()
        result = OperationResult(
            success=result.success,
            value=result.value,
            timestamp=result.timestamp,
            quorum=result.quorum,
            attempts=result.attempts,
            latency=responded_at - invoked_at,
        )
        if result.success:
            self._record_success(result.quorum)
        if self.history is not None:
            self.history.record(
                client_id=self.client_id,
                kind=kind,
                invoked_at=invoked_at,
                responded_at=responded_at,
                result=result,
                attempted_pair=attempted_pair,
            )
        return result
