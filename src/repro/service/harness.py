"""Supervisor and load generator for the networked register service.

Three layers, each usable on its own:

* :class:`ServiceCluster` — spawns one OS process per replica (``python -m
  repro serve --index i``), discovers each replica's ephemeral port through
  its ready file, and supports the fault-injection verbs the simulator's
  :class:`~repro.simulation.faults.FaultScenario` models: ``kill`` (crash),
  ``restart`` (rejoin), and — via control frames — ``stall``/``resume``
  (slow server).  A cluster can also designate Byzantine replicas, which
  then run the simulator's :class:`ByzantineReplicaServer` behaviours live.
* ``run_load`` — the load generator: N concurrent
  :class:`~repro.service.client.ServiceQuorumClient` coroutines drive
  closed-loop or open-loop (``simulation/traces.py`` arrival-model) traffic
  against a cluster, every operation lands in one shared
  :class:`~repro.simulation.history.HistoryRecorder`, and the result is a
  :class:`ServiceRunResult` whose ``report()`` is a
  :class:`~repro.api.workloads.WorkloadReport`-shaped dict
  (``engine="service"``) extended with a ``"service"`` section (per-replica
  STATUS/METRICS, checker verdict, protocol accounting).
* cluster files — ``{"spec", "b", "replicas": [...]}`` JSON handed from
  ``python -m repro serve`` to ``python -m repro loadgen`` so the two CLI
  verbs compose across processes (and so tests replay against a cluster
  they did not spawn).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Hashable

from repro.api.registry import SystemSpec, build, spec_of
from repro.api.workloads import WorkloadReport
from repro.core.quorum_system import QuorumSystem
from repro.core.rng import ensure_rng
from repro.core.strategy import Strategy
from repro.exceptions import ServiceError
from repro.service import wire
from repro.service.client import ServiceQuorumClient, call_endpoint
from repro.simulation.client import RetryPolicy
from repro.simulation.engine import resolve_strategy
from repro.simulation.history import (
    HistoryCheck,
    HistoryRecorder,
    OperationRecord,
    freeze_value,
)
from repro.simulation.messages import ValueTimestampPair
from repro.simulation.server import BYZANTINE_BEHAVIOURS
from repro.simulation.traces import TraceScenario
from repro.storage import FsyncPolicy

__all__ = [
    "ClusterSpec",
    "ReplicaHandle",
    "ServiceCluster",
    "ServiceRunResult",
    "discover_initial_pair",
    "load_cluster_file",
    "run_load",
    "run_supervisor",
]

#: How long `ServiceCluster.start` waits for every ready file by default.
DEFAULT_READY_TIMEOUT = 30.0


@dataclass(frozen=True)
class ClusterSpec:
    """Declarative description of one replica cluster.

    ``byzantine`` replicas (the *last* ``byzantine`` universe indices, a
    deterministic choice so runs are reproducible) serve
    ``byzantine_behaviour`` instead of the honest state machine.  ``b`` is
    the protocol's masking parameter (defaults to the system's own masking
    bound), and ``byzantine > b`` is rejected unless ``allow_overload`` —
    exactly the simulator's guard.

    ``data_root`` makes the cluster *durable*: replica ``i`` journals to
    ``<data_root>/replica-<i>`` (see :mod:`repro.storage`) and a
    :meth:`ServiceCluster.restart` recovers its pre-crash register from
    there.  ``fsync`` / ``snapshot_every`` are forwarded to every replica's
    store; without ``data_root`` the cluster is memory-only and a restarted
    replica rejoins empty.
    """

    spec: SystemSpec
    b: int | None = None
    byzantine: int = 0
    byzantine_behaviour: str = "forge-on-read"
    host: str = "127.0.0.1"
    seed: int = 0
    allow_overload: bool = False
    data_root: str | None = None
    fsync: str = "always"
    snapshot_every: int = 1024

    def resolve(self) -> tuple[QuorumSystem, int]:
        """Build the system and resolve the masking parameter."""
        system = build(self.spec)
        b = self.b if self.b is not None else system.masking_bound()
        if b < 0:
            raise ServiceError(f"masking parameter must be >= 0, got {b}")
        if self.byzantine < 0 or self.byzantine > len(system.universe):
            raise ServiceError(
                f"byzantine count {self.byzantine} outside [0, {len(system.universe)}]"
            )
        if self.byzantine > b and not self.allow_overload:
            raise ServiceError(
                f"{self.byzantine} Byzantine replicas exceed the masking "
                f"parameter b={b}; pass allow_overload=True for negative tests"
            )
        if self.byzantine and self.byzantine_behaviour not in BYZANTINE_BEHAVIOURS:
            raise ServiceError(
                f"unknown Byzantine behaviour {self.byzantine_behaviour!r}; "
                f"choose one of {sorted(BYZANTINE_BEHAVIOURS)}"
            )
        if self.data_root is not None:
            FsyncPolicy.parse(self.fsync)  # reject a bad policy before spawning
        return system, b


@dataclass
class ReplicaHandle:
    """One spawned replica process and its discovered address."""

    index: int
    server_id: Hashable
    byzantine: str | None = None
    host: str = ""
    port: int = 0
    process: subprocess.Popen | None = None
    ready_file: Path | None = None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None


def _replica_command(
    cluster: ClusterSpec, index: int, ready_file: Path
) -> list[str]:
    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--spec",
        json.dumps(cluster.spec.to_dict()),
        "--index",
        str(index),
        "--host",
        cluster.host,
        "--port",
        "0",
        "--ready-file",
        str(ready_file),
        "--seed",
        str(cluster.seed + index),
    ]
    if cluster.data_root is not None:
        command += [
            "--data-dir",
            str(Path(cluster.data_root) / f"replica-{index}"),
            "--fsync",
            cluster.fsync,
            "--snapshot-every",
            str(cluster.snapshot_every),
        ]
    return command


class ServiceCluster:
    """Spawn, address and fault-inject one replica process per server.

    Use as a context manager (``with ServiceCluster(...) as cluster``) or
    call :meth:`start` / :meth:`terminate` explicitly.  ``run_dir`` holds
    the ready files; it must outlive the cluster.
    """

    def __init__(self, cluster: ClusterSpec, run_dir: str | Path):
        self.cluster = cluster
        self.run_dir = Path(run_dir)
        self.system, self.b = cluster.resolve()
        n = len(self.system.universe)
        byzantine_indices = set(range(n - cluster.byzantine, n))
        self.replicas: list[ReplicaHandle] = [
            ReplicaHandle(
                index=index,
                server_id=self.system.universe.element_at(index),
                byzantine=(
                    cluster.byzantine_behaviour if index in byzantine_indices else None
                ),
            )
            for index in range(n)
        ]

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def __enter__(self) -> "ServiceCluster":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.terminate()

    def start(self, *, timeout: float | None = None) -> None:
        """Spawn every replica and wait until all published their ports.

        The default deadline scales with the replica count: interpreter
        start-up is effectively serial on small machines, so a 16-replica
        cluster legitimately needs several times a 5-replica cluster's
        budget.
        """
        if timeout is None:
            timeout = max(DEFAULT_READY_TIMEOUT, 5.0 * len(self.replicas))
        self.run_dir.mkdir(parents=True, exist_ok=True)
        for handle in self.replicas:
            self._spawn(handle)
        deadline = time.monotonic() + timeout
        for handle in self.replicas:
            self._await_ready(handle, deadline)

    def _spawn(self, handle: ReplicaHandle) -> None:
        ready_file = self.run_dir / f"replica-{handle.index}.ready"
        ready_file.unlink(missing_ok=True)
        command = _replica_command(self.cluster, handle.index, ready_file)
        if handle.byzantine is not None:
            command += ["--byzantine-behaviour", handle.byzantine]
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        handle.ready_file = ready_file
        handle.process = subprocess.Popen(
            command,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            start_new_session=True,
        )

    def _await_ready(self, handle: ReplicaHandle, deadline: float) -> None:
        assert handle.ready_file is not None
        while time.monotonic() < deadline:
            if handle.process is not None and handle.process.poll() is not None:
                raise ServiceError(
                    f"replica {handle.index} exited with code "
                    f"{handle.process.returncode} before becoming ready"
                )
            if handle.ready_file.exists():
                payload = json.loads(handle.ready_file.read_text(encoding="utf-8"))
                handle.host = payload["host"]
                handle.port = int(payload["port"])
                return
            time.sleep(0.02)
        raise ServiceError(
            f"replica {handle.index} did not become ready within its deadline"
        )

    def terminate(self) -> None:
        """Stop every replica process (SIGTERM, then SIGKILL stragglers)."""
        for handle in self.replicas:
            if handle.alive:
                assert handle.process is not None
                handle.process.terminate()
        for handle in self.replicas:
            if handle.process is None:
                continue
            try:
                handle.process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                handle.process.kill()
                handle.process.wait(timeout=5.0)

    # ------------------------------------------------------------------
    # Addressing.
    # ------------------------------------------------------------------
    def endpoints(self) -> dict:
        """``{universe element: (host, port)}`` for the client library."""
        return {
            handle.server_id: (handle.host, handle.port) for handle in self.replicas
        }

    def to_cluster_file(self, path: str | Path) -> None:
        """Write the cluster description ``python -m repro loadgen`` consumes."""
        payload = {
            "spec": self.cluster.spec.to_dict(),
            "b": self.b,
            "replicas": [
                {
                    "index": handle.index,
                    "host": handle.host,
                    "port": handle.port,
                    "byzantine": handle.byzantine,
                    "pid": handle.process.pid if handle.process else None,
                }
                for handle in self.replicas
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")

    # ------------------------------------------------------------------
    # Fault injection (mirrors FaultScenario's crashed / slow / byzantine).
    # ------------------------------------------------------------------
    def kill(self, index: int) -> None:
        """Crash one replica (SIGKILL — no goodbye, like a real crash)."""
        handle = self.replicas[index]
        if handle.alive:
            assert handle.process is not None
            handle.process.kill()
            handle.process.wait(timeout=5.0)

    def restart(self, index: int, *, timeout: float = DEFAULT_READY_TIMEOUT) -> None:
        """Restart a killed replica.

        With ``ClusterSpec.data_root`` set the new process recovers its
        register from its per-replica :class:`~repro.storage.DurableStore`
        (write-ahead log + snapshot) and rejoins with its pre-crash state;
        without it, the replica rejoins with a fresh (initial) state and
        only the ``b+1`` vouch threshold protects readers from its stale
        answers.
        """
        handle = self.replicas[index]
        if handle.alive:
            raise ServiceError(f"replica {index} is still running")
        self._spawn(handle)
        self._await_ready(handle, time.monotonic() + timeout)

    async def stall(self, index: int) -> None:
        """Freeze a replica's protocol replies (the *slow server* fault)."""
        handle = self.replicas[index]
        await call_endpoint(handle.host, handle.port, {"type": "STALL"})

    async def resume(self, index: int) -> None:
        handle = self.replicas[index]
        await call_endpoint(handle.host, handle.port, {"type": "RESUME"})

    async def status(self, index: int) -> dict:
        handle = self.replicas[index]
        return await call_endpoint(handle.host, handle.port, {"type": "STATUS"})

    async def metrics(self, index: int) -> dict:
        handle = self.replicas[index]
        return await call_endpoint(handle.host, handle.port, {"type": "METRICS"})

    async def discover_pair(self) -> ValueTimestampPair | None:
        """The cluster's b+1-vouched register state (see
        :func:`discover_initial_pair`); queries live replicas only."""
        return await discover_initial_pair(
            [
                {"host": handle.host, "port": handle.port}
                for handle in self.replicas
                if handle.alive
            ],
            b=self.b,
        )


def load_cluster_file(path: str | Path) -> tuple[SystemSpec, int, list[dict]]:
    """Parse a cluster file into ``(spec, b, replica descriptors)``."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ServiceError(f"cannot read cluster file {path}: {exc}") from None
    try:
        spec = SystemSpec(
            construction=payload["spec"]["construction"],
            params=dict(payload["spec"]["params"]),
        )
        return spec, int(payload["b"]), list(payload["replicas"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed cluster file {path}: {exc}") from None


async def discover_initial_pair(
    replica_endpoints: list,
    *,
    b: int,
    timeout: float = 5.0,
) -> ValueTimestampPair | None:
    """Recover the register state a cluster already holds, from the server side.

    Queries every replica's ``STATUS`` frame for its current ``(value,
    ts)`` pair and returns the highest-timestamp pair vouched for by at
    least ``b + 1`` replicas — the same masking rule a read uses, so up to
    ``b`` Byzantine or freshly-wiped replicas cannot fabricate or roll back
    the discovered state.  ``None`` when no pair reaches the vouch
    threshold (e.g. a cluster that never served a write).

    This replaces client-side ``initial_pair`` chaining across runs against
    a *durable* cluster: after a full-cluster restart the state lives in the
    replicas' write-ahead logs, not in any client's memory.  Unreachable
    replicas and frames without register fields are skipped — discovery
    degrades exactly like a read would.
    """
    votes: dict = {}
    for descriptor in replica_endpoints:
        host, port = descriptor["host"], descriptor["port"]
        try:
            payload = await call_endpoint(host, port, {"type": "STATUS"}, timeout=timeout)
        except ServiceError:
            continue
        if "ts" not in payload:
            continue
        try:
            timestamp = wire.decode_timestamp(payload["ts"])
        except ServiceError:
            continue
        pair = ValueTimestampPair(
            value=freeze_value(payload.get("value")), timestamp=timestamp
        )
        votes[pair] = votes.get(pair, 0) + 1
    vouched = [pair for pair, count in votes.items() if count >= b + 1]
    return max(vouched, key=lambda pair: pair.timestamp, default=None)


# ----------------------------------------------------------------------
# Load generation.
# ----------------------------------------------------------------------
@dataclass
class ServiceRunResult:
    """Everything one live load-generation run produced."""

    system: QuorumSystem
    b: int
    seed: int
    operations: int
    clients: int
    duration: float
    strategy: Strategy
    records: list[OperationRecord]
    check: HistoryCheck
    per_server_load: dict
    per_server_attempted: dict
    timeouts: int
    replica_status: list = field(default_factory=list)
    replica_metrics: list = field(default_factory=list)
    #: What the run's checker assumed the register held at the start (the
    #: ``initial_pair`` handed to :func:`run_load`, chained or discovered).
    initial_pair: ValueTimestampPair | None = None

    @property
    def successful(self) -> list[OperationRecord]:
        return [record for record in self.records if record.success]

    @property
    def final_pair(self) -> ValueTimestampPair | None:
        """The highest-timestamp pair this run installed or observed.

        Feed it as ``initial_pair`` to a follow-up :func:`run_load` against
        the *same still-running* cluster, so the next run's checker knows
        what register state it inherits (otherwise reads of the previous
        run's value would look fabricated).  ``None`` when nothing
        succeeded.  Only exact when the run quiesced — a write that failed
        mid-install may still surface later, exactly as in the simulator.
        """
        pairs = [pair for record in self.successful if (pair := record.pair) is not None]
        return max(pairs, key=lambda pair: pair.timestamp, default=None)

    def report(self, *, scenario: str = "service", strategy_label: str = "default") -> dict:
        """A :class:`~repro.api.workloads.WorkloadReport`-shaped dict.

        ``engine`` is ``"service"`` and a ``"service"`` key carries what only
        a live run has: per-replica STATUS/METRICS frames, the full checker
        verdict and the client-side timeout count.
        """
        successful = self.successful
        latencies = sorted(r.responded_at - r.invoked_at for r in successful)

        def percentile(fraction: float) -> float | None:
            if not latencies:
                return None
            rank = min(len(latencies) - 1, max(0, int(fraction * len(latencies))))
            return latencies[rank]

        try:
            registry_spec = spec_of(self.system).to_dict()
        except Exception:  # pragma: no cover - non-registry systems
            registry_spec = None
        busiest = ""
        if self.per_server_load and max(self.per_server_load.values()) > 0.0:
            busiest = repr(
                max(self.per_server_load, key=self.per_server_load.get)
            )
        report = WorkloadReport(
            engine="service",
            system=self.system.name,
            n=self.system.n,
            b=self.b,
            scenario=scenario,
            strategy=strategy_label,
            seed=self.seed,
            sampled=False,
            operations=self.operations,
            successful_reads=sum(1 for r in successful if r.kind == "read"),
            successful_writes=sum(1 for r in successful if r.kind == "write"),
            failed_operations=self.operations - len(successful),
            availability=(
                len(successful) / self.operations if self.operations else 0.0
            ),
            consistent=self.check.ok,
            consistency_violations=(
                self.check.fabricated_reads
                + self.check.write_order_violations
                + self.check.duplicate_write_timestamps
            ),
            stale_reads=self.check.stale_reads,
            empirical_load=(
                max(self.per_server_load.values()) if self.per_server_load else 0.0
            ),
            busiest_server=busiest,
            spec=registry_spec,
            latency_mean=(
                sum(latencies) / len(latencies) if latencies else None
            ),
            latency_p50=percentile(0.50),
            latency_p90=percentile(0.90),
            latency_p99=percentile(0.99),
            duration=self.duration,
            timeouts=self.timeouts,
        ).to_dict()
        report["service"] = {
            "clients": self.clients,
            "check": {
                "ok": self.check.ok,
                "operations": self.check.operations,
                "concurrent_pairs": self.check.concurrent_pairs,
                "fabricated_reads": self.check.fabricated_reads,
                "stale_reads": self.check.stale_reads,
                "write_order_violations": self.check.write_order_violations,
                "duplicate_write_timestamps": self.check.duplicate_write_timestamps,
                "violations": list(self.check.violations),
            },
            "replica_status": self.replica_status,
            "replica_metrics": self.replica_metrics,
            "initial_pair": (
                None
                if self.initial_pair is None
                else {
                    "value": self.initial_pair.value,
                    "ts": wire.encode_timestamp(self.initial_pair.timestamp),
                }
            ),
        }
        return report


async def run_load(
    system: QuorumSystem,
    endpoints: dict,
    *,
    b: int,
    operations: int,
    clients: int = 16,
    write_fraction: float = 0.5,
    mode: str = "closed",
    trace: TraceScenario | None = None,
    rate: float = 0.0,
    policy: RetryPolicy | None = None,
    strategy: Strategy | str | None = None,
    seed: int = 0,
    replica_endpoints: list | None = None,
    initial_pair: ValueTimestampPair | None = None,
) -> ServiceRunResult:
    """Drive concurrent client coroutines against live replicas.

    ``mode="closed"`` splits ``operations`` across ``clients`` back-to-back
    loops (concurrency = the client count).  ``mode="open"`` replays a
    :class:`~repro.simulation.traces.TraceScenario` arrival schedule
    (default: a diurnal trace) compressed so the whole schedule spans
    ``operations / rate`` real seconds; each arrival is handed to the next
    free client, and a backlogged client runs its queue without pause —
    bounded open loop.  Every operation is recorded in one shared history;
    the returned result carries the checker verdict over it.
    """
    if operations < 1:
        raise ServiceError(f"operations must be >= 1, got {operations}")
    if clients < 1:
        raise ServiceError(f"clients must be >= 1, got {clients}")
    if mode not in ("closed", "open"):
        raise ServiceError(f"mode must be 'closed' or 'open', got {mode!r}")
    rng = ensure_rng(seed)
    # initial_pair: what the register already holds (e.g. the final_pair of
    # a previous run against the same cluster); the checker treats it as
    # legitimately readable pre-existing state.
    history = HistoryRecorder(initial_pair)
    policy = policy if policy is not None else RetryPolicy(request_timeout=2.0)
    # Resolve the strategy up front (None -> uniform over the family) so the
    # clients sample exactly the distribution service_conformance bounds.
    resolved_strategy = (
        strategy if isinstance(strategy, Strategy) else resolve_strategy(system, strategy)
    )
    pool = [
        ServiceQuorumClient(
            client_id,
            system,
            endpoints,
            b=b,
            policy=policy,
            rng=ensure_rng(rng.integers(2**63)),
            strategy=resolved_strategy,
            history=history,
        )
        for client_id in range(clients)
    ]

    # Pre-draw every operation's kind (and, open-loop, its arrival offset)
    # from the single seeded stream, then assign operations round-robin.
    if mode == "open":
        schedule_trace = trace if trace is not None else TraceScenario(name="diurnal")
        arrivals = schedule_trace.arrival_schedule(
            operations, rng, write_fraction=write_fraction
        )
        span = max((t for t, _kind in arrivals), default=0.0)
        pace = 0.0 if rate <= 0.0 or span <= 0.0 else (operations / rate) / span
        plan = [(t * pace, kind) for t, kind in arrivals]
    else:
        kinds = rng.random(operations) < write_fraction
        plan = [(0.0, "write" if is_write else "read") for is_write in kinds]
    assignments: list[list[tuple[float, str]]] = [[] for _ in range(clients)]
    for position, item in enumerate(plan):
        assignments[position % clients].append(item)

    started = time.monotonic()

    async def drive(client: ServiceQuorumClient, work: list) -> None:
        value_counter = 0
        for offset, kind in work:
            if offset > 0.0:
                delay = started + offset - time.monotonic()
                if delay > 0:
                    await asyncio.sleep(delay)
            if kind == "write":
                value_counter += 1
                await client.write((f"client-{client.client_id}", value_counter))
            else:
                await client.read()

    try:
        await asyncio.gather(
            *(drive(client, work) for client, work in zip(pool, assignments))
        )
    finally:
        for client in pool:
            await client.close()
    duration = time.monotonic() - started

    total_ran = len(plan)
    successful = [record for record in history.records if record.success]
    total_success = max(1, len(successful))
    per_server_load = {
        server_id: sum(
            client.successful_access_counts[server_id] for client in pool
        )
        / total_success
        for server_id in system.universe
    }
    per_server_attempted = {
        server_id: sum(
            client.attempted_access_counts[server_id] for client in pool
        )
        / max(1, total_ran)
        for server_id in system.universe
    }

    replica_status: list = []
    replica_metrics: list = []
    if replica_endpoints:
        for descriptor in replica_endpoints:
            host, port = descriptor["host"], descriptor["port"]
            try:
                replica_status.append(
                    await call_endpoint(host, port, {"type": "STATUS"})
                )
                replica_metrics.append(
                    await call_endpoint(host, port, {"type": "METRICS"})
                )
            except ServiceError:
                replica_status.append(
                    {"type": "STATUS_REPLY", "index": descriptor.get("index"), "ok": False}
                )
                replica_metrics.append(None)

    return ServiceRunResult(
        system=system,
        b=b,
        seed=seed,
        operations=total_ran,
        clients=clients,
        duration=duration,
        strategy=resolved_strategy,
        records=list(history.records),
        check=history.check(),
        per_server_load=per_server_load,
        per_server_attempted=per_server_attempted,
        timeouts=sum(client.timeouts for client in pool),
        replica_status=replica_status,
        replica_metrics=replica_metrics,
        initial_pair=initial_pair,
    )


async def run_supervisor(
    cluster: ServiceCluster,
    *,
    cluster_file: str | Path | None = None,
) -> None:
    """Run a started cluster until SIGTERM/SIGINT, then tear it down.

    The ``python -m repro serve`` supervisor body: assumes
    ``cluster.start()`` already ran, publishes the cluster file, then parks
    on a stop event wired to the termination signals.
    """
    if cluster_file is not None:
        cluster.to_cluster_file(cluster_file)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-POSIX
            pass
    try:
        await stop.wait()
    finally:
        cluster.terminate()
