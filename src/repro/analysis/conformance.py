"""Conformance checks: empirical metrics against the paper's proven bounds.

The repo measures (empirical load, availability, stale/fabricated reads) and
computes (LP load, closed-form ``Fp``) the same quantities; this module
turns "the measurement must stay inside the proven envelope" into reusable,
test-callable assertions.  Each check is a :class:`ConformanceCheck` — an
observed value, a bound, a direction and the statistical slack the finite
sample is allowed — and a run's checks bundle into a
:class:`ConformanceReport` whose :meth:`~ConformanceReport.require` raises
:class:`~repro.exceptions.ConformanceError` on any violation.

What is checked, and why it is sound:

* **Load upper envelope** — for an adversarial run, the aggregate empirical
  load cannot exceed (beyond sampling noise) the largest load the access
  strategy *restricted to the quorums that survived each round* induces
  (:func:`restricted_induced_loads`): that restricted-and-renormalised
  strategy is exactly what the engine's steering retry samples from, so the
  per-round expectation is the restricted induced load and the aggregate is
  a convex combination over rounds.
* **Load worst case** — the same restricted load maximised over *every*
  crash set of size up to ``b`` (:func:`worst_case_induced_load`): the
  bound no adaptive crash adversary with budget ``b`` can beat, whatever it
  observes.
* **Load lower bound** — ``L(Q)`` of the Definition 3.8 LP
  (:func:`~repro.core.load.exact_load`).  Any strategy over any subfamily
  of the quorums induces at least ``L(Q)`` (restricting the family only
  shrinks the LP's feasible set), so the observed load must sit *above*
  ``L(Q)`` minus noise — the two-sided squeeze that pins the measurement to
  the theory.
* **Masking envelope** — with at most ``b`` Byzantine servers per round,
  Lemma 3.6 guarantees zero fabricated and zero stale reads; the bound is
  exact, so the tolerance is zero.
* **Availability** — the failure rate observed under independent
  per-server faults (e.g. the site-percolation phases of
  :func:`~repro.simulation.scenarios.percolation_scenario`) must agree with
  the closed-form ``Fp`` of :mod:`repro.core.analytic` within a binomial
  confidence interval.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from itertools import combinations
from math import comb, sqrt

import numpy as np

from repro.core.analytic import analytic_failure_probability
from repro.core.load import exact_load
from repro.core.membership import Membership
from repro.core.quorum_system import QuorumSystem
from repro.core.strategy import Strategy
from repro.core.universe import Universe
from repro.exceptions import ComputationError, ConformanceError, InvalidParameterError
from repro.simulation.adversary import (
    AdversarialResult,
    AdversaryPolicy,
    run_adversarial_workload,
)
from repro.simulation.engine import WorkloadResult, resolve_strategy, run_scenario
from repro.simulation.messages import Timestamp
from repro.simulation.reconfig import ReconfigResult
from repro.simulation.scenarios import percolation_scenario

__all__ = [
    "ConformanceCheck",
    "ConformanceReport",
    "adversarial_conformance",
    "availability_conformance",
    "load_conformance",
    "masking_conformance",
    "percolation_conformance",
    "reconfig_conformance",
    "recovery_conformance",
    "restricted_induced_loads",
    "service_conformance",
    "worst_case_induced_load",
]

#: Default z-score for statistical slacks (one-in-millions false alarms).
DEFAULT_Z = 5.0

#: Default cap on the number of crash sets :func:`worst_case_induced_load`
#: will enumerate.
ENUMERATION_LIMIT = 200_000


@dataclass(frozen=True)
class ConformanceCheck:
    """One "empirical metric vs paper bound" comparison.

    Attributes
    ----------
    metric:
        What was measured (e.g. ``"empirical-load"``).
    observed / bound:
        The measurement and the theoretical bound it is held against.
    direction:
        ``"<="`` (observed must not exceed the bound) or ``">="``.
    slack:
        Statistical tolerance granted on the permissive side (0 for exact
        bounds like the masking envelope).
    detail:
        Human-readable context for reports and error messages.
    """

    metric: str
    observed: float
    bound: float
    direction: str = "<="
    slack: float = 0.0
    detail: str = ""

    def __post_init__(self):
        if self.direction not in ("<=", ">="):
            raise InvalidParameterError(
                f"direction must be '<=' or '>=', got {self.direction!r}"
            )
        if self.slack < 0.0:
            raise InvalidParameterError(f"slack must be >= 0, got {self.slack}")

    @property
    def ok(self) -> bool:
        """Whether the observation respects the bound within the slack."""
        if self.direction == "<=":
            return self.observed <= self.bound + self.slack
        return self.observed >= self.bound - self.slack

    @property
    def margin(self) -> float:
        """Distance from the slackened bound (positive = inside the envelope)."""
        if self.direction == "<=":
            return self.bound + self.slack - self.observed
        return self.observed - (self.bound - self.slack)

    def require(self) -> None:
        """Raise :class:`~repro.exceptions.ConformanceError` unless :attr:`ok`."""
        if not self.ok:
            raise ConformanceError(
                f"{self.metric}: observed {self.observed:.6g} violates bound "
                f"{self.direction} {self.bound:.6g} (slack {self.slack:.3g})"
                + (f" — {self.detail}" if self.detail else "")
            )

    def to_dict(self) -> dict:
        return {
            "metric": self.metric,
            "observed": self.observed,
            "bound": self.bound,
            "direction": self.direction,
            "slack": self.slack,
            "ok": self.ok,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class ConformanceReport:
    """All conformance checks of one run."""

    checks: tuple

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> tuple:
        return tuple(check for check in self.checks if not check.ok)

    def require(self) -> None:
        """Raise on the first violated check."""
        for check in self.checks:
            check.require()

    def check(self, metric: str) -> ConformanceCheck:
        """Return the (first) check with the given metric name."""
        for entry in self.checks:
            if entry.metric == metric:
                return entry
        raise InvalidParameterError(
            f"no conformance check named {metric!r}; have "
            f"{', '.join(sorted({c.metric for c in self.checks}))}"
        )

    def to_dict(self) -> dict:
        return {"ok": self.ok, "checks": [check.to_dict() for check in self.checks]}


# ----------------------------------------------------------------------
# Restricted-strategy load bounds.
# ----------------------------------------------------------------------
def restricted_induced_loads(
    strategy: Strategy,
    universe: Universe,
    crash_sets: Sequence[Iterable],
) -> np.ndarray:
    """Max induced load of the strategy restricted to each crash set's survivors.

    For each crash set ``B``, the strategy is conditioned on its supported
    quorums that avoid ``B`` (renormalised) — exactly the distribution the
    engine's steering retry samples from — and the maximum per-server access
    probability of that conditional strategy is returned.  Entries are
    ``NaN`` when no supported quorum survives (operations fail; no load is
    induced at all).
    """
    engine = strategy.support_engine(universe)
    n = universe.size
    crashed_rows = np.zeros((len(crash_sets), n), dtype=bool)
    for row, crash_set in enumerate(crash_sets):
        positions = universe.indices_of(crash_set)
        if positions:
            crashed_rows[row, list(positions)] = True
    alive = engine.quorums_alive(crashed_rows)  # (num_sets, num_quorums)
    weights = strategy.probabilities[None, :] * alive
    totals = weights.sum(axis=1)
    safe_totals = np.where(totals > 0.0, totals, 1.0)
    loads = (weights / safe_totals[:, None]) @ engine.incidence_matrix().astype(float)
    per_set = loads.max(axis=1)
    per_set[totals <= 0.0] = np.nan
    return per_set


def worst_case_induced_load(
    system: QuorumSystem,
    strategy: Strategy | str | None = None,
    *,
    b: int,
    limit: int = ENUMERATION_LIMIT,
) -> float:
    """The restricted induced load maximised over every crash set of size <= b.

    This is the load envelope no crash adversary with budget ``b`` can
    exceed against the given strategy, however adaptively it chooses its
    victims.  Enumerates all ``sum_k C(n, k)`` crash sets, so it is meant
    for the test-sized systems the conformance suite runs on; a budget
    beyond ``limit`` sets raises
    :class:`~repro.exceptions.ComputationError`.
    """
    if b < 0:
        raise InvalidParameterError(f"b must be >= 0, got {b}")
    universe = system.universe
    n = universe.size
    total_sets = sum(comb(n, k) for k in range(min(b, n) + 1))
    if total_sets > limit:
        raise ComputationError(
            f"worst-case load bound needs {total_sets} crash sets at n={n}, "
            f"b={b}; limit is {limit}"
        )
    resolved = resolve_strategy(system, strategy)
    crash_sets: list[tuple] = []
    for k in range(min(b, n) + 1):
        crash_sets.extend(combinations(universe.elements, k))
    per_set = restricted_induced_loads(resolved, universe, crash_sets)
    finite = per_set[~np.isnan(per_set)]
    return float(finite.max()) if finite.size else 0.0


def _binomial_slack(rate: float, trials: int, z: float) -> float:
    """A z-sigma binomial half-width plus one-count discretisation slack."""
    trials = max(1, trials)
    clipped = min(max(rate, 0.0), 1.0)
    return z * sqrt(clipped * (1.0 - clipped) / trials) + 1.0 / trials


# ----------------------------------------------------------------------
# Run-level conformance checks.
# ----------------------------------------------------------------------
def load_conformance(
    result: AdversarialResult,
    system: QuorumSystem,
    *,
    b: int | None = None,
    z: float = DEFAULT_Z,
    worst_case_limit: int = ENUMERATION_LIMIT,
) -> ConformanceReport:
    """Check an adversarial run's empirical load against the load bounds.

    Three checks: the trajectory envelope (observed load <= the largest
    restricted induced load over the rounds the adversary actually played),
    the global worst case over every crash set of size up to ``b`` when the
    enumeration fits the budget, and the ``L(Q)`` lower bound when the LP is
    available for the system.
    """
    if not isinstance(result, AdversarialResult):
        raise InvalidParameterError(
            f"load_conformance takes an AdversarialResult, got {type(result).__name__}"
        )
    if result.strategy is None:
        raise InvalidParameterError(
            "the adversarial result carries no strategy; rerun through "
            "run_adversarial_workload"
        )
    universe = system.universe
    successful = result.successful_reads + result.successful_writes
    observed = result.empirical_load

    crash_sets = [round_.fault.crashed for round_ in result.rounds]
    per_round = restricted_induced_loads(result.strategy, universe, crash_sets)
    finite = per_round[~np.isnan(per_round)]
    envelope = float(finite.max()) if finite.size else 0.0
    checks = [
        ConformanceCheck(
            metric="load-envelope",
            observed=observed,
            bound=envelope,
            direction="<=",
            slack=_binomial_slack(envelope, successful, z),
            detail=(
                "restricted induced load maximised over the adversary's "
                f"{len(result.rounds)} realised crash sets"
            ),
        )
    ]

    budget = b if b is not None else max(
        (round_.fault.num_crashed for round_ in result.rounds), default=0
    )
    try:
        worst = worst_case_induced_load(
            system, result.strategy, b=budget, limit=worst_case_limit
        )
    except ComputationError:
        worst = None
    if worst is not None:
        checks.append(
            ConformanceCheck(
                metric="load-worst-case",
                observed=observed,
                bound=worst,
                direction="<=",
                slack=_binomial_slack(worst, successful, z),
                detail=f"restricted induced load over every crash set of size <= {budget}",
            )
        )

    try:
        lp_load = float(exact_load(system).load)
    except ComputationError:
        lp_load = None
    if lp_load is not None:
        checks.append(
            ConformanceCheck(
                metric="load-lp-lower-bound",
                observed=observed,
                bound=lp_load,
                direction=">=",
                slack=_binomial_slack(lp_load, successful, z),
                detail="L(Q) of the Definition 3.8 LP — no strategy induces less",
            )
        )
    return ConformanceReport(checks=tuple(checks))


def masking_conformance(result: WorkloadResult, *, b: int) -> ConformanceReport:
    """Check the Lemma 3.6 zero-violation guarantee on any workload result.

    Within ``b`` Byzantine servers the masking rule admits no fabricated and
    no stale reads, so both counters are held to an exact zero bound.  For
    an :class:`~repro.simulation.adversary.AdversarialResult` the per-round
    Byzantine counts are verified to actually stay within ``b`` (otherwise
    the guarantee does not apply and the check is vacuous by construction —
    overloaded negative runs should expect failures here).
    """
    successful_reads = max(1, result.successful_reads)
    rounds = getattr(result, "rounds", ())
    max_byzantine = max(
        (round_.fault.num_byzantine for round_ in rounds), default=0
    )
    checks = [
        ConformanceCheck(
            metric="fabricated-reads",
            observed=float(result.consistency_violations),
            bound=0.0,
            direction="<=",
            detail=f"Lemma 3.6: no fabrication with <= b={b} liars",
        ),
        ConformanceCheck(
            metric="stale-read-rate",
            observed=result.stale_reads / successful_reads,
            bound=0.0,
            direction="<=",
            detail="Lemma 3.6: reads see the latest completed write",
        ),
    ]
    if rounds:
        checks.append(
            ConformanceCheck(
                metric="byzantine-budget",
                observed=float(max_byzantine),
                bound=float(b),
                direction="<=",
                detail="the adversary stayed within the masking parameter",
            )
        )
    return ConformanceReport(checks=tuple(checks))


def service_conformance(
    result: object,
    *,
    crash_sets: Sequence[Iterable] | None = None,
    z: float = DEFAULT_Z,
    worst_case_limit: int = ENUMERATION_LIMIT,
) -> ConformanceReport:
    """Check a *live-traffic* run against the paper's bounds.

    Takes a :class:`~repro.service.harness.ServiceRunResult` (duck-typed, so
    this module never imports the service layer) — the outcome of driving
    real replica processes over sockets — and holds it to the same envelope
    the simulators are held to:

    * **masking zero bounds** — with at most ``b`` Byzantine replicas the
      recorded history must contain zero fabricated reads, zero stale reads
      and zero write-order/duplicate-timestamp violations (Lemma 3.6 plus
      the unique-timestamp rule; all exact, no slack);
    * **load envelope** — the busiest replica's empirical load cannot exceed
      the client strategy's restricted induced load maximised over the crash
      sets the run actually realised (``crash_sets``; the fault-free run is
      always included), beyond binomial noise;
    * **load lower bound** — the observed load must sit above ``L(Q)`` of
      the Definition 3.8 LP minus noise, when the LP is tractable for the
      system.

    ``crash_sets`` lists the replica subsets that were down during the run
    (killed or stalled past the retry budget); each is bounded like one
    adversarial round.
    """
    for attribute in ("system", "b", "check", "per_server_load", "strategy", "records"):
        if not hasattr(result, attribute):
            raise InvalidParameterError(
                "service_conformance takes a ServiceRunResult-shaped object; "
                f"{type(result).__name__} has no {attribute!r}"
            )
    system: QuorumSystem = result.system
    history = result.check
    successful = [record for record in result.records if record.success]
    successful_reads = max(
        1, sum(1 for record in successful if record.kind == "read")
    )
    observed = (
        max(result.per_server_load.values()) if result.per_server_load else 0.0
    )

    checks = [
        ConformanceCheck(
            metric="fabricated-reads",
            observed=float(history.fabricated_reads),
            bound=0.0,
            direction="<=",
            detail=f"Lemma 3.6 over live traffic: no fabrication with <= b={result.b} liars",
        ),
        ConformanceCheck(
            metric="stale-read-rate",
            observed=history.stale_reads / successful_reads,
            bound=0.0,
            direction="<=",
            detail="Lemma 3.6 over live traffic: reads see the latest completed write",
        ),
        ConformanceCheck(
            metric="history-safety",
            observed=float(
                history.write_order_violations + history.duplicate_write_timestamps
            ),
            bound=0.0,
            direction="<=",
            detail="real-time write order and unique write timestamps",
        ),
    ]

    realised: list[tuple] = [()]
    for crash_set in crash_sets or ():
        realised.append(tuple(crash_set))
    per_set = restricted_induced_loads(result.strategy, system.universe, realised)
    finite = per_set[~np.isnan(per_set)]
    envelope = float(finite.max()) if finite.size else 0.0
    checks.append(
        ConformanceCheck(
            metric="load-envelope",
            observed=observed,
            bound=envelope,
            direction="<=",
            slack=_binomial_slack(envelope, len(successful), z),
            detail=(
                "restricted induced load of the client strategy over the "
                f"{len(realised)} realised crash sets"
            ),
        )
    )

    # The crash-budget worst case only bounds runs whose outages stayed
    # within the masking budget (its quantifier ranges over sets of size
    # <= b); larger realised crash sets are covered by the envelope above.
    if all(len(crash_set) <= result.b for crash_set in realised):
        try:
            worst = worst_case_induced_load(
                system, result.strategy, b=result.b, limit=worst_case_limit
            )
        except ComputationError:
            worst = None
        if worst is not None:
            checks.append(
                ConformanceCheck(
                    metric="load-worst-case",
                    observed=observed,
                    bound=worst,
                    direction="<=",
                    slack=_binomial_slack(worst, len(successful), z),
                    detail=(
                        "restricted induced load over every crash set of size "
                        f"<= {result.b}"
                    ),
                )
            )

    try:
        lp_load = float(exact_load(system).load)
    except ComputationError:
        lp_load = None
    if lp_load is not None:
        checks.append(
            ConformanceCheck(
                metric="load-lp-lower-bound",
                observed=observed,
                bound=lp_load,
                direction=">=",
                slack=_binomial_slack(lp_load, len(successful), z),
                detail="L(Q) of the Definition 3.8 LP — no strategy induces less",
            )
        )
    return ConformanceReport(checks=tuple(checks))


def _timestamp_rank(timestamp) -> float:
    """Monotone float embedding of the lexicographic timestamp order.

    ``(counter, client_id)`` pairs compare lexicographically; mapping them
    to ``counter + (client_id + 1) / 2**20`` preserves that order exactly
    for every client id below ``2**20 - 1`` (client ids are small
    non-negative ints, ``-1`` only in the zero timestamp), so the checks
    below can expose real timestamps through ``ConformanceCheck``'s float
    observed/bound fields without losing the comparison.
    """
    return float(timestamp.counter) + (float(timestamp.client_id) + 1.0) / float(1 << 20)


def recovery_conformance(
    result: object,
    *,
    server_id,
    recovered_timestamp,
    post_result: object | None = None,
) -> ConformanceReport:
    """Check that a restarted replica recovered everything it had acked.

    ``result`` is the :class:`~repro.service.harness.ServiceRunResult`
    (duck-typed) recorded *before* (or spanning) the crash; ``server_id``
    the restarted replica's universe element; ``recovered_timestamp`` the
    timestamp the replica answered with after recovery (from its ``STATUS``
    frame, as a :class:`~repro.simulation.messages.Timestamp` or a raw
    ``[counter, client_id]`` pair).

    * **recovered-timestamp** — the recovered timestamp must be ``>=`` the
      highest timestamp of any successful write whose quorum contained the
      replica: every such write was acked by it, and an acked write must
      survive the crash (the journal-before-ack contract of
      :mod:`repro.storage`).  Exact, no slack.
    * with ``post_result`` (a run driven *after* the restart): the Lemma 3.6
      zero bounds must still hold — zero fabricated and zero stale reads
      across the restart, **without** any client-side ``initial_pair``
      chaining having been needed.
    """
    for attribute in ("records", "b"):
        if not hasattr(result, attribute):
            raise InvalidParameterError(
                "recovery_conformance takes a ServiceRunResult-shaped object; "
                f"{type(result).__name__} has no {attribute!r}"
            )
    recovered = (
        recovered_timestamp
        if isinstance(recovered_timestamp, Timestamp)
        else Timestamp(counter=int(recovered_timestamp[0]), client_id=int(recovered_timestamp[1]))
    )
    acked = [
        record.timestamp
        for record in result.records
        if record.success
        and record.kind == "write"
        and record.timestamp is not None
        and server_id in (record.quorum or ())
    ]
    floor = max(acked, default=Timestamp.zero())
    checks = [
        ConformanceCheck(
            metric="recovered-timestamp",
            observed=_timestamp_rank(recovered),
            bound=_timestamp_rank(floor),
            direction=">=",
            detail=(
                f"replica {server_id!r} recovered ts={recovered.counter, recovered.client_id} "
                f"vs last acked write ts={floor.counter, floor.client_id} over "
                f"{len(acked)} acked writes (journal-before-ack contract)"
            ),
        )
    ]
    if post_result is not None:
        for attribute in ("check", "records"):
            if not hasattr(post_result, attribute):
                raise InvalidParameterError(
                    "recovery_conformance post_result must be ServiceRunResult-"
                    f"shaped; {type(post_result).__name__} has no {attribute!r}"
                )
        post_history = post_result.check
        post_reads = max(
            1,
            sum(1 for record in post_result.records if record.success and record.kind == "read"),
        )
        checks.append(
            ConformanceCheck(
                metric="post-restart-fabricated",
                observed=float(post_history.fabricated_reads),
                bound=0.0,
                direction="<=",
                detail="Lemma 3.6 across the restart: no fabricated reads",
            )
        )
        checks.append(
            ConformanceCheck(
                metric="post-restart-stale-rate",
                observed=post_history.stale_reads / post_reads,
                bound=0.0,
                direction="<=",
                detail=(
                    "Lemma 3.6 across the restart: staleness bound holds with "
                    "no client-side initial_pair chaining"
                ),
            )
        )
    return ConformanceReport(checks=tuple(checks))


def availability_conformance(
    observed_failure_rate: float,
    system: QuorumSystem,
    *,
    p: float,
    trials: int,
    z: float = DEFAULT_Z,
) -> ConformanceReport:
    """Check a measured failure rate against the closed-form ``Fp``.

    ``observed_failure_rate`` is the fraction of independent fault draws
    (phases, trials) in which no quorum survived; under the Definition 3.10
    model it is a binomial proportion with mean ``Fp``, so it must sit
    inside a ``z``-sigma interval around the analytic value of
    :func:`~repro.core.analytic.analytic_failure_probability`.
    """
    fp = float(analytic_failure_probability(system, p).value)
    slack = _binomial_slack(fp, trials, z)
    checks = (
        ConformanceCheck(
            metric="failure-rate-upper",
            observed=observed_failure_rate,
            bound=fp,
            direction="<=",
            slack=slack,
            detail=f"closed-form Fp({p}) = {fp:.6g} over {trials} trials",
        ),
        ConformanceCheck(
            metric="failure-rate-lower",
            observed=observed_failure_rate,
            bound=fp,
            direction=">=",
            slack=slack,
            detail=f"closed-form Fp({p}) = {fp:.6g} over {trials} trials",
        ),
    )
    return ConformanceReport(checks=checks)


# ----------------------------------------------------------------------
# One-call backbones for tests, CI and benchmarks.
# ----------------------------------------------------------------------
def adversarial_conformance(
    system: QuorumSystem,
    *,
    b: int,
    policy: AdversaryPolicy,
    num_operations: int = 400,
    rounds: int = 8,
    strategy: Strategy | str | None = None,
    seed: int = 0,
    write_fraction: float = 0.5,
    z: float = DEFAULT_Z,
) -> tuple[AdversarialResult, ConformanceReport]:
    """Run an adaptive adversary and check every applicable bound.

    The backbone call of the adversarial test suite and the CI smoke job:
    one seed-deterministic :func:`run_adversarial_workload` run, followed by
    :func:`load_conformance` and :func:`masking_conformance` on its result.
    """
    result = run_adversarial_workload(
        system,
        b=b,
        policy=policy,
        num_operations=num_operations,
        rounds=rounds,
        strategy=strategy,
        rng=np.random.default_rng(seed),
        write_fraction=write_fraction,
    )
    checks = (
        load_conformance(result, system, b=b, z=z).checks
        + masking_conformance(result, b=b).checks
    )
    return result, ConformanceReport(checks=checks)


def reconfig_conformance(
    result: ReconfigResult,
    system: QuorumSystem,
    membership: Membership,
    *,
    z: float = DEFAULT_Z,
    worst_case_limit: int = ENUMERATION_LIMIT,
) -> ConformanceReport:
    """Check every epoch of a reconfiguration run against its own closed forms.

    For each epoch the quorum system is rebound to the epoch's membership
    (:meth:`~repro.core.membership.Membership.rebind`) and three families of
    checks are emitted, each tagged ``[e<index>]``:

    * **L(Q) lower bound** — the epoch's observed load must sit above the
      ``L(Q)`` of the epoch's *own* LP minus binomial slack.  Emitted only
      when the epoch's strategy ranges over the epoch system's quorums
      (policies ``initial`` / ``resolve`` / ``uniform``): a re-weighted
      strategy keeps quorums of the *previous* epoch's system, for which the
      subfamily argument behind the bound does not apply.
    * **Restricted-strategy envelope** — the observed load cannot exceed the
      restricted induced load of the epoch's actual strategy maximised over
      every crash set of size up to the epoch's own ``b``
      (:func:`worst_case_induced_load`); sound for any strategy, re-weighted
      ones included.
    * **Masking envelope** — zero fabricated and zero stale reads at ≤ b
      faults per epoch (Lemma 3.6 with the epoch's own ``b``), exact bound.
    """
    if not isinstance(result, ReconfigResult):
        raise InvalidParameterError(
            f"reconfig_conformance takes a ReconfigResult, got {type(result).__name__}"
        )
    checks: list[ConformanceCheck] = []
    for outcome in result.outcomes:
        rebound = membership.rebind(system, outcome.index)
        run = outcome.result
        tag = f"[e{outcome.index}]"
        successful = run.operations - run.failed_operations
        observed = run.empirical_load

        if outcome.policy != "reweight":
            try:
                lp_load = float(exact_load(rebound).load)
            except ComputationError:
                lp_load = None
            if lp_load is not None:
                checks.append(
                    ConformanceCheck(
                        metric=f"load-lp-lower-bound{tag}",
                        observed=observed,
                        bound=lp_load,
                        direction=">=",
                        slack=_binomial_slack(lp_load, successful, z),
                        detail=(
                            f"L(Q) of epoch {outcome.index}'s rebound system "
                            f"{outcome.system_name} (n={outcome.n})"
                        ),
                    )
                )

        if outcome.strategy is not None:
            try:
                worst = worst_case_induced_load(
                    rebound, outcome.strategy, b=outcome.b, limit=worst_case_limit
                )
            except ComputationError:
                worst = None
            if worst is not None:
                checks.append(
                    ConformanceCheck(
                        metric=f"load-envelope{tag}",
                        observed=observed,
                        bound=worst,
                        direction="<=",
                        slack=_binomial_slack(worst, successful, z),
                        detail=(
                            "restricted induced load of the epoch's strategy over "
                            f"every crash set of size <= b={outcome.b}"
                        ),
                    )
                )

        successful_reads = max(1, run.successful_reads)
        checks.append(
            ConformanceCheck(
                metric=f"fabricated-reads{tag}",
                observed=float(run.consistency_violations),
                bound=0.0,
                direction="<=",
                detail=f"Lemma 3.6 with the epoch's own b={outcome.b}",
            )
        )
        checks.append(
            ConformanceCheck(
                metric=f"stale-read-rate{tag}",
                observed=run.stale_reads / successful_reads,
                bound=0.0,
                direction="<=",
                detail=f"Lemma 3.6 with the epoch's own b={outcome.b}",
            )
        )
    return ConformanceReport(checks=tuple(checks))


def percolation_conformance(
    system: QuorumSystem,
    *,
    p: float,
    phases: int = 200,
    operations_per_phase: int = 4,
    b: int | None = None,
    seed: int = 0,
    z: float = DEFAULT_Z,
) -> tuple[WorkloadResult, ConformanceReport]:
    """Run a site-percolation workload and check availability against ``Fp``.

    Builds a :func:`~repro.simulation.scenarios.percolation_scenario` with
    ``phases`` independent lattice draws at closure probability ``p``, runs
    it through the scenario engine with ``operations_per_phase`` operations
    per phase, and compares the observed failure rate to the closed-form
    ``Fp`` with a binomial envelope over ``phases`` trials (within one phase
    survival is deterministic, so the phases are the independent trials).
    """
    if operations_per_phase < 1:
        raise InvalidParameterError(
            f"operations_per_phase must be >= 1, got {operations_per_phase}"
        )
    masking = b if b is not None else system.masking_bound()
    rng = np.random.default_rng(seed)
    scenario = percolation_scenario(
        system.universe, p_closed=p, rng=rng, phases=phases
    )
    result = run_scenario(
        system,
        b=masking,
        num_operations=phases * operations_per_phase,
        scenario=scenario,
        rng=rng,
    )
    observed_failure = result.failed_operations / result.operations
    report = availability_conformance(
        observed_failure, system, p=p, trials=phases, z=z
    )
    return result, report
