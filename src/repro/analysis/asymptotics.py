"""Asymptotic sweeps: the paper's Section 4–5 comparison as data.

The paper's headline statements are asymptotic: every ``b``-masking quorum
system has load ``Omega(sqrt(b/n))`` (Theorem 4.1 / Corollary 4.2), the
threshold family pays constant load for exponentially-good availability,
and the grid families pay ``Theta(1/sqrt(n))`` load while their crash
probability climbs to one — the trade-off M-Path finally escapes.  With the
closed forms of :mod:`repro.core.analytic` these statements become
*measurable*: this module sweeps ``n`` across decades (no quorum family is
ever enumerated, so ``n = 10^4`` and beyond is cheap), fits the measured
loads against ``c * n^alpha`` and the availability against
``exp(-rate * n^gamma)``, and classifies each family's trend.

Entry points
------------
* :func:`family_system` — instantiate one of the paper's families at (or
  near) a target universe size.
* :func:`sweep` — per-size analytic load / ``Fp`` points for one family.
* :func:`fit_power_law` / :func:`fit_exponential_decay` — log-space least
  squares with an ``r^2`` quality figure.
* :func:`section45_comparison` — the full comparison table: every family's
  load exponent and availability trend side by side.

``benchmarks/test_bench_large_n.py`` drives these sweeps up to ``n = 10^4``
and asserts the paper's exponents; ``docs/analysis.md`` walks through a
worked example.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.constructions.grid import MaskingGrid, RegularGrid
from repro.constructions.mgrid import MGrid
from repro.constructions.mpath import MPath
from repro.constructions.recursive_threshold import RecursiveThreshold
from repro.constructions.threshold import masking_threshold
from repro.core.analytic import analytic_failure_probability, analytic_load
from repro.core.bounds import load_lower_bound
from repro.core.floats import is_zero
from repro.core.quorum_system import QuorumSystem
from repro.exceptions import ComputationError

__all__ = [
    "ASYMPTOTIC_FAMILIES",
    "AsymptoticPoint",
    "ExponentialDecayFit",
    "FamilyAsymptotics",
    "PowerLawFit",
    "family_system",
    "fit_exponential_decay",
    "fit_power_law",
    "section45_comparison",
    "sweep",
]

#: The families the Section 4–5 comparison sweeps, in the paper's order.
ASYMPTOTIC_FAMILIES = ("Threshold", "Grid", "M-Grid", "RT(4,3)", "M-Path")


def family_system(name: str, n: int, b: int) -> QuorumSystem:
    """Instantiate family ``name`` at (or near) universe size ``n``.

    Grid-shaped families use ``side = isqrt(n)`` (pass perfect squares for
    exact sizes); RT uses the closest recursion depth.  The returned system
    is a plain construction — wrap it in
    :class:`~repro.core.quorum_system.ImplicitQuorumSystem` to feed the
    workload engines at large ``n``.
    """
    side = math.isqrt(n)
    if name == "Threshold":
        return masking_threshold(n, b)
    if name == "Grid":
        return MaskingGrid(side, b)
    if name == "M-Grid":
        return MGrid(side, b)
    if name == "M-Path":
        return MPath(side, b)
    if name == "RT(4,3)":
        depth = max(1, round(math.log(n, 4)))
        return RecursiveThreshold(4, 3, depth)
    if name == "RegularGrid":
        return RegularGrid(side)
    raise ComputationError(
        f"unknown asymptotic family {name!r}; choose one of {ASYMPTOTIC_FAMILIES}"
    )


@dataclass(frozen=True)
class AsymptoticPoint:
    """One (family, size) evaluation, entirely from closed forms.

    Attributes
    ----------
    system:
        The instantiated system's name.
    n:
        Its actual universe size (may differ from the requested size for
        families with natural shapes).
    b:
        Masking parameter of the instance.
    load:
        Closed-form ``L(Q)`` (:func:`repro.core.analytic.analytic_load`).
    load_bound:
        The Corollary 4.2 lower bound ``sqrt((2b+1)/n)``.
    failure_probability:
        Closed-form ``Fp``
        (:func:`repro.core.analytic.analytic_failure_probability`).
    fp_method:
        The availability method tag (``"analytic"``,
        ``"analytic-straight-lines"``, ...).
    """

    system: str
    n: int
    b: int
    load: float
    load_bound: float
    failure_probability: float
    fp_method: str


def sweep(
    name: str, sizes: Iterable[int], *, b: int = 1, p: float = 0.1
) -> list[AsymptoticPoint]:
    """Evaluate one family across universe sizes, closed forms only.

    Parameters
    ----------
    name:
        One of :data:`ASYMPTOTIC_FAMILIES`.
    sizes:
        Target universe sizes (decades of perfect squares work for every
        family, e.g. ``[64, 256, 1024, 4096, 10000]``).
    b:
        Masking parameter, held fixed so the sweep isolates the effect of
        ``n`` (the paper's comparison does the same).
    p:
        Individual crash probability for the ``Fp`` column.
    """
    points: list[AsymptoticPoint] = []
    for target in sizes:
        system = family_system(name, int(target), b)
        load = analytic_load(system).load
        availability = analytic_failure_probability(system, p)
        points.append(
            AsymptoticPoint(
                system=system.name,
                n=system.n,
                b=b,
                load=load,
                load_bound=load_lower_bound(system.n, b),
                failure_probability=availability.value,
                fp_method=availability.method,
            )
        )
    return points


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``value ~ coefficient * n^exponent`` in log-log space.

    ``r_squared`` is the coefficient of determination of the log-log
    regression; 1.0 means the data is exactly a power law.
    """

    coefficient: float
    exponent: float
    r_squared: float

    def predict(self, n: float) -> float:
        """Evaluate the fitted power law at size ``n``."""
        return self.coefficient * float(n) ** self.exponent


def _linear_fit(x: np.ndarray, y: np.ndarray) -> tuple[float, float, float]:
    """Plain least-squares ``y = slope * x + intercept`` with ``r^2``."""
    if len(x) < 2:
        raise ComputationError("need at least two points to fit a trend")
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    residual = float(((y - predicted) ** 2).sum())
    total = float(((y - y.mean()) ** 2).sum())
    r_squared = 1.0 if is_zero(total) else 1.0 - residual / total
    return float(slope), float(intercept), r_squared


def fit_power_law(sizes: Iterable[float], values: Iterable[float]) -> PowerLawFit:
    """Fit ``values[i] ~ c * sizes[i]^alpha`` (e.g. measured load vs ``c/sqrt(n)``).

    All values must be positive — power laws live in log-log space.  An
    exponent near ``-0.5`` with ``r^2`` near one reproduces the paper's
    ``Theta(1/sqrt(n))`` load statements; near ``0`` it is the Threshold
    family's constant load.
    """
    sizes = np.asarray(list(sizes), dtype=float)
    values = np.asarray(list(values), dtype=float)
    if (sizes <= 0).any() or (values <= 0).any():
        raise ComputationError("power-law fits need positive sizes and values")
    slope, intercept, r_squared = _linear_fit(np.log(sizes), np.log(values))
    return PowerLawFit(
        coefficient=float(np.exp(intercept)), exponent=slope, r_squared=r_squared
    )


@dataclass(frozen=True)
class ExponentialDecayFit:
    """Least-squares fit of ``value ~ exp(log_prefactor - rate * n^size_exponent)``.

    A positive ``rate`` with good ``r_squared`` certifies exponential decay
    — the ``Fp = e^(-Omega(n))`` availability of the threshold/RT families.
    """

    rate: float
    log_prefactor: float
    size_exponent: float
    r_squared: float

    def predict(self, n: float) -> float:
        """Evaluate the fitted decay at size ``n``."""
        return float(np.exp(self.log_prefactor - self.rate * float(n) ** self.size_exponent))


def fit_exponential_decay(
    sizes: Iterable[float], values: Iterable[float], *, size_exponent: float = 1.0
) -> ExponentialDecayFit:
    """Fit ``log values[i] ~ log A - rate * sizes[i]^size_exponent``.

    ``size_exponent = 1`` tests plain ``e^(-Omega(n))`` decay (Threshold);
    RT-style families decay like ``e^(-Omega(n^gamma))`` with
    ``gamma = log_k(k - l + 1)`` (Proposition 5.7), so pass that ``gamma``.
    Zero values (underflow of an astronomically small ``Fp``) are rejected —
    trim the size range instead of feeding ``log 0``.
    """
    sizes = np.asarray(list(sizes), dtype=float)
    values = np.asarray(list(values), dtype=float)
    if (values <= 0).any():
        raise ComputationError(
            "exponential fits need positive values; drop sizes whose Fp underflowed"
        )
    x = sizes**size_exponent
    slope, intercept, r_squared = _linear_fit(x, np.log(values))
    return ExponentialDecayFit(
        rate=-slope,
        log_prefactor=intercept,
        size_exponent=size_exponent,
        r_squared=r_squared,
    )


@dataclass(frozen=True)
class FamilyAsymptotics:
    """One family's row in the Section 4–5 comparison.

    Attributes
    ----------
    name:
        Family name.
    points:
        The per-size evaluations.
    load_fit:
        Power-law fit of the load column (`exponent ≈ -0.5` for the
        load-optimal families, ``≈ 0`` for Threshold).
    availability_trend:
        ``"decaying"`` when ``Fp`` shrinks with ``n`` (Condorcet-like),
        ``"degrading"`` when it grows towards one, ``"flat"`` otherwise.
    """

    name: str
    points: tuple[AsymptoticPoint, ...]
    load_fit: PowerLawFit
    availability_trend: str


def _classify_trend(values, *, tolerance: float = 1e-12) -> str:
    first, last = values[0], values[-1]
    if last <= max(first / 2.0, tolerance):
        return "decaying"
    if last >= min(2.0 * first, 1.0 - tolerance) and last > first:
        return "degrading"
    return "flat"


def section45_comparison(
    sizes: Iterable[int] | None = None, *, p: float = 0.1, b: int = 1
) -> dict[str, FamilyAsymptotics]:
    """Reproduce the paper's Section 4–5 comparison as data.

    Returns, per family, the load power-law fit and the availability trend
    across ``sizes`` — numerically restating Table 2's asymptotic columns:
    Threshold trades constant load for decaying ``Fp``, Grid/M-Grid trade
    ``Theta(1/sqrt(n))`` load for ``Fp -> 1``, RT sits in between, and
    M-Path's straight-line family keeps the optimal load scaling (its full
    family additionally achieves optimal availability, Proposition 7.3 —
    see :mod:`repro.percolation` for that side).
    """
    if sizes is None:
        sizes = (64, 256, 1024, 4096)
    result: dict[str, FamilyAsymptotics] = {}
    for name in ASYMPTOTIC_FAMILIES:
        points = sweep(name, sizes, b=b, p=p)
        load_fit = fit_power_law([pt.n for pt in points], [pt.load for pt in points])
        trend = _classify_trend([pt.failure_probability for pt in points])
        result[name] = FamilyAsymptotics(
            name=name,
            points=tuple(points),
            load_fit=load_fit,
            availability_trend=trend,
        )
    return result
