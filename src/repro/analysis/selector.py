"""Automated construction selection (the Section 8 design exercise as a function).

Section 8 of the paper walks through picking a quorum system by hand given a
universe size, a load budget and the component crash probability, noting that
"determining the best quorum construction depends on the goals and
constraints of any particular setting, as no system is advantageous in all
measures".  :func:`recommend_construction` automates exactly that exercise:
it instantiates every construction of the paper at the requested scale,
discards the ones that cannot meet the masking and load requirements, and
ranks the survivors by crash probability (the measure left over once the hard
requirements are met).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.comparison import SystemProfile, profile_system
from repro.constructions.boost_fpp import BoostedFPP
from repro.constructions.grid import MaskingGrid
from repro.constructions.mgrid import MGrid
from repro.constructions.mpath import MPath
from repro.constructions.recursive_threshold import RecursiveThreshold
from repro.constructions.threshold import masking_threshold
from repro.constructions.tree import TreeQuorumSystem
from repro.constructions.wheel import WheelQuorumSystem
from repro.core.rng import ensure_rng
from repro.exceptions import ConstructionError
from repro.gf.prime_field import factor_prime_power

__all__ = ["Recommendation", "candidate_constructions", "recommend_construction"]


@dataclass(frozen=True)
class Recommendation:
    """The outcome of a construction-selection run.

    Attributes
    ----------
    best:
        The profile of the recommended construction (``None`` when no
        construction meets the requirements).
    feasible:
        Profiles of every construction meeting the requirements, best first.
    rejected:
        Profiles of the constructions that exist at this scale but fail the
        masking or load requirement, for transparency.
    """

    best: SystemProfile | None
    feasible: list[SystemProfile]
    rejected: list[SystemProfile]


def _largest_prime_power_at_most(value: int) -> int:
    for candidate in range(value, 1, -1):
        try:
            factor_prime_power(candidate)
            return candidate
        except Exception:
            continue
    raise ConstructionError(f"no prime power at most {value}")


def candidate_constructions(n: int, required_b: int) -> list:
    """Instantiate every construction of the paper near size ``n`` masking ``required_b``.

    Constructions whose shape constraints cannot accommodate ``required_b``
    at (roughly) this universe size are silently skipped — that in itself is
    part of the answer the paper's Section 8 gives (e.g. M-Grid simply cannot
    mask ``n/4`` failures).

    The regular systems (tree, wheel — ``IS = 1``, so ``b = 0``) enter the
    comparison only when no masking is required: a ``required_b >= 1``
    instantly disqualifies them, so listing them would only add noise to the
    rejection report.  They are always available through the facade registry
    (``repro.api.build("tree", ...)``) and as boosting inputs.
    """
    candidates = []
    side = math.isqrt(n)

    if 4 * required_b < n:
        candidates.append(masking_threshold(n, required_b))

    if required_b == 0:
        if n >= 3:
            candidates.append(WheelQuorumSystem(n))
        # Depth capped at 3 (255 quorums): the depth-4 family has 2^16 - 1
        # quorums, which pushes the profile's exact MT/Fp computations from
        # milliseconds to minutes for no extra insight in a selection table.
        tree_depth = max(
            (d for d in range(1, 4) if 2 ** (d + 1) - 1 <= n), default=None
        )
        if tree_depth is not None:
            candidates.append(TreeQuorumSystem(tree_depth))

    for builder in (
        lambda: MaskingGrid(side, required_b),
        lambda: MGrid(side, required_b),
        lambda: MPath(side, required_b),
    ):
        try:
            candidates.append(builder())
        except ConstructionError:
            pass

    depth = max(1, round(math.log(max(n, 4), 4)))
    rt = RecursiveThreshold(4, 3, depth)
    if rt.masking_bound() >= required_b:
        candidates.append(rt)

    # boostFPP: pick the plane order so that (4b+1)(q^2+q+1) lands near n.
    points_budget = max(3, n // (4 * required_b + 1))
    # q^2 + q + 1 <= points_budget  =>  q <= (sqrt(4*budget - 3) - 1)/2.
    q_limit = int((math.sqrt(4 * points_budget - 3) - 1) // 2)
    if q_limit >= 2:
        try:
            q = _largest_prime_power_at_most(q_limit)
            candidates.append(BoostedFPP(q, required_b))
        except ConstructionError:
            pass

    return candidates


def recommend_construction(
    n: int,
    p: float,
    *,
    required_b: int,
    max_load: float | None = None,
    rng: np.random.Generator | None = None,
) -> Recommendation:
    """Pick the best construction for the given deployment constraints.

    Parameters
    ----------
    n:
        Approximate number of servers available (grid constructions use the
        largest perfect square at most ``n``; boostFPP and RT use their own
        natural shapes near ``n``).
    p:
        Independent per-server crash probability.
    required_b:
        The number of Byzantine failures that must be masked.
    max_load:
        Optional load budget; constructions whose load exceeds it are
        rejected (this is how the paper's example rules out Threshold).
    rng:
        Randomness for the Monte-Carlo availability estimates of the systems
        that need one.

    Returns
    -------
    Recommendation
        Feasible constructions ranked by crash probability (then by load).
    """
    if required_b < 0:
        raise ConstructionError(f"required_b must be >= 0, got {required_b}")
    if n < 4:
        raise ConstructionError(f"need at least 4 servers, got {n}")
    rng = ensure_rng(rng)

    feasible: list[SystemProfile] = []
    rejected: list[SystemProfile] = []
    for system in candidate_constructions(n, required_b):
        profile = profile_system(system, p, b=required_b, rng=rng)
        meets_masking = system.masking_bound() >= required_b
        meets_load = max_load is None or profile.load <= max_load + 1e-12
        if meets_masking and meets_load:
            feasible.append(profile)
        else:
            rejected.append(profile)

    feasible.sort(key=lambda profile: (profile.crash_probability, profile.load))
    best = feasible[0] if feasible else None
    return Recommendation(best=best, feasible=feasible, rejected=rejected)
