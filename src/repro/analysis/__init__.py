"""Evaluation-level analysis: Table 2, the Section 8 comparison, trade-offs,
and the empirical-vs-analytic closing of the loop (measured ``L_w`` and
availability against the LP load and exact ``Fp``)."""

from repro.analysis.asymptotics import (
    ASYMPTOTIC_FAMILIES,
    AsymptoticPoint,
    ExponentialDecayFit,
    FamilyAsymptotics,
    PowerLawFit,
    family_system,
    fit_exponential_decay,
    fit_power_law,
    section45_comparison,
    sweep,
)
from repro.analysis.comparison import SystemProfile, profile_system, section8_comparison
from repro.analysis.conformance import (
    ConformanceCheck,
    ConformanceReport,
    adversarial_conformance,
    availability_conformance,
    load_conformance,
    masking_conformance,
    percolation_conformance,
    reconfig_conformance,
    recovery_conformance,
    restricted_induced_loads,
    service_conformance,
    worst_case_induced_load,
)
from repro.analysis.empirical import (
    EmpiricalAvailabilityComparison,
    EmpiricalLoadComparison,
    empirical_availability_comparison,
    empirical_load_comparison,
)
from repro.analysis.selector import Recommendation, candidate_constructions, recommend_construction
from repro.analysis.tables import TABLE2_SYSTEMS, Table2Row, availability_trend, table2
from repro.analysis.tradeoffs import TradeoffPoint, tradeoff_point, verify_tradeoff

__all__ = [
    "ASYMPTOTIC_FAMILIES",
    "AsymptoticPoint",
    "ConformanceCheck",
    "ConformanceReport",
    "EmpiricalAvailabilityComparison",
    "EmpiricalLoadComparison",
    "ExponentialDecayFit",
    "FamilyAsymptotics",
    "PowerLawFit",
    "Recommendation",
    "TABLE2_SYSTEMS",
    "SystemProfile",
    "Table2Row",
    "TradeoffPoint",
    "adversarial_conformance",
    "availability_conformance",
    "availability_trend",
    "candidate_constructions",
    "family_system",
    "fit_exponential_decay",
    "fit_power_law",
    "empirical_availability_comparison",
    "empirical_load_comparison",
    "load_conformance",
    "masking_conformance",
    "percolation_conformance",
    "profile_system",
    "reconfig_conformance",
    "recommend_construction",
    "recovery_conformance",
    "restricted_induced_loads",
    "section45_comparison",
    "section8_comparison",
    "service_conformance",
    "sweep",
    "table2",
    "tradeoff_point",
    "verify_tradeoff",
    "worst_case_induced_load",
]
