"""Design-space comparison of masking quorum systems (Section 8).

Section 8 of the paper walks through a concrete setting — roughly one
thousand servers, a target load of about 1/4, individual crash probability
1/8 — and compares what each construction delivers in masking ability ``b``,
resilience ``f`` and crash probability ``Fp``.  This module reproduces that
comparison for arbitrary parameters and returns the values in a structured
form that the Section 8 benchmark and the examples print.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constructions.boost_fpp import BoostedFPP
from repro.constructions.grid import MaskingGrid
from repro.constructions.mgrid import MGrid
from repro.constructions.mpath import MPath
from repro.constructions.recursive_threshold import RecursiveThreshold
from repro.constructions.threshold import masking_threshold
from repro.core.quorum_system import QuorumSystem
from repro.exceptions import ComputationError, ConstructionError

__all__ = ["SystemProfile", "profile_system", "section8_comparison"]


@dataclass(frozen=True)
class SystemProfile:
    """The headline figures of one construction in a concrete setting.

    Attributes
    ----------
    name:
        Construction name.
    n:
        Number of servers actually used (constructions round to their natural
        shapes: perfect squares, ``k^h``, ``(4b+1)(q^2+q+1)``...).
    b:
        Byzantine failures masked.
    f:
        Resilience (crash failures always survived), ``MT - 1``.
    load:
        The construction's (analytic) load.
    crash_probability:
        The value of ``Fp`` at the requested ``p`` — an exact value, an
        analytic bound or a Monte-Carlo estimate depending on the system.
    crash_probability_kind:
        ``"exact"``, ``"upper-bound"``, ``"lower-bound"`` or ``"monte-carlo"``.
    """

    name: str
    n: int
    b: int
    f: int
    load: float
    crash_probability: float
    crash_probability_kind: str


def profile_system(
    system: QuorumSystem,
    p: float,
    *,
    b: int | None = None,
    rng: np.random.Generator | None = None,
    mpath_trials: int = 200,
) -> SystemProfile:
    """Return the :class:`SystemProfile` of an already-built construction.

    The load comes from the facade's measure dispatcher
    (:func:`repro.api.measures.measure` with ``method="auto"``): the
    construction's closed form when it has one, the exact LP otherwise —
    which is what lets systems without a closed-form load (tree, wheel)
    appear in selection tables with a real value instead of ``NaN``.  The
    crash probability keeps the per-construction bound choices of the
    paper's Section 8 (the specific kinds reported in Table 2).
    """
    from repro.api.measures import measure  # local: analysis sits above the facade

    if b is None:
        b = system.masking_bound()
    resilience = system.min_transversal_size() - 1
    try:
        load = float(measure(system, "load").value)
    except ComputationError:
        load = float("nan")

    if isinstance(system, MGrid):
        crash_value = system.crash_probability_lower_bound(p)
        crash_kind = "lower-bound"
    elif isinstance(system, MPath):
        try:
            crash_value = system.crash_probability_upper_bound(p)
            crash_kind = "upper-bound"
        except Exception:
            crash_value = system.crash_probability(p, trials=mpath_trials, rng=rng)
            crash_kind = "monte-carlo"
    elif isinstance(system, BoostedFPP):
        crash_value = system.crash_probability_chernoff_bound(p)
        crash_kind = "upper-bound"
    elif isinstance(system, (RecursiveThreshold,)):
        crash_value = system.crash_probability(p)
        crash_kind = "exact"
    elif callable(getattr(system, "crash_probability", None)):
        crash_value = system.crash_probability(p)
        crash_kind = "exact"
    else:
        from repro.core.availability import monte_carlo_failure_probability

        crash_value = monte_carlo_failure_probability(system, p, rng=rng).value
        crash_kind = "monte-carlo"

    return SystemProfile(
        name=system.name,
        n=system.n,
        b=b,
        f=resilience,
        load=load,
        crash_probability=float(crash_value),
        crash_probability_kind=crash_kind,
    )


def section8_comparison(
    *,
    n: int = 1024,
    p: float = 0.125,
    rng: np.random.Generator | None = None,
    include_baselines: bool = False,
) -> list[SystemProfile]:
    """Reproduce the Section 8 worked example.

    With the defaults (``n = 1024`` servers, ``p = 1/8``) the paper reports:

    =============  =====  =====  ==============================
    system         b      f      Fp
    =============  =====  =====  ==============================
    M-Grid         15     28     >= 0.638
    boostFPP(q=3)  19     79     <= 0.372 (Chernoff form)
    M-Path         7      ~29    <= 0.001
    RT(4,3), h=5   15     31     <= 0.0001
    =============  =====  =====  ==============================

    Parameters are chosen so every construction's load is roughly 1/4.  The
    boostFPP instance uses ``n = 1001`` (the nearest size of its natural
    shape), exactly as in the paper.

    Parameters
    ----------
    n:
        Approximate number of servers (a perfect square and a power of 4 in
        the default setting).
    p:
        Individual crash probability.
    include_baselines:
        Also profile the [MR98a] Threshold and Grid baselines at the same
        scale, extending the comparison to all six systems of Table 2.

    Notes
    -----
    The classical regular systems (tree, wheel) are deliberately *not* part
    of this table: Section 8 compares ``b``-masking systems and a regular
    system has ``IS = 1``, hence ``b = 0`` — it cannot appear in a masking
    comparison at any scale.  They are registered in the facade
    (``repro.api.build("tree", depth=...)``, ``build("wheel", n=...)``) and
    join the selection exercise via
    :func:`repro.analysis.selector.candidate_constructions` when
    ``required_b == 0``.
    """
    side = int(round(n ** 0.5))
    if side * side != n:
        raise ConstructionError(f"the Section 8 comparison needs a perfect-square n; got {n}")

    profiles: list[SystemProfile] = []

    # M-Grid with the largest b giving load about 1/4: k rows/columns with
    # 2k/side ~ 1/4, i.e. k = side/8 and b = k^2 - 1.
    mgrid_k = max(1, side // 8)
    mgrid_b = mgrid_k * mgrid_k - 1
    profiles.append(profile_system(MGrid(side, mgrid_b), p, b=mgrid_b, rng=rng))

    # boostFPP with q = 3: load ~ 3/(4q) = 1/4; choose b so that n is close
    # to the requested size: (4b+1) * 13 ~ n.
    q = 3
    points = q * q + q + 1
    boost_b = max(1, (n // points - 1) // 4)
    profiles.append(profile_system(BoostedFPP(q, boost_b), p, b=boost_b, rng=rng))

    # M-Path with 4 LR + 4 TB paths (k = side/8 again), i.e. b = (k^2 - 1)/2.
    mpath_k = max(1, side // 8)
    mpath_b = (mpath_k * mpath_k - 1) // 2
    profiles.append(profile_system(MPath(side, mpath_b), p, b=mpath_b, rng=rng))

    # RT(4, 3) of the depth matching n = 4^h.
    depth = max(1, int(round(np.log(n) / np.log(4))))
    rt = RecursiveThreshold(4, 3, depth)
    profiles.append(profile_system(rt, p, b=rt.masking_bound(), rng=rng))

    if include_baselines:
        # Threshold with b chosen for load ~ 1/4 is impossible (its load is
        # always >= 1/2); profile it at the same masking level as RT instead.
        threshold = masking_threshold(n, rt.masking_bound())
        profiles.append(profile_system(threshold, p, b=rt.masking_bound(), rng=rng))
        grid_b = min(mgrid_b, (side - 1) // 3)
        profiles.append(profile_system(MaskingGrid(side, grid_b), p, b=grid_b, rng=rng))

    return profiles
