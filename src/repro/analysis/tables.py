"""Regeneration of Table 2: properties of all six constructions.

Table 2 of the paper summarises, for the two [MR98a] baselines and the four
new constructions, the largest maskable ``b``, the resilience ``f``, the load
``L`` and the asymptotic behaviour of ``Fp``.  The paper states these as
asymptotic formulas; this module evaluates the same quantities numerically
for concrete universe sizes, so that the benchmark can check both the
absolute values at a given ``n`` and the trends across ``n`` (who wins, where
the crossovers are).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constructions.boost_fpp import BoostedFPP
from repro.constructions.grid import MaskingGrid
from repro.constructions.mgrid import MGrid
from repro.constructions.mpath import MPath
from repro.constructions.recursive_threshold import RecursiveThreshold
from repro.constructions.threshold import masking_threshold
from repro.core.bounds import load_lower_bound
from repro.core.rng import ensure_rng
from repro.exceptions import ConstructionError

__all__ = ["Table2Row", "table2", "TABLE2_SYSTEMS", "availability_trend"]

#: The six systems of Table 2, in the paper's order.
TABLE2_SYSTEMS = (
    "Threshold",
    "Grid",
    "M-Grid",
    "RT(4,3)",
    "boostFPP",
    "M-Path",
)


@dataclass(frozen=True)
class Table2Row:
    """One row of the reproduced Table 2.

    Attributes
    ----------
    system:
        Construction name (one of :data:`TABLE2_SYSTEMS`).
    n:
        Universe size actually used by the instance.
    max_b:
        The largest ``b`` the construction can mask at this size (the
        paper's ``b <`` column).
    resilience:
        ``f`` at that ``b`` (the paper's ``f`` column).
    load:
        The construction's load at that ``b`` (the paper's ``L`` column).
    load_lower_bound:
        ``sqrt((2b+1)/n)`` — the Corollary 4.2 bound the ``L`` column is
        judged against (the dagger footnote marks load-optimal systems).
    crash_probability:
        ``Fp`` at the given ``p`` (exact, bound or Monte-Carlo depending on
        the system; see the corresponding construction's documentation).
    load_optimal:
        Whether the paper marks this system's load optimal for ``b``-masking
        systems.
    availability_optimal:
        Whether the paper marks this system's ``Fp`` optimal for its
        resilience.
    """

    system: str
    n: int
    max_b: int
    resilience: int
    load: float
    load_lower_bound: float
    crash_probability: float
    load_optimal: bool
    availability_optimal: bool


def _max_b_threshold(n: int) -> int:
    return (n - 1) // 4


def _max_b_grid(side: int) -> int:
    return (side - 1) // 3


def _max_b_mgrid(side: int) -> int:
    # b <= (side - 1)/2, subject to 2*ceil(sqrt(b+1)) <= side.
    best = 0
    for b in range((side - 1) // 2 + 1):
        k = math.isqrt(b + 1)
        if k * k < b + 1:
            k += 1
        if 2 * k <= side:
            best = b
    return best


def _max_b_mpath(side: int) -> int:
    # Largest b with ceil(sqrt(2b+1)) <= side and resilience >= b.
    best = 0
    for b in range(side * side):
        k = math.isqrt(2 * b + 1)
        if k * k < 2 * b + 1:
            k += 1
        if k > side or side - k < b:
            break
        best = b
    return best


def table2(
    n: int = 1024,
    p: float = 0.125,
    *,
    boost_q: int = 3,
    rng: np.random.Generator | None = None,
) -> list[Table2Row]:
    """Return the reproduced Table 2 at universe size ``n`` and crash probability ``p``.

    Each construction is instantiated at (or near) ``n`` with the *largest*
    masking parameter it supports, matching the ``b <`` column of the paper's
    table; systems with natural shapes use the closest feasible size
    (boostFPP uses ``(4b+1)(q^2+q+1)``, RT uses ``4^h``).

    Parameters
    ----------
    n:
        Target universe size; must be a perfect square (the grid systems
        need one, and the others are sized as close to it as their shapes
        allow).
    p:
        Individual crash probability for the ``Fp`` column.
    boost_q:
        Projective-plane order used by the boostFPP row.
    rng:
        Randomness source for the Monte-Carlo ``Fp`` estimates (Grid,
        M-Grid, and M-Path when ``p >= 1/3``); pass a seeded generator for
        reproducible tables.  The closed-form rows ignore it.

    Returns
    -------
    list[Table2Row]
        One row per system, in the paper's order
        (:data:`TABLE2_SYSTEMS`).  ``tests/test_analysis_tables.py`` pins
        this output on a small matrix so refactors cannot silently change
        the reproduced table.

    Examples
    --------
    The structural columns are closed-form and exactly reproducible:

    >>> import numpy as np
    >>> rows = table2(64, 0.125, rng=np.random.default_rng(0))
    >>> [row.system for row in rows]
    ['Threshold', 'Grid', 'M-Grid', 'RT(4,3)', 'boostFPP', 'M-Path']
    >>> [row.max_b for row in rows]
    [15, 2, 3, 3, 1, 4]
    >>> [row.resilience for row in rows]
    [16, 3, 6, 7, 7, 5]
    >>> [f"{row.load:.4f}" for row in rows]
    ['0.7500', '0.6719', '0.4375', '0.4219', '0.2462', '0.6094']
    >>> [row.system for row in rows if row.load_optimal]
    ['M-Grid', 'boostFPP', 'M-Path']
    """
    side = math.isqrt(n)
    if side * side != n:
        raise ConstructionError(f"Table 2 reproduction expects a perfect-square n; got {n}")
    rng = ensure_rng(rng)
    rows: list[Table2Row] = []

    # Threshold [MR98a].
    b = _max_b_threshold(n)
    threshold = masking_threshold(n, b)
    rows.append(
        Table2Row(
            system="Threshold",
            n=n,
            max_b=b,
            resilience=threshold.min_transversal_size() - 1,
            load=threshold.load(),
            load_lower_bound=load_lower_bound(n, b),
            crash_probability=threshold.crash_probability(p),
            load_optimal=False,
            availability_optimal=True,
        )
    )

    # Grid [MR98a].
    b = _max_b_grid(side)
    grid = MaskingGrid(side, b)
    rows.append(
        Table2Row(
            system="Grid",
            n=grid.n,
            max_b=b,
            resilience=grid.min_transversal_size() - 1,
            load=grid.load(),
            load_lower_bound=load_lower_bound(grid.n, b),
            crash_probability=grid.crash_probability(p, rng=rng),
            load_optimal=False,
            availability_optimal=False,
        )
    )

    # M-Grid.
    b = _max_b_mgrid(side)
    mgrid = MGrid(side, b)
    rows.append(
        Table2Row(
            system="M-Grid",
            n=mgrid.n,
            max_b=b,
            resilience=mgrid.min_transversal_size() - 1,
            load=mgrid.load(),
            load_lower_bound=load_lower_bound(mgrid.n, b),
            crash_probability=mgrid.crash_probability(p, rng=rng),
            load_optimal=True,
            availability_optimal=False,
        )
    )

    # RT(4, 3) at depth log4(n).
    depth = max(1, round(math.log(n, 4)))
    rt = RecursiveThreshold(4, 3, depth)
    b = rt.masking_bound()
    rows.append(
        Table2Row(
            system="RT(4,3)",
            n=rt.n,
            max_b=b,
            resilience=rt.min_transversal_size() - 1,
            load=rt.load(),
            load_lower_bound=load_lower_bound(rt.n, b),
            crash_probability=rt.crash_probability(p),
            load_optimal=False,
            availability_optimal=True,
        )
    )

    # boostFPP at the requested q, sized close to n.
    points = boost_q * boost_q + boost_q + 1
    b = max(1, (n // points - 1) // 4)
    boost = BoostedFPP(boost_q, b)
    rows.append(
        Table2Row(
            system="boostFPP",
            n=boost.n,
            max_b=b,
            resilience=boost.min_transversal_size() - 1,
            load=boost.load(),
            load_lower_bound=load_lower_bound(boost.n, b),
            crash_probability=boost.crash_probability(p),
            load_optimal=True,
            availability_optimal=False,
        )
    )

    # M-Path.
    b = _max_b_mpath(side)
    mpath = MPath(side, b)
    if p < 1.0 / 3.0:
        mpath_fp = mpath.crash_probability_upper_bound(p)
    else:
        mpath_fp = mpath.crash_probability(p, trials=100, rng=rng)
    rows.append(
        Table2Row(
            system="M-Path",
            n=mpath.n,
            max_b=b,
            resilience=mpath.min_transversal_size() - 1,
            load=mpath.load(),
            load_lower_bound=load_lower_bound(mpath.n, b),
            crash_probability=mpath_fp,
            load_optimal=True,
            availability_optimal=True,
        )
    )

    return rows


def availability_trend(
    system_name: str,
    sizes: list[int],
    p: float,
    *,
    rng: np.random.Generator | None = None,
    b_policy: str = "fixed-small",
) -> list[float]:
    """Return ``Fp`` across universe sizes for one Table 2 system.

    Used to check the asymptotic column of Table 2: the Grid and M-Grid
    trends increase towards 1, the others decrease towards 0 for ``p`` below
    their thresholds.  (For closed-form sweeps across decades of ``n`` —
    with power-law and exponential fits instead of raw trends — see
    :mod:`repro.analysis.asymptotics`.)

    Parameters
    ----------
    system_name:
        One of :data:`TABLE2_SYSTEMS`.
    sizes:
        Universe sizes (perfect squares where the construction needs them;
        RT uses the nearest power of 4, boostFPP its own natural sizes).
    p:
        Individual crash probability.
    rng:
        Randomness source for the Monte-Carlo systems (Grid, M-Grid,
        M-Path); closed-form systems ignore it.
    b_policy:
        ``"fixed-small"`` keeps ``b`` at the smallest interesting value
        (1 for most systems) so the trend isolates the effect of ``n``;
        ``"max"`` uses the largest maskable ``b`` at each size.

    Returns
    -------
    list[float]
        ``Fp`` per size, aligned with ``sizes``.

    Examples
    --------
    The Threshold family's availability improves with ``n`` (Condorcet):

    >>> trend = availability_trend("Threshold", [16, 64], 0.1)
    >>> [f"{value:.8f}" for value in trend]
    ['0.00050453', '0.00000000']

    RT(4, 3) decays as well (``p`` below its 0.2324 critical probability):

    >>> [f"{value:.8f}" for value in availability_trend("RT(4,3)", [16, 64], 0.1)]
    ['0.01528974', '0.00137423']
    """
    rng = ensure_rng(rng)
    values: list[float] = []
    for n in sizes:
        side = math.isqrt(n)
        if system_name == "Threshold":
            b = 1 if b_policy == "fixed-small" else _max_b_threshold(n)
            values.append(masking_threshold(n, b).crash_probability(p))
        elif system_name == "Grid":
            b = 1 if b_policy == "fixed-small" else _max_b_grid(side)
            values.append(MaskingGrid(side, b).crash_probability(p, rng=rng))
        elif system_name == "M-Grid":
            b = 1 if b_policy == "fixed-small" else _max_b_mgrid(side)
            values.append(MGrid(side, b).crash_probability(p, rng=rng))
        elif system_name == "RT(4,3)":
            depth = max(1, round(math.log(n, 4)))
            values.append(RecursiveThreshold(4, 3, depth).crash_probability(p))
        elif system_name == "boostFPP":
            points = 7  # q = 2
            b = max(1, (n // points - 1) // 4)
            values.append(BoostedFPP(2, b).crash_probability(p))
        elif system_name == "M-Path":
            b = 1 if b_policy == "fixed-small" else _max_b_mpath(side)
            values.append(MPath(side, b).crash_probability(p, trials=150, rng=rng))
        else:
            raise ConstructionError(f"unknown Table 2 system {system_name!r}")
    return values
