"""Empirical-vs-analytic comparison of the paper's measures.

The analytic side of the reproduction computes ``L(Q)`` by linear program
(Definition 3.8, :func:`repro.core.load.exact_load`) and ``Fp(Q)`` by exact
enumeration (Definition 3.10,
:func:`repro.core.availability.exact_failure_probability`).  This module
closes the loop with the *empirical* side: it runs the vectorised scenario
engine and checks that

* the measured busiest-server access frequency matches the induced load
  ``L_w(Q)`` of the strategy the clients used — and, when the clients use
  the LP's optimal strategy, matches ``L(Q)`` itself; and
* the measured operation availability under independent crashes matches
  ``1 - Fp(Q)``.

Both comparisons return structured results with the analytic value, the
expected value of the estimator, the measurement and the gaps, so tests and
benchmarks can assert tolerances and tables can print them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.availability import exact_failure_probability
from repro.core.load import exact_load
from repro.core.quorum_system import QuorumSystem
from repro.core.strategy import Strategy
from repro.exceptions import ComputationError
from repro.simulation.engine import resolve_strategy, run_scenario
from repro.simulation.faults import FaultInjector
from repro.simulation.scenarios import WorkloadScenario

__all__ = [
    "EmpiricalAvailabilityComparison",
    "EmpiricalLoadComparison",
    "empirical_availability_comparison",
    "empirical_load_comparison",
]


@dataclass(frozen=True)
class EmpiricalLoadComparison:
    """Measured ``L_w`` against the strategy's induced load and the LP's ``L(Q)``.

    Attributes
    ----------
    analytic_load:
        ``L(Q)`` from the exact linear program — the best any strategy can do.
    strategy_load:
        ``L_w(Q)``, the induced load of the strategy the workload actually
        used (equals ``analytic_load`` when that strategy is the LP optimum).
    empirical_load:
        The busiest server's measured access frequency over successful
        operations.
    operations:
        Number of operations in the measurement.
    """

    analytic_load: float
    strategy_load: float
    empirical_load: float
    operations: int

    @property
    def sampling_gap(self) -> float:
        """|measured − expected|: pure sampling noise of the estimator."""
        return abs(self.empirical_load - self.strategy_load)

    @property
    def optimality_gap(self) -> float:
        """``L_w(Q) − L(Q)`` ≥ 0: the price of the strategy used."""
        return self.strategy_load - self.analytic_load


@dataclass(frozen=True)
class EmpiricalAvailabilityComparison:
    """Measured availability against the exact crash probability ``Fp``.

    Attributes
    ----------
    analytic_failure_probability:
        ``Fp(Q)`` from exact enumeration.
    empirical_failure_rate:
        Fraction of operations that failed across all sampled crash
        configurations.
    trials:
        Number of independently-drawn crash configurations.
    operations_per_trial:
        Operations run under each configuration.
    """

    analytic_failure_probability: float
    empirical_failure_rate: float
    trials: int
    operations_per_trial: int

    @property
    def gap(self) -> float:
        """|measured − exact| failure probability."""
        return abs(self.empirical_failure_rate - self.analytic_failure_probability)


def empirical_load_comparison(
    system: QuorumSystem,
    *,
    b: int,
    num_operations: int = 2000,
    rng: np.random.Generator | None = None,
    strategy: Strategy | str | None = "optimal",
) -> EmpiricalLoadComparison:
    """Measure ``L_w`` on a fault-free workload and compare it with the LP.

    With the default ``strategy="optimal"`` the clients are driven by the LP's
    optimal strategy, so the measured busiest-server frequency estimates
    ``L(Q)`` itself; with ``"uniform"`` it estimates the uniform strategy's
    induced load, and ``optimality_gap`` quantifies what ignoring ``L(Q)``
    costs.
    """
    rng = rng if rng is not None else np.random.default_rng()
    resolved = resolve_strategy(system, strategy)
    analytic = exact_load(system).load
    expected = resolved.induced_system_load(system.universe)
    result = run_scenario(
        system,
        b=b,
        num_operations=num_operations,
        strategy=resolved,
        rng=rng,
    )
    return EmpiricalLoadComparison(
        analytic_load=float(analytic),
        strategy_load=float(expected),
        empirical_load=float(result.empirical_load),
        operations=num_operations,
    )


def empirical_availability_comparison(
    system: QuorumSystem,
    p: float,
    *,
    b: int,
    trials: int = 200,
    operations_per_trial: int = 20,
    rng: np.random.Generator | None = None,
    strategy: Strategy | str | None = None,
) -> EmpiricalAvailabilityComparison:
    """Measure availability under iid crashes and compare it with exact ``Fp``.

    Each trial draws one crash configuration from the independent-crash model
    of Definition 3.10 and runs a short workload under it; the aggregated
    failure rate estimates ``Fp(Q)`` because the engine's steering retry makes
    an operation fail exactly when every supported quorum is hit — the event
    ``crash(Q)`` whose probability ``Fp`` is.

    Note the estimator matches ``Fp`` only when the strategy supports every
    quorum (the default); a strategy with restricted support can only reach
    its own quorums, so its failure rate dominates ``Fp``.
    """
    if trials <= 0:
        raise ComputationError(f"trials must be positive, got {trials}")
    rng = rng if rng is not None else np.random.default_rng()
    resolved = resolve_strategy(system, strategy)
    analytic = exact_failure_probability(system, p).value
    injector = FaultInjector(system.universe, rng)
    failed = 0
    total = 0
    for _ in range(trials):
        configuration = injector.independent_crashes(p)
        result = run_scenario(
            system,
            b=b,
            num_operations=operations_per_trial,
            scenario=WorkloadScenario.from_fault_scenario(configuration, name="iid-crash"),
            strategy=resolved,
            rng=rng,
        )
        failed += result.failed_operations
        total += result.operations
    return EmpiricalAvailabilityComparison(
        analytic_failure_probability=float(analytic),
        empirical_failure_rate=failed / total,
        trials=trials,
        operations_per_trial=operations_per_trial,
    )
