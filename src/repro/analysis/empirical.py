"""Empirical-vs-analytic comparison of the paper's measures.

The analytic side of the reproduction computes ``L(Q)`` by linear program
(Definition 3.8, :func:`repro.core.load.exact_load`) and ``Fp(Q)`` by exact
enumeration (Definition 3.10,
:func:`repro.core.availability.exact_failure_probability`).  This module
closes the loop with the *empirical* side: it runs the vectorised scenario
engine and checks that

* the measured busiest-server access frequency matches the induced load
  ``L_w(Q)`` of the strategy the clients used — and, when the clients use
  the LP's optimal strategy, matches ``L(Q)`` itself; and
* the measured operation availability under independent crashes matches
  ``1 - Fp(Q)``.

Both comparisons return structured results with the analytic value, the
expected value of the estimator, the measurement and the gaps, so tests and
benchmarks can assert tolerances and tables can print them.

A third cross-check closes the loop between the two *protocol* paths:
:func:`synchronous_event_agreement` drives the same operation script through
the blocking synchronous client and through the event-driven state-machine
client at zero latency, and verifies they agree **operation for operation**
(success, value, timestamp, quorum and the real probe count) — the
synchronous layer really is the zero-latency special case of the event core.

Since the facade landed, the *engine*-level cross-check is a result-vs-result
comparison: :func:`engine_agreement` runs one
:class:`~repro.api.workloads.WorkloadSpec` through both engines via
:func:`repro.api.workloads.run` and diffs the two normalised
:class:`~repro.api.workloads.WorkloadReport` objects directly, and the
analytic reference values above come from the facade's measure dispatcher
(:func:`repro.api.measures.measure` with ``method="exact"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.quorum_system import QuorumSystem
from repro.core.rng import ensure_rng
from repro.core.strategy import Strategy
from repro.exceptions import ComputationError, InvalidParameterError
from repro.simulation.client import AsyncQuorumClient, QuorumClient, RetryPolicy
from repro.simulation.engine import resolve_strategy, run_scenario
from repro.simulation.events import EventNetwork, EventScheduler
from repro.simulation.faults import FaultInjector, FaultScenario
from repro.simulation.network import SynchronousNetwork
from repro.simulation.runner import build_replicas
from repro.simulation.scenarios import WorkloadScenario

if TYPE_CHECKING:  # circular at runtime: the facade imports this module
    from repro.api.workloads import WorkloadSpec

__all__ = [
    "EmpiricalAvailabilityComparison",
    "EmpiricalLoadComparison",
    "EngineAgreement",
    "ProtocolAgreement",
    "empirical_availability_comparison",
    "empirical_load_comparison",
    "engine_agreement",
    "synchronous_event_agreement",
]


@dataclass(frozen=True)
class EmpiricalLoadComparison:
    """Measured ``L_w`` against the strategy's induced load and the LP's ``L(Q)``.

    Attributes
    ----------
    analytic_load:
        ``L(Q)`` from the exact linear program — the best any strategy can do.
    strategy_load:
        ``L_w(Q)``, the induced load of the strategy the workload actually
        used (equals ``analytic_load`` when that strategy is the LP optimum).
    empirical_load:
        The busiest server's measured access frequency over successful
        operations.
    operations:
        Number of operations in the measurement.
    """

    analytic_load: float
    strategy_load: float
    empirical_load: float
    operations: int

    @property
    def sampling_gap(self) -> float:
        """|measured − expected|: pure sampling noise of the estimator."""
        return abs(self.empirical_load - self.strategy_load)

    @property
    def optimality_gap(self) -> float:
        """``L_w(Q) − L(Q)`` ≥ 0: the price of the strategy used."""
        return self.strategy_load - self.analytic_load


@dataclass(frozen=True)
class EmpiricalAvailabilityComparison:
    """Measured availability against the exact crash probability ``Fp``.

    Attributes
    ----------
    analytic_failure_probability:
        ``Fp(Q)`` from exact enumeration.
    empirical_failure_rate:
        Fraction of operations that failed across all sampled crash
        configurations.
    trials:
        Number of independently-drawn crash configurations.
    operations_per_trial:
        Operations run under each configuration.
    """

    analytic_failure_probability: float
    empirical_failure_rate: float
    trials: int
    operations_per_trial: int

    @property
    def gap(self) -> float:
        """|measured − exact| failure probability."""
        return abs(self.empirical_failure_rate - self.analytic_failure_probability)


@dataclass(frozen=True)
class ProtocolAgreement:
    """Operation-for-operation comparison of the two protocol paths.

    Attributes
    ----------
    operations:
        Length of the operation script both layers executed.
    mismatches:
        ``(index, field, synchronous_value, event_value)`` tuples for every
        per-operation divergence, plus a final ``("accounting", ...)`` entry
        when the per-server successful-access tallies differ.
    """

    operations: int
    mismatches: tuple = ()

    @property
    def ok(self) -> bool:
        """Whether the event-driven layer reproduced the synchronous one exactly."""
        return not self.mismatches


def synchronous_event_agreement(
    system: QuorumSystem,
    *,
    b: int,
    num_operations: int = 60,
    scenario: FaultScenario | None = None,
    byzantine_behaviour: str = "fabricate-timestamp",
    write_fraction: float = 0.5,
    max_attempts: int = 10,
    strategy: Strategy | str | None = None,
    seed: int = 0,
    allow_overload: bool = False,
) -> ProtocolAgreement:
    """Drive one operation script through both protocol layers and compare.

    The synchronous layer (blocking :class:`QuorumClient` over
    :class:`SynchronousNetwork`) and the event-driven layer
    (state-machine :class:`AsyncQuorumClient` over a **zero-latency**
    :class:`EventNetwork`) are given identical replicas, identical client
    rng streams and the same read/write script; both flavours share their
    quorum-selection code, and a zero-latency model draws no network
    randomness, so every operation must agree on ``(success, value,
    timestamp, quorum, attempts)`` — silence detection by immediate ``None``
    and silence detection by timeout are observationally identical.
    (``latency`` is excluded: timeouts advance the event clock.)

    Returns a :class:`ProtocolAgreement`; ``ok`` is the acceptance gate of
    the event-core PR and is asserted by ``tests/test_simulation_events.py``.
    """
    scenario = scenario if scenario is not None else FaultScenario.fault_free()
    resolved = resolve_strategy(system, strategy) if strategy is not None else None
    script_rng = np.random.default_rng(seed)
    script = [
        ("write", f"value-{index}")
        if script_rng.random() < write_fraction
        else ("read", None)
        for index in range(num_operations)
    ]

    def make_servers():
        return build_replicas(
            system,
            scenario.byzantine,
            byzantine_behaviour=byzantine_behaviour,
            rng=np.random.default_rng(seed + 1),
        )

    if not allow_overload and scenario.num_byzantine > b:
        raise ComputationError(
            f"scenario has {scenario.num_byzantine} Byzantine servers but b={b}; "
            "pass allow_overload=True to compare beyond the bound"
        )

    # --- synchronous layer.
    sync_client = QuorumClient(
        0,
        system,
        SynchronousNetwork(make_servers(), scenario),
        b=b,
        max_attempts=max_attempts,
        rng=np.random.default_rng(seed + 2),
        strategy=resolved,
    )
    sync_results = [
        sync_client.write(value) if kind == "write" else sync_client.read()
        for kind, value in script
    ]

    # --- event-driven layer at zero latency.
    scheduler = EventScheduler()
    network = EventNetwork(
        make_servers(), scenario, scheduler=scheduler,
        rng=np.random.default_rng(seed + 3),
    )
    event_client = AsyncQuorumClient(
        0,
        system,
        network,
        b=b,
        policy=RetryPolicy(max_attempts=max_attempts, request_timeout=1.0),
        rng=np.random.default_rng(seed + 2),
        strategy=resolved,
    )
    event_results = []
    for kind, value in script:
        if kind == "write":
            event_client.write(value, event_results.append)
        else:
            event_client.read(event_results.append)
        scheduler.run()

    mismatches = []
    for index, (sync_result, event_result) in enumerate(
        zip(sync_results, event_results)
    ):
        for field_name in ("success", "value", "timestamp", "quorum", "attempts"):
            sync_value = getattr(sync_result, field_name)
            event_value = getattr(event_result, field_name)
            if sync_value != event_value:
                mismatches.append((index, field_name, sync_value, event_value))
    if dict(sync_client.successful_access_counts) != dict(
        event_client.successful_access_counts
    ):
        mismatches.append(
            (
                -1,
                "accounting",
                dict(sync_client.successful_access_counts),
                dict(event_client.successful_access_counts),
            )
        )
    return ProtocolAgreement(
        operations=num_operations, mismatches=tuple(mismatches)
    )


@dataclass(frozen=True)
class EngineAgreement:
    """Result-vs-result comparison of the two workload engines.

    Since the facade normalises both engines into one
    :class:`~repro.api.workloads.WorkloadReport`, the cross-check reduces to
    comparing two reports: the experiment coordinates and the consistency
    verdict must agree exactly, the statistical fields (availability, load)
    must agree within the sampling tolerance of the shared spec.

    Attributes
    ----------
    vectorized / event:
        The two engines' reports for the same :class:`WorkloadSpec`.
    mismatched_fields:
        ``(field, vectorized_value, event_value)`` tuples for every exactly
        comparable field that diverged (schema keys, ``n``, ``b``,
        ``operations``, ``consistent``, ``consistency_violations``).
    availability_gap / load_gap:
        Absolute differences of the two statistical headline numbers.
    """

    vectorized: object
    event: object
    mismatched_fields: tuple = ()
    availability_gap: float = 0.0
    load_gap: float = 0.0

    def ok(self, *, availability_tol: float = 0.05, load_tol: float = 0.1) -> bool:
        """Whether the engines agree (exact fields + gaps within tolerance)."""
        return (
            not self.mismatched_fields
            and self.availability_gap <= availability_tol
            and self.load_gap <= load_tol
        )


def engine_agreement(spec: WorkloadSpec) -> EngineAgreement:
    """Run one :class:`~repro.api.workloads.WorkloadSpec` on both engines.

    The spec's operation count is rounded up to a multiple of its client
    count so both engines execute the same total (the event engine hands
    each client ``operations / clients`` operations).  Only untimed
    scenarios qualify — a timed scenario cannot run vectorised by
    construction.
    """
    from dataclasses import replace

    from repro.api.workloads import WorkloadSpec, run

    if not isinstance(spec, WorkloadSpec):
        raise ComputationError(
            f"engine_agreement takes a WorkloadSpec, got {type(spec).__name__}"
        )
    operations = spec.clients * -(-spec.operations // spec.clients)
    spec = replace(spec, operations=operations)
    vectorized = run(spec, engine="vectorized")
    event = run(spec, engine="event")

    mismatches = []
    vec_dict, event_dict = vectorized.to_dict(), event.to_dict()
    if set(vec_dict) != set(event_dict):
        mismatches.append(("schema", sorted(vec_dict), sorted(event_dict)))
    for field_name in ("n", "b", "operations", "consistent", "consistency_violations"):
        if vec_dict[field_name] != event_dict[field_name]:
            mismatches.append(
                (field_name, vec_dict[field_name], event_dict[field_name])
            )
    return EngineAgreement(
        vectorized=vectorized,
        event=event,
        mismatched_fields=tuple(mismatches),
        availability_gap=abs(vectorized.availability - event.availability),
        load_gap=abs(vectorized.empirical_load - event.empirical_load),
    )


def empirical_load_comparison(
    system: QuorumSystem,
    *,
    b: int,
    num_operations: int = 2000,
    rng: np.random.Generator | None = None,
    strategy: Strategy | str | None = "optimal",
) -> EmpiricalLoadComparison:
    """Measure ``L_w`` on a fault-free workload and compare it with the LP.

    With the default ``strategy="optimal"`` the clients are driven by the LP's
    optimal strategy, so the measured busiest-server frequency estimates
    ``L(Q)`` itself; with ``"uniform"`` it estimates the uniform strategy's
    induced load, and ``optimality_gap`` quantifies what ignoring ``L(Q)``
    costs.
    """
    from repro.api.measures import measure

    rng = ensure_rng(rng)
    resolved = resolve_strategy(system, strategy)
    analytic = measure(system, "load", method="exact").value
    expected = resolved.induced_system_load(system.universe)
    result = run_scenario(
        system,
        b=b,
        num_operations=num_operations,
        strategy=resolved,
        rng=rng,
    )
    return EmpiricalLoadComparison(
        analytic_load=float(analytic),
        strategy_load=float(expected),
        empirical_load=float(result.empirical_load),
        operations=num_operations,
    )


def empirical_availability_comparison(
    system: QuorumSystem,
    p: float,
    *,
    b: int,
    trials: int = 200,
    operations_per_trial: int = 20,
    rng: np.random.Generator | None = None,
    strategy: Strategy | str | None = None,
) -> EmpiricalAvailabilityComparison:
    """Measure availability under iid crashes and compare it with exact ``Fp``.

    Each trial draws one crash configuration from the independent-crash model
    of Definition 3.10 and runs a short workload under it; the aggregated
    failure rate estimates ``Fp(Q)`` because the engine's steering retry makes
    an operation fail exactly when every supported quorum is hit — the event
    ``crash(Q)`` whose probability ``Fp`` is.

    Note the estimator matches ``Fp`` only when the strategy supports every
    quorum (the default); a strategy with restricted support can only reach
    its own quorums, so its failure rate dominates ``Fp``.
    """
    from repro.api.measures import measure

    if trials <= 0:
        raise InvalidParameterError(f"trials must be positive, got {trials}")
    rng = ensure_rng(rng)
    resolved = resolve_strategy(system, strategy)
    analytic = measure(system, "fp", method="exact", p=p).value
    injector = FaultInjector(system.universe, rng)
    failed = 0
    total = 0
    for _ in range(trials):
        configuration = injector.independent_crashes(p)
        result = run_scenario(
            system,
            b=b,
            num_operations=operations_per_trial,
            scenario=WorkloadScenario.from_fault_scenario(configuration, name="iid-crash"),
            strategy=resolved,
            rng=rng,
        )
        failed += result.failed_operations
        total += result.operations
    return EmpiricalAvailabilityComparison(
        analytic_failure_probability=float(analytic),
        empirical_failure_rate=failed / total,
        trials=trials,
        operations_per_trial=operations_per_trial,
    )
