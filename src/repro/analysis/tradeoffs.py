"""The resilience/load trade-off of Section 8.

The paper closes by observing that optimal resilience and optimal load are
incompatible: since every quorum is a transversal-blocker, ``f <= c(Q)``, and
Theorem 4.1 gives ``c(Q) <= n L(Q)``, hence ``f <= n L(Q)``.  Systems with
low load therefore necessarily have low resilience and vice versa — the
impossibility that motivated the probabilistic quorum systems of [MRWW98].

This module evaluates both sides of the inequality for any construction and
produces the data the trade-off benchmark plots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bounds import resilience_upper_bound_from_load
from repro.core.load import best_known_load
from repro.core.quorum_system import QuorumSystem

__all__ = ["TradeoffPoint", "tradeoff_point", "verify_tradeoff"]


@dataclass(frozen=True)
class TradeoffPoint:
    """One construction's position in the (load, resilience) plane.

    Attributes
    ----------
    name:
        Construction name.
    n:
        Universe size.
    load:
        The construction's load.
    resilience:
        Its resilience ``f``.
    resilience_bound:
        The Section 8 bound ``n * load``; ``resilience`` must not exceed it.
    slack:
        ``resilience_bound - resilience`` (non-negative when the bound holds).
    """

    name: str
    n: int
    load: float
    resilience: int
    resilience_bound: float
    slack: float


def tradeoff_point(system: QuorumSystem) -> TradeoffPoint:
    """Return the trade-off data point for ``system``.

    The load comes from :func:`~repro.core.load.best_known_load` (closed
    form when the construction has one, else the fair formula, else the
    LP), the resilience from ``MT(Q) - 1``, and the bound is Section 8's
    ``f <= n L(Q)``.

    Examples
    --------
    The Figure 1 instance M-Grid(7, 3) is fair with quorums of 24 of the 49
    servers, so its load is ``24/49``; its resilience ``f = 5`` sits well
    under the ``n L = 24`` ceiling:

    >>> from repro.constructions.mgrid import MGrid
    >>> point = tradeoff_point(MGrid(7, 3))
    >>> round(point.load, 4), point.resilience, round(point.resilience_bound, 1)
    (0.4898, 5, 24.0)
    >>> point.slack > 0
    True
    """
    load = best_known_load(system).load
    resilience = system.min_transversal_size() - 1
    bound = resilience_upper_bound_from_load(system.n, load)
    return TradeoffPoint(
        name=system.name,
        n=system.n,
        load=load,
        resilience=resilience,
        resilience_bound=bound,
        slack=bound - resilience,
    )


def verify_tradeoff(system: QuorumSystem, *, tolerance: float = 1e-9) -> bool:
    """Return ``True`` when ``f <= n L(Q)`` holds for ``system``.

    This is the Section 8 impossibility every quorum system must satisfy —
    a ``False`` here means a construction (or a load computation) is broken,
    which is why the property tests sweep it across the whole zoo.

    Examples
    --------
    >>> from repro.constructions.threshold import majority
    >>> verify_tradeoff(majority(9))
    True
    """
    point = tradeoff_point(system)
    return point.resilience <= point.resilience_bound + tolerance
