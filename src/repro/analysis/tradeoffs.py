"""The resilience/load trade-off of Section 8.

The paper closes by observing that optimal resilience and optimal load are
incompatible: since every quorum is a transversal-blocker, ``f <= c(Q)``, and
Theorem 4.1 gives ``c(Q) <= n L(Q)``, hence ``f <= n L(Q)``.  Systems with
low load therefore necessarily have low resilience and vice versa — the
impossibility that motivated the probabilistic quorum systems of [MRWW98].

This module evaluates both sides of the inequality for any construction and
produces the data the trade-off benchmark plots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bounds import resilience_upper_bound_from_load
from repro.core.load import best_known_load
from repro.core.quorum_system import QuorumSystem

__all__ = ["TradeoffPoint", "tradeoff_point", "verify_tradeoff"]


@dataclass(frozen=True)
class TradeoffPoint:
    """One construction's position in the (load, resilience) plane.

    Attributes
    ----------
    name:
        Construction name.
    n:
        Universe size.
    load:
        The construction's load.
    resilience:
        Its resilience ``f``.
    resilience_bound:
        The Section 8 bound ``n * load``; ``resilience`` must not exceed it.
    slack:
        ``resilience_bound - resilience`` (non-negative when the bound holds).
    """

    name: str
    n: int
    load: float
    resilience: int
    resilience_bound: float
    slack: float


def tradeoff_point(system: QuorumSystem) -> TradeoffPoint:
    """Return the trade-off data point for ``system``."""
    load = best_known_load(system).load
    resilience = system.min_transversal_size() - 1
    bound = resilience_upper_bound_from_load(system.n, load)
    return TradeoffPoint(
        name=system.name,
        n=system.n,
        load=load,
        resilience=resilience,
        resilience_bound=bound,
        slack=bound - resilience,
    )


def verify_tradeoff(system: QuorumSystem, *, tolerance: float = 1e-9) -> bool:
    """Return ``True`` when ``f <= n L(Q)`` holds for ``system``."""
    point = tradeoff_point(system)
    return point.resilience <= point.resilience_bound + tolerance
