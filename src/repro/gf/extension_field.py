"""The finite field GF(q) for prime powers ``q = p^r``.

Elements are represented as integers in ``range(q)``: the integer's base-``p``
digits are the coefficients of the representing polynomial, lowest degree
first.  Multiplication reduces modulo a fixed monic irreducible polynomial of
degree ``r`` found by :func:`repro.gf.polynomial.find_irreducible`, so the
same order ``q`` always yields the same field representation.

For ``r = 1`` the class degenerates to GF(p) with no polynomial overhead.
"""

from __future__ import annotations

from repro.exceptions import FieldError
from repro.gf import polynomial as poly
from repro.gf.prime_field import PrimeField, factor_prime_power

__all__ = ["GaloisField"]


class GaloisField:
    """The finite field with ``q = p^r`` elements.

    Parameters
    ----------
    order:
        The field order.  Must be a prime power.

    Examples
    --------
    >>> field = GaloisField(4)
    >>> sorted(field.elements())
    [0, 1, 2, 3]
    >>> field.mul(2, 3)   # x * (x + 1) = x^2 + x = 1  (mod x^2 + x + 1)
    1
    """

    def __init__(self, order: int):
        p, r = factor_prime_power(order)
        self.order = order
        self.characteristic = p
        self.extension_degree = r
        self._base = PrimeField(p)
        if r == 1:
            self._modulus: poly.Poly | None = None
        else:
            self._modulus = poly.find_irreducible(self._base, r)
        self._inverse_cache: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Encoding between integers and coefficient polynomials.
    # ------------------------------------------------------------------
    def _to_poly(self, value: int) -> poly.Poly:
        if not 0 <= value < self.order:
            raise FieldError(f"{value} is not an element of GF({self.order})")
        digits = []
        remaining = value
        while remaining:
            digits.append(remaining % self.characteristic)
            remaining //= self.characteristic
        return tuple(digits)

    def _from_poly(self, polynomial: poly.Poly) -> int:
        value = 0
        for coefficient in reversed(polynomial):
            value = value * self.characteristic + coefficient
        return value

    # ------------------------------------------------------------------
    # Field operations.
    # ------------------------------------------------------------------
    def elements(self) -> range:
        """Return all field elements (as their integer encodings)."""
        return range(self.order)

    def add(self, left: int, right: int) -> int:
        """Return ``left + right`` in GF(q)."""
        if self.extension_degree == 1:
            return self._base.add(left, right)
        return self._from_poly(poly.add(self._base, self._to_poly(left), self._to_poly(right)))

    def sub(self, left: int, right: int) -> int:
        """Return ``left - right`` in GF(q)."""
        if self.extension_degree == 1:
            return self._base.sub(left, right)
        return self._from_poly(poly.sub(self._base, self._to_poly(left), self._to_poly(right)))

    def neg(self, value: int) -> int:
        """Return ``-value`` in GF(q)."""
        return self.sub(0, value)

    def mul(self, left: int, right: int) -> int:
        """Return ``left * right`` in GF(q)."""
        if self.extension_degree == 1:
            return self._base.mul(left, right)
        product = poly.mul(self._base, self._to_poly(left), self._to_poly(right))
        return self._from_poly(poly.mod(self._base, product, self._modulus))

    def pow(self, base: int, exponent: int) -> int:
        """Return ``base ** exponent`` in GF(q) by square-and-multiply."""
        if exponent < 0:
            return self.pow(self.inverse(base), -exponent)
        result = 1
        current = base
        while exponent:
            if exponent & 1:
                result = self.mul(result, current)
            current = self.mul(current, current)
            exponent >>= 1
        return result

    def inverse(self, value: int) -> int:
        """Return the multiplicative inverse of ``value`` in GF(q).

        Uses the identity ``a^(q-2) = a^(-1)`` in the multiplicative group of
        GF(q); results are cached because projective-plane construction
        requests the same few inverses repeatedly.

        Raises
        ------
        FieldError
            On division by zero.
        """
        if value == 0:
            raise FieldError("zero has no multiplicative inverse")
        cached = self._inverse_cache.get(value)
        if cached is not None:
            return cached
        inverse = self.pow(value, self.order - 2)
        self._inverse_cache[value] = inverse
        return inverse

    def div(self, left: int, right: int) -> int:
        """Return ``left / right`` in GF(q)."""
        return self.mul(left, self.inverse(right))

    def __repr__(self) -> str:
        return f"GaloisField({self.order})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GaloisField):
            return NotImplemented
        return self.order == other.order

    def __hash__(self) -> int:
        return hash(("GaloisField", self.order))
