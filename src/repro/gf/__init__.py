"""Finite-field arithmetic and projective planes.

This subpackage is the algebraic substrate for the boostFPP construction of
Section 6: GF(p), GF(p^r) and the classical projective plane PG(2, q).
"""

from repro.gf.extension_field import GaloisField
from repro.gf.prime_field import PrimeField, factor_prime_power, is_prime
from repro.gf.projective_plane import ProjectivePlane, projective_plane

__all__ = [
    "GaloisField",
    "PrimeField",
    "ProjectivePlane",
    "factor_prime_power",
    "is_prime",
    "projective_plane",
]
