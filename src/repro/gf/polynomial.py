"""Polynomial arithmetic over GF(p).

Polynomials are represented as tuples of coefficients in *ascending* degree
order, e.g. ``(1, 0, 2)`` is ``1 + 2x^2``.  The representation is always
*trimmed*: the last coefficient is non-zero (the zero polynomial is the empty
tuple).  These helpers exist to construct the extension fields GF(p^r) needed
by the finite-projective-plane component of the boostFPP system.
"""

from __future__ import annotations

import itertools

from repro.exceptions import FieldError
from repro.gf.prime_field import PrimeField

__all__ = [
    "trim",
    "degree",
    "add",
    "sub",
    "scale",
    "mul",
    "divmod_poly",
    "mod",
    "is_irreducible",
    "find_irreducible",
]

Poly = tuple[int, ...]


def trim(coefficients: tuple[int, ...] | list[int]) -> Poly:
    """Return ``coefficients`` with trailing zeros removed."""
    coefficients = list(coefficients)
    while coefficients and coefficients[-1] == 0:
        coefficients.pop()
    return tuple(coefficients)


def degree(polynomial: Poly) -> int:
    """Return the degree of ``polynomial`` (-1 for the zero polynomial)."""
    return len(polynomial) - 1


def add(field: PrimeField, left: Poly, right: Poly) -> Poly:
    """Return ``left + right`` over GF(p)."""
    length = max(len(left), len(right))
    padded_left = list(left) + [0] * (length - len(left))
    padded_right = list(right) + [0] * (length - len(right))
    return trim([field.add(a, b) for a, b in zip(padded_left, padded_right)])


def sub(field: PrimeField, left: Poly, right: Poly) -> Poly:
    """Return ``left - right`` over GF(p)."""
    length = max(len(left), len(right))
    padded_left = list(left) + [0] * (length - len(left))
    padded_right = list(right) + [0] * (length - len(right))
    return trim([field.sub(a, b) for a, b in zip(padded_left, padded_right)])


def scale(field: PrimeField, polynomial: Poly, scalar: int) -> Poly:
    """Return ``scalar * polynomial`` over GF(p)."""
    return trim([field.mul(coefficient, scalar) for coefficient in polynomial])


def mul(field: PrimeField, left: Poly, right: Poly) -> Poly:
    """Return ``left * right`` over GF(p)."""
    if not left or not right:
        return ()
    product = [0] * (len(left) + len(right) - 1)
    for i, a in enumerate(left):
        if a == 0:
            continue
        for j, b in enumerate(right):
            product[i + j] = field.add(product[i + j], field.mul(a, b))
    return trim(product)


def divmod_poly(field: PrimeField, dividend: Poly, divisor: Poly) -> tuple[Poly, Poly]:
    """Return the quotient and remainder of ``dividend / divisor`` over GF(p)."""
    divisor = trim(divisor)
    if not divisor:
        raise FieldError("polynomial division by zero")
    remainder = list(dividend)
    quotient = [0] * max(len(dividend) - len(divisor) + 1, 1)
    divisor_lead_inverse = field.inverse(divisor[-1])
    while len(trim(remainder)) >= len(divisor):
        remainder = list(trim(remainder))
        shift = len(remainder) - len(divisor)
        factor = field.mul(remainder[-1], divisor_lead_inverse)
        quotient[shift] = factor
        for index, coefficient in enumerate(divisor):
            remainder[shift + index] = field.sub(
                remainder[shift + index], field.mul(factor, coefficient)
            )
    return trim(quotient), trim(remainder)


def mod(field: PrimeField, dividend: Poly, divisor: Poly) -> Poly:
    """Return ``dividend`` reduced modulo ``divisor`` over GF(p)."""
    _, remainder = divmod_poly(field, dividend, divisor)
    return remainder


def _monic_polynomials(field: PrimeField, target_degree: int):
    """Yield all monic polynomials of exactly ``target_degree`` over GF(p)."""
    for lower_coefficients in itertools.product(field.elements(), repeat=target_degree):
        yield trim(list(lower_coefficients) + [1])


def is_irreducible(field: PrimeField, polynomial: Poly) -> bool:
    """Return ``True`` when ``polynomial`` is irreducible over GF(p).

    Uses trial division by every monic polynomial of degree at most half the
    degree of ``polynomial``.  This is exponential in the degree but the
    library only ever needs degrees up to 4 or so (projective planes of
    modest prime-power order), for which it is instantaneous.
    """
    polynomial = trim(polynomial)
    if degree(polynomial) <= 0:
        return False
    if degree(polynomial) == 1:
        return True
    for divisor_degree in range(1, degree(polynomial) // 2 + 1):
        for candidate in _monic_polynomials(field, divisor_degree):
            _, remainder = divmod_poly(field, polynomial, candidate)
            if not remainder:
                return False
    return True


def find_irreducible(field: PrimeField, target_degree: int) -> Poly:
    """Return a monic irreducible polynomial of degree ``target_degree`` over GF(p).

    Irreducible polynomials of every degree exist over every finite field, so
    the deterministic scan below always terminates.
    """
    if target_degree < 1:
        raise FieldError(f"degree must be >= 1, got {target_degree}")
    for candidate in _monic_polynomials(field, target_degree):
        if degree(candidate) == target_degree and is_irreducible(field, candidate):
            return candidate
    raise FieldError(
        f"no irreducible polynomial of degree {target_degree} over GF({field.p}) found"
    )
