"""Finite projective planes PG(2, q).

A projective plane of order ``q`` has ``q^2 + q + 1`` points and the same
number of lines; every line contains ``q + 1`` points, every point lies on
``q + 1`` lines, every two lines meet in exactly one point, and every two
points lie on exactly one line.  The lines therefore form a *regular* quorum
system with optimal load ``≈ 1/sqrt(n)`` — exactly the outer component the
boostFPP construction of Section 6 needs.

This module builds the classical algebraic plane over GF(q): points and lines
are the one-dimensional subspaces of GF(q)^3, represented by their normalised
homogeneous coordinates, and a point lies on a line when the dot product of
their coordinate vectors vanishes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConstructionError, FieldError
from repro.gf.extension_field import GaloisField

__all__ = ["ProjectivePlane", "projective_plane"]

Vector = tuple[int, int, int]


def _normalised_points(field: GaloisField) -> list[Vector]:
    """Return one representative per projective point, in a canonical order.

    Representatives are normalised so that the first non-zero coordinate is 1:
    ``(1, y, z)``, ``(0, 1, z)`` and ``(0, 0, 1)``.
    """
    q = field.order
    points: list[Vector] = [(1, y, z) for y in range(q) for z in range(q)]
    points.extend((0, 1, z) for z in range(q))
    points.append((0, 0, 1))
    return points


@dataclass(frozen=True)
class ProjectivePlane:
    """A finite projective plane of order ``q``.

    Attributes
    ----------
    order:
        The order ``q``.
    points:
        The ``q^2 + q + 1`` points (normalised homogeneous coordinates).
    lines:
        For each line, the frozenset of indices (into ``points``) of the
        points incident to it.
    """

    order: int
    points: tuple[Vector, ...]
    lines: tuple[frozenset, ...]

    @property
    def num_points(self) -> int:
        """The number of points, ``q^2 + q + 1``."""
        return len(self.points)

    @property
    def line_size(self) -> int:
        """The number of points on each line, ``q + 1``."""
        return self.order + 1

    def point_index(self, point: Vector) -> int:
        """Return the index of a (normalised) point."""
        return self.points.index(point)

    def lines_through(self, point_index: int) -> list[int]:
        """Return the indices of all lines through the given point."""
        return [index for index, line in enumerate(self.lines) if point_index in line]

    def verify(self) -> None:
        """Check the projective-plane axioms; raise ``ConstructionError`` otherwise."""
        q = self.order
        expected = q * q + q + 1
        if len(self.points) != expected or len(self.lines) != expected:
            raise ConstructionError(
                f"PG(2,{q}) must have {expected} points and lines, got "
                f"{len(self.points)} points / {len(self.lines)} lines"
            )
        for line in self.lines:
            if len(line) != q + 1:
                raise ConstructionError(f"a line of PG(2,{q}) must have {q + 1} points")
        for i, first in enumerate(self.lines):
            for second in self.lines[i + 1:]:
                if len(first & second) != 1:
                    raise ConstructionError(
                        f"two distinct lines of PG(2,{q}) must meet in exactly one point"
                    )


def projective_plane(q: int) -> ProjectivePlane:
    """Construct the algebraic projective plane PG(2, q).

    Parameters
    ----------
    q:
        The order; must be a prime power (GF(q) must exist).

    Raises
    ------
    ConstructionError
        If ``q`` is not a prime power.
    """
    try:
        field = GaloisField(q)
    except FieldError as error:
        raise ConstructionError(
            f"projective plane of order {q} requires q to be a prime power"
        ) from error

    points = _normalised_points(field)
    point_order = {point: index for index, point in enumerate(points)}

    def dot(left: Vector, right: Vector) -> int:
        total = 0
        for a, b in zip(left, right):
            total = field.add(total, field.mul(a, b))
        return total

    # Lines have the same normalised coordinate representatives as points.
    lines: list[frozenset] = []
    for line_vector in points:
        incident = frozenset(
            point_order[point] for point in points if dot(line_vector, point) == 0
        )
        lines.append(incident)

    plane = ProjectivePlane(order=q, points=tuple(points), lines=tuple(lines))
    return plane
