"""Arithmetic in the prime field GF(p).

The finite projective plane construction of Section 6 needs arithmetic over
GF(q) for prime powers ``q = p^r``.  This module provides the base case: the
field of integers modulo a prime.  Extension fields are built on top of it in
:mod:`repro.gf.extension_field`.
"""

from __future__ import annotations

from repro.exceptions import FieldError

__all__ = ["is_prime", "smallest_prime_factor", "factor_prime_power", "PrimeField"]


def is_prime(value: int) -> bool:
    """Return ``True`` when ``value`` is a prime number (deterministic trial division)."""
    if value < 2:
        return False
    if value < 4:
        return True
    if value % 2 == 0:
        return False
    divisor = 3
    while divisor * divisor <= value:
        if value % divisor == 0:
            return False
        divisor += 2
    return True


def smallest_prime_factor(value: int) -> int:
    """Return the smallest prime factor of ``value`` (``value >= 2``)."""
    if value < 2:
        raise FieldError(f"no prime factor for {value}")
    if value % 2 == 0:
        return 2
    divisor = 3
    while divisor * divisor <= value:
        if value % divisor == 0:
            return divisor
        divisor += 2
    return value


def factor_prime_power(value: int) -> tuple[int, int]:
    """Return ``(p, r)`` such that ``value = p^r`` with ``p`` prime.

    Raises
    ------
    FieldError
        If ``value`` is not a prime power (finite fields, and hence the
        algebraic projective planes used here, exist exactly for prime-power
        orders).
    """
    if value < 2:
        raise FieldError(f"{value} is not a prime power")
    p = smallest_prime_factor(value)
    remaining = value
    exponent = 0
    while remaining % p == 0:
        remaining //= p
        exponent += 1
    if remaining != 1:
        raise FieldError(f"{value} is not a prime power")
    return p, exponent


class PrimeField:
    """The field GF(p) of integers modulo a prime ``p``.

    Elements are represented as plain integers in ``range(p)``.

    Examples
    --------
    >>> field = PrimeField(7)
    >>> field.mul(3, 5)
    1
    >>> field.inverse(3)
    5
    """

    def __init__(self, p: int):
        if not is_prime(p):
            raise FieldError(f"{p} is not prime; GF({p}) is not a field")
        self.p = p

    @property
    def order(self) -> int:
        """The number of field elements."""
        return self.p

    def elements(self) -> range:
        """Return all field elements."""
        return range(self.p)

    def normalise(self, value: int) -> int:
        """Return ``value`` reduced into ``range(p)``."""
        return value % self.p

    def add(self, left: int, right: int) -> int:
        """Return ``left + right`` in GF(p)."""
        return (left + right) % self.p

    def sub(self, left: int, right: int) -> int:
        """Return ``left - right`` in GF(p)."""
        return (left - right) % self.p

    def neg(self, value: int) -> int:
        """Return ``-value`` in GF(p)."""
        return (-value) % self.p

    def mul(self, left: int, right: int) -> int:
        """Return ``left * right`` in GF(p)."""
        return (left * right) % self.p

    def inverse(self, value: int) -> int:
        """Return the multiplicative inverse of ``value``.

        Raises
        ------
        FieldError
            On division by zero.
        """
        value %= self.p
        if value == 0:
            raise FieldError("zero has no multiplicative inverse")
        return pow(value, self.p - 2, self.p)

    def div(self, left: int, right: int) -> int:
        """Return ``left / right`` in GF(p)."""
        return self.mul(left, self.inverse(right))

    def pow(self, base: int, exponent: int) -> int:
        """Return ``base ** exponent`` in GF(p)."""
        if exponent < 0:
            return pow(self.inverse(base), -exponent, self.p)
        return pow(base % self.p, exponent, self.p)

    def __repr__(self) -> str:
        return f"PrimeField({self.p})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PrimeField):
            return NotImplemented
        return self.p == other.p

    def __hash__(self) -> int:
        return hash(("PrimeField", self.p))
