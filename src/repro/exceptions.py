"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single type at API boundaries while still being able to
distinguish configuration problems from mathematical infeasibility.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class InvalidQuorumSystemError(ReproError):
    """A set system does not satisfy the quorum-system requirements.

    Raised when two quorums fail to intersect (Definition 3.1 of the paper),
    when a quorum is empty, or when a quorum contains elements outside the
    declared universe.
    """


class MaskingViolationError(ReproError):
    """A quorum system does not satisfy the ``b``-masking requirements.

    Raised when the consistency requirement ``|Q1 ∩ Q2| >= 2b + 1``
    (Definition 3.5) or the resilience requirement ``f >= b`` fails for a
    requested masking parameter ``b``.
    """


class ConstructionError(ReproError):
    """A construction was requested with infeasible parameters.

    Examples: an M-Grid with ``b > (sqrt(n) - 1)/2``, a threshold system
    whose threshold exceeds the universe size, or a finite projective plane
    of non-prime-power order.
    """


class StrategyError(ReproError):
    """An access strategy is malformed.

    Raised when probabilities are negative, do not sum to one, or assign
    weight to sets that are not quorums of the system.
    """


class ComputationError(ReproError):
    """A measure could not be computed with the requested method.

    Raised, for example, when an exact computation is requested for a system
    that is too large to enumerate, or when a linear program fails to solve.
    """


class InvalidParameterError(ComputationError, ValueError):
    """A user-supplied argument is out of its valid range.

    The single type for argument validation across the library: bad crash
    probabilities (``p`` outside ``[0, 1]``), non-positive trial or sample
    counts, malformed budgets.  It subclasses both
    :class:`ComputationError` (which the constructions historically raised
    for these errors) and :class:`ValueError` (which the core modules
    raised), so callers written against either convention keep working.
    The registry-wide contract is asserted in ``tests/test_api.py``.
    """


class SimulationError(ReproError):
    """The replicated-service simulation was configured inconsistently.

    Raised when the number of injected Byzantine faults exceeds the masking
    bound declared for the protocol, when a client is asked to operate over
    an unknown server, or when the simulated protocol detects an internal
    invariant violation.
    """


class ConformanceError(ReproError):
    """An empirical metric escaped the paper's proven envelope.

    Raised by :meth:`repro.analysis.conformance.ConformanceCheck.require`
    when an observed quantity (empirical load, stale-read rate, measured
    availability) violates the corresponding bound — the LP load bound of
    Definition 3.8, the zero-violation guarantee of Lemma 3.6, or the
    ``Fp`` confidence envelope of Definition 3.10 — beyond the declared
    statistical slack.  In a correct implementation this should only ever
    fire on deliberately overloaded negative tests.
    """


class ServiceError(ReproError):
    """The networked replica service was misconfigured or misbehaved.

    Raised when a replica cannot be spawned or addressed, a cluster fails to
    become ready within its deadline, or a live-service operation hits a
    condition the deployment does not allow (e.g. more Byzantine replicas
    than the configured masking parameter).
    """


class WireProtocolError(ServiceError):
    """A wire frame violated the length-prefixed JSON frame protocol.

    Raised by the :mod:`repro.service.wire` codec for oversized, truncated
    or malformed frames and for payloads that do not decode into a known
    frame type.  Replicas answer such frames with an ``ERROR`` frame and
    close the connection instead of crashing or hanging.
    """


class StorageError(ReproError):
    """Durable replica storage failed or was handed corrupt inputs.

    Raised by :mod:`repro.storage` for I/O failures while journalling or
    snapshotting, for values that cannot be serialised into a log record,
    and for storage directories that cannot be created or opened.  *Not*
    raised for corruption found during recovery: a torn, truncated or
    bit-flipped log tail is expected crash damage, and recovery silently
    discards the corrupt suffix (reporting it via
    :class:`repro.storage.RecoveryResult`) instead of failing.
    """


class FieldError(ReproError):
    """Finite-field arithmetic was requested with invalid parameters.

    Raised for non-prime characteristics, reducible modulus polynomials, or
    division by zero inside GF(p^r).
    """
