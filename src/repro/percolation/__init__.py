"""Site percolation on the triangulated grid (substrate for the M-Path system)."""

from repro.percolation.critical import (
    CriticalEstimate,
    estimate_critical_probability,
    fixed_point_of_reliability,
)
from repro.percolation.lattice import TriangularGrid
from repro.percolation.site import (
    CrossingEstimate,
    count_disjoint_crossings,
    estimate_crossing_probability,
    has_open_crossing,
    sample_open_vertices,
)

__all__ = [
    "CriticalEstimate",
    "CrossingEstimate",
    "TriangularGrid",
    "count_disjoint_crossings",
    "estimate_critical_probability",
    "estimate_crossing_probability",
    "fixed_point_of_reliability",
    "has_open_crossing",
    "sample_open_vertices",
]
