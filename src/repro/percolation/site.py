"""Site percolation on the triangulated grid.

Each vertex of a :class:`~repro.percolation.lattice.TriangularGrid` is
*closed* (crashed) independently with probability ``p`` and *open* (alive)
otherwise.  The events the M-Path analysis cares about are

* ``LR``   — an open left-right crossing exists,
* ``LR_k`` — at least ``k`` vertex-disjoint open left-right crossings exist
  (the interior ``I_{k-1}(LR)`` of Definition B.2), and the analogous top-
  bottom events.

Crossing existence is decided with a breadth-first search; disjoint-crossing
counts use the max-flow formulation of Menger's theorem from
:mod:`repro.graphs.disjoint_paths`.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Collection
from dataclasses import dataclass

import numpy as np

from repro.core.rng import ensure_rng
from repro.exceptions import ComputationError, InvalidParameterError
from repro.graphs.disjoint_paths import max_vertex_disjoint_paths
from repro.percolation.lattice import TriangularGrid, Vertex

__all__ = [
    "sample_open_vertices",
    "has_open_crossing",
    "count_disjoint_crossings",
    "CrossingEstimate",
    "estimate_crossing_probability",
]


def sample_open_vertices(
    grid: TriangularGrid, p_closed: float, rng: np.random.Generator
) -> set[Vertex]:
    """Return the set of open (alive) vertices for one percolation sample.

    Each vertex is closed independently with probability ``p_closed``.
    """
    if not 0.0 <= p_closed <= 1.0:
        raise InvalidParameterError(f"closure probability must lie in [0, 1], got {p_closed}")
    draws = rng.random((grid.side, grid.side))
    open_vertices: set[Vertex] = set()
    for i in range(1, grid.side + 1):
        for j in range(1, grid.side + 1):
            if draws[i - 1, j - 1] >= p_closed:
                open_vertices.add((i, j))
    return open_vertices


def has_open_crossing(
    grid: TriangularGrid,
    open_vertices: Collection[Vertex],
    *,
    direction: str = "lr",
) -> bool:
    """Return ``True`` when an open crossing exists in the given direction.

    ``direction`` is ``"lr"`` (left to right) or ``"tb"`` (top to bottom).
    Uses a breadth-first search restricted to open vertices.
    """
    open_set = set(open_vertices)
    if direction == "lr":
        sources = [vertex for vertex in grid.left_side() if vertex in open_set]
        targets = {vertex for vertex in grid.right_side() if vertex in open_set}
    elif direction == "tb":
        sources = [vertex for vertex in grid.bottom_side() if vertex in open_set]
        targets = {vertex for vertex in grid.top_side() if vertex in open_set}
    else:
        raise ComputationError(f"unknown crossing direction {direction!r}")
    if not sources or not targets:
        return False

    visited = set(sources)
    queue = deque(sources)
    while queue:
        vertex = queue.popleft()
        if vertex in targets:
            return True
        for neighbour in grid.neighbours(vertex):
            if neighbour in open_set and neighbour not in visited:
                visited.add(neighbour)
                queue.append(neighbour)
    return False


def count_disjoint_crossings(
    grid: TriangularGrid,
    open_vertices: Collection[Vertex],
    *,
    direction: str = "lr",
) -> int:
    """Return the maximum number of vertex-disjoint open crossings.

    This is the quantity that decides whether an M-Path quorum survives: a
    quorum needs ``sqrt(2b+1)`` disjoint LR crossings and as many TB
    crossings.
    """
    if direction == "lr":
        sources, sinks = grid.left_side(), grid.right_side()
    elif direction == "tb":
        sources, sinks = grid.bottom_side(), grid.top_side()
    else:
        raise ComputationError(f"unknown crossing direction {direction!r}")
    return max_vertex_disjoint_paths(
        set(open_vertices), grid.neighbours, sources, sinks
    )


@dataclass(frozen=True)
class CrossingEstimate:
    """Monte-Carlo estimate of a crossing probability.

    Attributes
    ----------
    probability:
        Estimated probability of the crossing event.
    std_error:
        Standard error of the estimate.
    trials:
        Number of samples used.
    """

    probability: float
    std_error: float
    trials: int


def estimate_crossing_probability(
    grid: TriangularGrid,
    p_closed: float,
    *,
    trials: int = 500,
    min_disjoint: int = 1,
    direction: str = "lr",
    rng: np.random.Generator | None = None,
) -> CrossingEstimate:
    """Estimate ``P(at least min_disjoint open crossings exist)``.

    For ``min_disjoint == 1`` a BFS decides each sample; otherwise a max-flow
    computation counts disjoint crossings.
    """
    if trials <= 0:
        raise InvalidParameterError(f"trials must be positive, got {trials}")
    rng = ensure_rng(rng)
    successes = 0
    for _ in range(trials):
        open_vertices = sample_open_vertices(grid, p_closed, rng)
        if min_disjoint <= 1:
            if has_open_crossing(grid, open_vertices, direction=direction):
                successes += 1
        else:
            count = count_disjoint_crossings(grid, open_vertices, direction=direction)
            if count >= min_disjoint:
                successes += 1
    probability = successes / trials
    std_error = float(np.sqrt(max(probability * (1 - probability), 1e-12) / trials))
    return CrossingEstimate(probability=probability, std_error=std_error, trials=trials)
