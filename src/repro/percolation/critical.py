"""Estimation of the site-percolation critical probability.

Kesten's theorem gives ``p_c = 1/2`` for site percolation on the triangular
lattice, which is the fact behind M-Path's availability for every
``p < 1/2`` (Theorem B.1 / Proposition 7.3).  This module estimates the
finite-size crossing point numerically so the reproduction can *demonstrate*
the theorem's shape rather than assume it, and it also exposes the analytic
critical point of the recursive-threshold recurrence (Proposition 5.6).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.core.rng import ensure_rng
from repro.exceptions import ComputationError
from repro.percolation.lattice import TriangularGrid
from repro.percolation.site import estimate_crossing_probability

__all__ = [
    "CriticalEstimate",
    "estimate_critical_probability",
    "fixed_point_of_reliability",
]


@dataclass(frozen=True)
class CriticalEstimate:
    """Result of a finite-size critical-probability estimation.

    Attributes
    ----------
    critical_probability:
        The closure probability at which the crossing probability passes 1/2.
    grid_side:
        The lattice side used.
    trials_per_point:
        Monte-Carlo trials per bisection step.
    """

    critical_probability: float
    grid_side: int
    trials_per_point: int


def estimate_critical_probability(
    side: int = 12,
    *,
    trials_per_point: int = 200,
    iterations: int = 8,
    rng: np.random.Generator | None = None,
) -> CriticalEstimate:
    """Estimate the closure probability at which LR crossings stop appearing.

    Bisects on ``p`` for the point where the Monte-Carlo estimate of
    ``P_p(LR)`` crosses one half.  Finite-size effects bias the estimate, but
    for moderate grids the answer already lands close to the theoretical
    ``1/2``, which is what the availability benchmarks check.
    """
    rng = ensure_rng(rng)
    grid = TriangularGrid(side)
    low, high = 0.0, 1.0
    for _ in range(iterations):
        middle = (low + high) / 2.0
        estimate = estimate_crossing_probability(
            grid, middle, trials=trials_per_point, rng=rng
        )
        if estimate.probability >= 0.5:
            low = middle
        else:
            high = middle
    return CriticalEstimate(
        critical_probability=(low + high) / 2.0,
        grid_side=side,
        trials_per_point=trials_per_point,
    )


def fixed_point_of_reliability(
    reliability_function: Callable[[float], float],
    *,
    tolerance: float = 1e-9,
    max_iterations: int = 200,
) -> float:
    """Return the non-trivial fixed point ``p_c`` of an S-shaped crash function.

    Proposition 5.6 shows that the crash-probability function ``g`` of the
    basic ``l``-of-``k`` block has a unique fixed point ``0 < p_c < 1`` with
    ``g(p) < p`` below it and ``g(p) > p`` above it.  This routine finds the
    fixed point by bisection on ``g(p) - p``.
    """
    low, high = 1e-9, 1.0 - 1e-9
    low_sign = reliability_function(low) - low
    high_sign = reliability_function(high) - high
    if low_sign > 0 or high_sign < 0:
        raise ComputationError(
            "function does not look S-shaped: expected g(p) < p near 0 and g(p) > p near 1"
        )
    for _ in range(max_iterations):
        middle = (low + high) / 2.0
        value = reliability_function(middle) - middle
        if abs(value) < tolerance or (high - low) < tolerance:
            return middle
        if value < 0:
            low = middle
        else:
            high = middle
    return (low + high) / 2.0
