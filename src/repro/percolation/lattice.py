"""The triangulated square grid used by the M-Path construction (Section 7).

Vertices are the integer points ``(i, j)`` with ``1 <= i, j <= side``.  The
paper's triangulation has an edge between ``(i1, j1)`` and ``(i2, j2)`` when
one of the following holds:

1. ``i1 == i2`` and ``j2 == j1 + 1``   (vertical neighbour),
2. ``j1 == j2`` and ``i2 == i1 + 1``   (horizontal neighbour),
3. ``i2 == i1 - 1`` and ``j2 == j1 + 1``  (the triangulating diagonal).

Site percolation on this lattice has critical probability ``1/2`` (Kesten),
which is what gives M-Path its optimal availability for every ``p < 1/2``.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.exceptions import ConstructionError

__all__ = ["TriangularGrid"]

Vertex = tuple[int, int]

#: Offsets realising conditions (i)-(iii) of the paper plus their reverses,
#: so that adjacency is symmetric.
_NEIGHBOUR_OFFSETS: tuple[tuple[int, int], ...] = (
    (0, 1),
    (0, -1),
    (1, 0),
    (-1, 0),
    (-1, 1),
    (1, -1),
)


class TriangularGrid:
    """A triangulated ``side x side`` grid.

    The first coordinate ``i`` is the column (1 = left side, ``side`` =
    right side), the second coordinate ``j`` is the row (1 = bottom,
    ``side`` = top), matching the paper's point set
    ``{(i, j) : 1 <= i, j <= sqrt(n)}``.
    """

    def __init__(self, side: int):
        if side < 2:
            raise ConstructionError(f"grid side must be at least 2, got {side}")
        self.side = side

    @property
    def num_vertices(self) -> int:
        """The number of vertices, ``side ** 2``."""
        return self.side * self.side

    def vertices(self) -> Iterator[Vertex]:
        """Yield every vertex in column-major order."""
        for i in range(1, self.side + 1):
            for j in range(1, self.side + 1):
                yield (i, j)

    def contains(self, vertex: Vertex) -> bool:
        """Return ``True`` when ``vertex`` lies on the grid."""
        i, j = vertex
        return 1 <= i <= self.side and 1 <= j <= self.side

    def neighbours(self, vertex: Vertex) -> list[Vertex]:
        """Return the lattice neighbours of ``vertex`` (degree up to 6)."""
        i, j = vertex
        result = []
        for di, dj in _NEIGHBOUR_OFFSETS:
            candidate = (i + di, j + dj)
            if self.contains(candidate):
                result.append(candidate)
        return result

    # ------------------------------------------------------------------
    # Boundary sets used by the crossing events LR and TB.
    # ------------------------------------------------------------------
    def left_side(self) -> list[Vertex]:
        """Vertices on the left boundary (``i = 1``)."""
        return [(1, j) for j in range(1, self.side + 1)]

    def right_side(self) -> list[Vertex]:
        """Vertices on the right boundary (``i = side``)."""
        return [(self.side, j) for j in range(1, self.side + 1)]

    def bottom_side(self) -> list[Vertex]:
        """Vertices on the bottom boundary (``j = 1``)."""
        return [(i, 1) for i in range(1, self.side + 1)]

    def top_side(self) -> list[Vertex]:
        """Vertices on the top boundary (``j = side``)."""
        return [(i, self.side) for i in range(1, self.side + 1)]

    def row(self, j: int) -> list[Vertex]:
        """Return the straight horizontal path at height ``j`` (an LR path)."""
        if not 1 <= j <= self.side:
            raise ConstructionError(f"row index {j} outside [1, {self.side}]")
        return [(i, j) for i in range(1, self.side + 1)]

    def column(self, i: int) -> list[Vertex]:
        """Return the straight vertical path at column ``i`` (a TB path)."""
        if not 1 <= i <= self.side:
            raise ConstructionError(f"column index {i} outside [1, {self.side}]")
        return [(i, j) for j in range(1, self.side + 1)]

    def is_lr_path(self, path: list[Vertex]) -> bool:
        """Return ``True`` when ``path`` is a left-to-right lattice path."""
        return self._is_path(path) and path[0][0] == 1 and path[-1][0] == self.side

    def is_tb_path(self, path: list[Vertex]) -> bool:
        """Return ``True`` when ``path`` is a top-to-bottom lattice path."""
        return self._is_path(path) and path[0][1] == 1 and path[-1][1] == self.side

    def _is_path(self, path: list[Vertex]) -> bool:
        if not path or not all(self.contains(vertex) for vertex in path):
            return False
        if len(set(path)) != len(path):
            return False
        return all(
            second in self.neighbours(first) for first, second in zip(path, path[1:])
        )

    def __repr__(self) -> str:
        return f"TriangularGrid(side={self.side})"
