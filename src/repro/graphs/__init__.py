"""Graph algorithms used by the percolation substrate and the M-Path system."""

from repro.graphs.disjoint_paths import max_vertex_disjoint_paths
from repro.graphs.maxflow import FlowNetwork
from repro.graphs.union_find import UnionFind

__all__ = ["FlowNetwork", "UnionFind", "max_vertex_disjoint_paths"]
