"""Vertex-disjoint path counting via Menger's theorem.

The M-Path quorum system needs the maximum number of *vertex-disjoint* paths
between two sides of a (partially failed) lattice.  By Menger's theorem that
number equals the maximum flow in a network where every vertex is split into
an ``in`` and an ``out`` node joined by a unit-capacity edge, so that each
vertex can carry at most one path.
"""

from __future__ import annotations

from collections.abc import Callable, Collection, Hashable, Iterable

from repro.graphs.maxflow import FlowNetwork

__all__ = ["max_vertex_disjoint_paths"]

_SOURCE = ("super", "source")
_SINK = ("super", "sink")


def max_vertex_disjoint_paths(
    vertices: Collection[Hashable],
    neighbours: Callable[[Hashable], Iterable[Hashable]],
    sources: Collection[Hashable],
    sinks: Collection[Hashable],
) -> int:
    """Return the maximum number of vertex-disjoint paths from ``sources`` to ``sinks``.

    Parameters
    ----------
    vertices:
        The usable (e.g. alive / open) vertices.  Paths may only pass through
        these.
    neighbours:
        Adjacency oracle; called for each usable vertex and may return
        neighbours that are not usable (they are ignored).
    sources, sinks:
        Vertex sets between which paths are counted.  Paths are disjoint
        *including* their endpoints, matching the M-Path requirement that the
        ``sqrt(2b+1)`` left-right paths of a quorum share no server.

    Returns
    -------
    int
        The maximum number of vertex-disjoint paths.  Zero when no usable
        source can reach a usable sink.
    """
    usable = set(vertices)
    usable_sources = [vertex for vertex in sources if vertex in usable]
    usable_sinks = [vertex for vertex in sinks if vertex in usable]
    if not usable_sources or not usable_sinks:
        return 0

    network = FlowNetwork()
    for vertex in usable:
        network.add_edge(("in", vertex), ("out", vertex), 1)
    for vertex in usable:
        for neighbour in neighbours(vertex):
            if neighbour in usable:
                network.add_edge(("out", vertex), ("in", neighbour), 1)
    for vertex in usable_sources:
        network.add_edge(_SOURCE, ("in", vertex), 1)
    for vertex in usable_sinks:
        network.add_edge(("out", vertex), _SINK, 1)
    return network.max_flow(_SOURCE, _SINK)
