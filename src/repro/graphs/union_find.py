"""Disjoint-set (union–find) data structure.

Used by the percolation substrate to decide connectivity questions ("is there
an open left-right crossing?") in nearly linear time, and by the test-suite
as an independent check of the path-based crossing detection.
"""

from __future__ import annotations

from collections.abc import Hashable

__all__ = ["UnionFind"]


class UnionFind:
    """Union–find with path compression and union by size.

    Elements are created lazily on first use, so callers can union arbitrary
    hashable objects without registering them first.

    Examples
    --------
    >>> dsu = UnionFind()
    >>> dsu.union("a", "b")
    True
    >>> dsu.connected("a", "b")
    True
    >>> dsu.connected("a", "c")
    False
    """

    def __init__(self):
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}
        self._components = 0

    def add(self, element: Hashable) -> None:
        """Register ``element`` as its own singleton component (idempotent)."""
        if element not in self._parent:
            self._parent[element] = element
            self._size[element] = 1
            self._components += 1

    def find(self, element: Hashable) -> Hashable:
        """Return the canonical representative of ``element``'s component."""
        self.add(element)
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, left: Hashable, right: Hashable) -> bool:
        """Merge the components of ``left`` and ``right``.

        Returns ``True`` when a merge happened, ``False`` when the two
        elements were already connected.
        """
        root_left = self.find(left)
        root_right = self.find(right)
        if root_left == root_right:
            return False
        if self._size[root_left] < self._size[root_right]:
            root_left, root_right = root_right, root_left
        self._parent[root_right] = root_left
        self._size[root_left] += self._size[root_right]
        self._components -= 1
        return True

    def connected(self, left: Hashable, right: Hashable) -> bool:
        """Return ``True`` when ``left`` and ``right`` are in the same component."""
        return self.find(left) == self.find(right)

    @property
    def num_components(self) -> int:
        """The number of components among all registered elements."""
        return self._components

    def component_size(self, element: Hashable) -> int:
        """Return the size of the component containing ``element``."""
        return self._size[self.find(element)]

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        return len(self._parent)
