"""Dinic's maximum-flow algorithm on integer-capacity directed graphs.

The M-Path construction (Section 7) requires counting vertex-disjoint open
paths across a lattice; by Menger's theorem that count is a maximum flow in a
vertex-split unit-capacity network.  Dinic's algorithm solves unit-capacity
problems in ``O(E sqrt(V))`` which is ample for the grid sizes the paper's
evaluation considers.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable

from repro.exceptions import InvalidParameterError

__all__ = ["FlowNetwork"]


class FlowNetwork:
    """A directed flow network with integer capacities.

    Nodes may be arbitrary hashable objects; they are registered lazily when
    an edge mentioning them is added.
    """

    def __init__(self):
        self._index: dict[Hashable, int] = {}
        # Edge arrays: to-node, capacity, index of the reverse edge.
        self._to: list[int] = []
        self._capacity: list[int] = []
        self._adjacency: list[list[int]] = []

    def _node_index(self, node: Hashable) -> int:
        index = self._index.get(node)
        if index is None:
            index = len(self._index)
            self._index[node] = index
            self._adjacency.append([])
        return index

    @property
    def num_nodes(self) -> int:
        """The number of registered nodes."""
        return len(self._index)

    @property
    def num_edges(self) -> int:
        """The number of directed edges (excluding residual reverse edges)."""
        return len(self._to) // 2

    def add_edge(self, source: Hashable, target: Hashable, capacity: int) -> None:
        """Add a directed edge with the given integer capacity."""
        if capacity < 0:
            raise InvalidParameterError(f"capacity must be non-negative, got {capacity}")
        u = self._node_index(source)
        v = self._node_index(target)
        self._adjacency[u].append(len(self._to))
        self._to.append(v)
        self._capacity.append(capacity)
        self._adjacency[v].append(len(self._to))
        self._to.append(u)
        self._capacity.append(0)

    # ------------------------------------------------------------------
    # Dinic's algorithm.
    # ------------------------------------------------------------------
    def _bfs_levels(self, source: int, sink: int) -> list[int] | None:
        levels = [-1] * self.num_nodes
        levels[source] = 0
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for edge_id in self._adjacency[node]:
                target = self._to[edge_id]
                if self._capacity[edge_id] > 0 and levels[target] < 0:
                    levels[target] = levels[node] + 1
                    queue.append(target)
        return levels if levels[sink] >= 0 else None

    def _dfs_augment(
        self,
        node: int,
        sink: int,
        pushed: int,
        levels: list[int],
        iterators: list[int],
    ) -> int:
        if node == sink:
            return pushed
        while iterators[node] < len(self._adjacency[node]):
            edge_id = self._adjacency[node][iterators[node]]
            target = self._to[edge_id]
            if self._capacity[edge_id] > 0 and levels[target] == levels[node] + 1:
                flow = self._dfs_augment(
                    target, sink, min(pushed, self._capacity[edge_id]), levels, iterators
                )
                if flow > 0:
                    self._capacity[edge_id] -= flow
                    self._capacity[edge_id ^ 1] += flow
                    return flow
            iterators[node] += 1
        return 0

    def max_flow(self, source: Hashable, sink: Hashable) -> int:
        """Return the maximum flow from ``source`` to ``sink``.

        The network's residual capacities are consumed by the computation;
        build a fresh network for each query.
        """
        if source not in self._index or sink not in self._index:
            return 0
        source_index = self._index[source]
        sink_index = self._index[sink]
        if source_index == sink_index:
            raise InvalidParameterError("source and sink must differ")

        total = 0
        infinite = sum(self._capacity) + 1
        while True:
            levels = self._bfs_levels(source_index, sink_index)
            if levels is None:
                return total
            iterators = [0] * self.num_nodes
            while True:
                pushed = self._dfs_augment(source_index, sink_index, infinite, levels, iterators)
                if pushed == 0:
                    break
                total += pushed
