"""Seed threading: the single place ambient entropy may enter the library.

Every sampling function in :mod:`repro` takes an explicit
``numpy.random.Generator`` (or a seed) so that runs are deterministic
functions of their seeds — the contract ``tests/test_determinism.py`` pins
dynamically and lint rule R1 pins statically.  :func:`ensure_rng` is the one
audited exception: it is where ``rng=None`` defaults resolve, so "caller
passed no randomness source" happens in exactly one greppable place instead
of a scattering of bare ``np.random.default_rng()`` calls.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngLike", "ensure_rng"]

#: What the library accepts wherever randomness may be supplied: an explicit
#: generator, a seed, or nothing (fresh OS entropy through this module).
RngLike = "np.random.Generator | int | None"


def ensure_rng(rng: np.random.Generator | int | None = None) -> np.random.Generator:
    """Resolve an optional generator/seed into a ``numpy.random.Generator``.

    ``Generator`` instances pass through untouched (the seed-threading hot
    path), integers seed a fresh generator, and ``None`` draws OS entropy —
    deliberately, and only here.

    Examples
    --------
    >>> gen = ensure_rng(7)
    >>> ensure_rng(gen) is gen
    True
    """
    if rng is None:
        # The one sanctioned entropy draw in src/repro: explicit opt-out of
        # reproducibility when a caller passes no generator and no seed.
        return np.random.default_rng()  # repro-lint: disable=R1 -- single audited entropy entry point; every other module threads a Generator or seed through this helper
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
