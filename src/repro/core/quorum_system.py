"""The quorum-system abstraction (Definitions 3.1–3.5 of the paper).

Two layers are provided:

* :class:`QuorumSystem` — an abstract base class.  Subclasses must expose a
  universe and a way to iterate quorums; the base class derives every
  combinatorial measure the paper uses (``c``, ``IS``, ``MT``, degrees,
  fairness, resilience, masking ability) by enumeration, with caching.
  Constructions in :mod:`repro.constructions` override the measures they know
  in closed form, so that large systems never need to be enumerated.
* :class:`ExplicitQuorumSystem` — a concrete quorum system given by an
  explicit list of quorums, used for small systems, for composition results,
  and throughout the test-suite.
* :class:`ImplicitQuorumSystem` — a lazy view of a construction whose quorum
  family is *never* enumerated: measures come from the base construction's
  closed forms (see :mod:`repro.core.analytic`) and the quorum list is
  replaced by an i.i.d. sample drawn through the
  :meth:`QuorumSystem.sample_quorum_mask` protocol.  This is what lets the
  workload engines run at ``n = 10^3 .. 10^4`` servers (see
  ``docs/analysis.md``).

Terminology follows Table 1 of the paper:

===========  ===========================================================
``n``        number of servers, ``|U|``
``c(Q)``     size of the smallest quorum
``IS(Q)``    size of the smallest intersection between two quorums
``MT(Q)``    size of the smallest transversal
``f``        resilience, ``MT(Q) - 1``
``b``        number of Byzantine failures maskable by the system
===========  ===========================================================

Underneath the frozenset API every system carries a cached bitmask engine
(:meth:`QuorumSystem.bitset_engine`, see :mod:`repro.core.bitset`): quorums
are ``int`` bitmasks over the universe's index order and the enumeration-based
measures run vectorised on the bit-packed quorum list.  ``docs/notation.md``
maps the paper's notation to the implementing functions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Hashable, Iterable, Iterator
from typing import TYPE_CHECKING

import numpy as np

from repro.core import bitset as bitset_mod
from repro.core import transversal as transversal_mod
from repro.core.bitset import BitsetEngine
from repro.core.universe import Universe
from repro.exceptions import ComputationError, InvalidQuorumSystemError

if TYPE_CHECKING:  # circular at runtime: strategy imports this module
    from repro.core.strategy import Strategy

__all__ = ["QuorumSystem", "ExplicitQuorumSystem", "ImplicitQuorumSystem"]

#: Default cap on the number of quorums the generic (enumeration based)
#: measure implementations are willing to materialise.
DEFAULT_ENUMERATION_LIMIT = 200_000


class QuorumSystem(ABC):
    """Abstract base class for quorum systems (Definition 3.1).

    Subclasses must implement :meth:`universe` and :meth:`iter_quorums`.
    Everything else has a generic, enumeration-based default implementation
    that constructions override with the paper's closed forms whenever these
    are available.
    """

    #: Human readable name used in tables and reports.
    name: str = "quorum-system"

    #: Whether :meth:`iter_quorums` enumerates *all* quorums of the system.
    #: Some very large constructions (e.g. M-Path) only enumerate a canonical
    #: sub-family; they set this to ``False`` so that the generic measure
    #: implementations refuse to silently compute wrong exact values.
    enumerates_all_quorums: bool = True

    #: Whether this object is an :class:`ImplicitQuorumSystem` view whose
    #: ``quorums()`` is a *sampled sub-family* rather than the real family.
    #: Exact computations over the quorum list (the load LP, strategy caches)
    #: check this flag so they can refuse with a clear
    #: :class:`~repro.exceptions.ComputationError` instead of silently
    #: treating the sample as the truth.
    is_implicit: bool = False

    # ------------------------------------------------------------------
    # Abstract surface.
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def universe(self) -> Universe:
        """The universe of servers the system is built over."""

    @abstractmethod
    def iter_quorums(self) -> Iterator[frozenset]:
        """Yield the quorums of the system as frozensets of universe elements."""

    # ------------------------------------------------------------------
    # Bitmask engine (the representation the hot paths run on).
    # ------------------------------------------------------------------
    def iter_quorum_masks(self) -> Iterator[int]:
        """Yield the quorums as ``int`` bitmasks over the universe's index order.

        The default converts :meth:`iter_quorums`; constructions override it
        to emit masks directly (precomputed row/column/subtree masks), which
        is both their fast path and the source the frozenset view is derived
        from.  Whichever method a subclass overrides, both views enumerate
        the same quorums in the same order.
        """
        universe = self.universe
        for quorum in self.iter_quorums():
            yield bitset_mod.mask_of(quorum, universe)

    def quorum_masks(self, *, limit: int | None = DEFAULT_ENUMERATION_LIMIT) -> tuple[int, ...]:
        """Return the quorum bitmasks as a tuple (cached; mirrors :meth:`quorums`)."""
        if not self.enumerates_all_quorums:
            raise ComputationError(
                f"{self.name} cannot enumerate its full quorum list; "
                "use its analytic measures or sample_quorum instead"
            )
        cached = getattr(self, "_quorum_mask_cache", None)
        if cached is not None:
            return cached
        collected: list[int] = []
        for mask in self.iter_quorum_masks():
            collected.append(mask)
            if limit is not None and len(collected) > limit:
                raise ComputationError(
                    f"{self.name} has more than {limit} quorums; "
                    "raise the limit explicitly if enumeration is really wanted"
                )
        mask_tuple = tuple(collected)
        self._quorum_mask_cache = mask_tuple
        return mask_tuple

    def bitset_engine(self) -> BitsetEngine:
        """Return the system's :class:`~repro.core.bitset.BitsetEngine` (built once).

        The engine caches the bitmask list, the bit-packed ``uint64`` array
        and the incidence matrix, so every measure that goes through it pays
        the enumeration cost a single time per system.
        """
        cached = getattr(self, "_bitset_engine_cache", None)
        if cached is None:
            cached = BitsetEngine(self.universe, self.quorum_masks())
            self._bitset_engine_cache = cached
        return cached

    # ------------------------------------------------------------------
    # Basic structure.
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """The number of servers ``n = |U|``."""
        return self.universe.size

    def quorums(self, *, limit: int | None = DEFAULT_ENUMERATION_LIMIT) -> tuple[frozenset, ...]:
        """Return the quorums as a tuple, enumerating at most ``limit`` of them.

        Raises
        ------
        ComputationError
            If the system declares that it cannot enumerate all its quorums,
            or if the enumeration exceeds ``limit``.
        """
        if not self.enumerates_all_quorums:
            raise ComputationError(
                f"{self.name} cannot enumerate its full quorum list; "
                "use its analytic measures or sample_quorum instead"
            )
        cached = getattr(self, "_quorum_cache", None)
        if cached is not None:
            return cached
        collected: list[frozenset] = []
        for quorum in self.iter_quorums():
            collected.append(quorum)
            if limit is not None and len(collected) > limit:
                raise ComputationError(
                    f"{self.name} has more than {limit} quorums; "
                    "raise the limit explicitly if enumeration is really wanted"
                )
        quorum_tuple = tuple(collected)
        self._quorum_cache = quorum_tuple
        return quorum_tuple

    def num_quorums(self) -> int:
        """Return the number of quorums (by enumeration unless overridden)."""
        return len(self.quorums())

    def sample_quorum(self, rng: np.random.Generator) -> frozenset:
        """Return a quorum sampled under the system's preferred access strategy.

        The default strategy is uniform over the enumerated quorum list;
        constructions override this with their load-optimal strategy.
        """
        quorum_list = self.quorums()
        return quorum_list[int(rng.integers(len(quorum_list)))]

    def sample_quorum_avoiding(
        self,
        rng: np.random.Generator,
        excluded: frozenset,
        *,
        attempts: int = 50,
    ) -> frozenset:
        """Return a quorum avoiding ``excluded`` servers, when one can be found.

        Used by clients as a simple failure detector: once servers are
        observed to be unresponsive, subsequent accesses should steer towards
        quorums that avoid them (this is what turns the combinatorial
        resilience ``f = MT - 1`` into actual protocol availability).  The
        generic implementation resamples the access strategy; constructions
        with structure (e.g. thresholds) override it with a direct choice.
        Falls back to an arbitrary quorum when avoidance fails.
        """
        excluded = frozenset(excluded)
        quorum = self.sample_quorum(rng)
        if not excluded:
            return quorum
        for _ in range(attempts):
            if not quorum & excluded:
                return quorum
            quorum = self.sample_quorum(rng)
        return quorum

    def sample_quorum_mask(self, rng: np.random.Generator) -> int:
        """Draw one quorum as an ``int`` bitmask, without building the family.

        This is the *implicit sampling protocol*: a construction that can
        draw from its access strategy directly (rows/columns, subtree
        choices, ...) overrides this to assemble the bitmask from
        precomputed structure masks, consuming the same random draws as
        :meth:`sample_quorum` so the two views stay stream-compatible.  It
        is the primitive :class:`ImplicitQuorumSystem` builds its sampled
        support from, and the only access path that scales to universes
        where the family itself is astronomically large.

        The generic implementation converts :meth:`sample_quorum`, which may
        enumerate; constructions override one of the two.
        """
        return bitset_mod.mask_of(self.sample_quorum(rng), self.universe)

    # ------------------------------------------------------------------
    # Combinatorial measures (Table 1).
    # ------------------------------------------------------------------
    def min_quorum_size(self) -> int:
        """Return ``c(Q)``, the size of the smallest quorum."""
        return min(len(quorum) for quorum in self.quorums())

    def max_quorum_size(self) -> int:
        """Return the size of the largest quorum."""
        return max(len(quorum) for quorum in self.quorums())

    def min_intersection_size(self) -> int:
        """Return ``IS(Q)``, the smallest pairwise quorum intersection.

        Computed by vectorised popcount over the bit-packed quorum list
        instead of pairwise frozenset intersections.
        """
        return self.bitset_engine().min_intersection_size()

    def min_transversal_size(self) -> int:
        """Return ``MT(Q)``, the size of the smallest transversal."""
        return transversal_mod.minimal_transversal_size(self.quorums())

    def minimal_transversal(self) -> frozenset:
        """Return one smallest transversal of the system."""
        return transversal_mod.minimal_transversal(self.quorums())

    def resilience(self) -> int:
        """Return ``f = MT(Q) - 1`` (remark after Definition 3.4)."""
        return self.min_transversal_size() - 1

    def degree(self, element: Hashable) -> int:
        """Return ``deg(element)``, the number of quorums containing it.

        Elements outside the universe belong to no quorum, so their degree
        is 0.
        """
        if element not in self.universe:
            return 0
        position = self.universe.index_of(element)
        return int(self.bitset_engine().degrees()[position])

    def degrees(self) -> dict[Hashable, int]:
        """Return the degree of every universe element (one incidence-column sum)."""
        counts = self.bitset_engine().degrees()
        return {
            element: int(counts[position])
            for position, element in enumerate(self.universe)
        }

    def is_fair(self) -> bool:
        """Return ``True`` when the system is ``(s, d)``-fair (Definition 3.2)."""
        return self.fairness() is not None

    def fairness(self) -> tuple[int, int] | None:
        """Return ``(s, d)`` if the system is ``(s, d)``-fair, else ``None``."""
        engine = self.bitset_engine()
        sizes = engine.quorum_sizes()
        if int(sizes.min()) != int(sizes.max()):
            return None
        degree_values = engine.degrees()
        if int(degree_values.min()) != int(degree_values.max()):
            return None
        return int(sizes[0]), int(degree_values[0])

    # ------------------------------------------------------------------
    # Masking (Definitions 3.4, 3.5; Lemma 3.6; Corollary 3.7).
    # ------------------------------------------------------------------
    def masking_bound(self) -> int:
        """Return the largest ``b`` for which the system is ``b``-masking.

        This is Corollary 3.7: ``b = min{MT(Q) - 1, (IS(Q) - 1) // 2}``.  A
        value of ``0`` means the system is an ordinary (regular) quorum
        system that cannot mask any Byzantine failure.
        """
        by_resilience = self.min_transversal_size() - 1
        by_intersection = (self.min_intersection_size() - 1) // 2
        return max(0, min(by_resilience, by_intersection))

    def is_b_masking(self, b: int) -> bool:
        """Return ``True`` when the system is a ``b``-masking quorum system.

        Checks the two sufficient conditions of Lemma 3.6:
        ``MT(Q) >= b + 1`` and ``IS(Q) >= 2b + 1``.
        """
        if b < 0:
            raise InvalidQuorumSystemError(f"masking parameter must be >= 0, got {b}")
        if b == 0:
            return True
        return (
            self.min_transversal_size() >= b + 1
            and self.min_intersection_size() >= 2 * b + 1
        )

    # ------------------------------------------------------------------
    # Validation and conversion.
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check that the system satisfies Definition 3.1.

        Every quorum must be a non-empty subset of the universe and every
        pair of quorums must intersect.

        Raises
        ------
        InvalidQuorumSystemError
            On the first violated requirement.
        """
        quorum_list = self.quorums()
        if not quorum_list:
            raise InvalidQuorumSystemError("a quorum system must contain at least one quorum")
        universe_set = self.universe.as_frozenset()
        for quorum in quorum_list:
            if not quorum:
                raise InvalidQuorumSystemError("quorums must be non-empty")
            if not quorum <= universe_set:
                stray = sorted(quorum - universe_set, key=repr)[:3]
                raise InvalidQuorumSystemError(
                    f"quorum contains elements outside the universe: {stray}"
                )
        # Pairwise intersection is the expensive half of Definition 3.1; the
        # engine checks it by vectorised popcount instead of O(m^2) frozenset
        # intersections.
        if not self.bitset_engine().all_pairs_intersect():
            raise InvalidQuorumSystemError(
                "two quorums do not intersect; this is not a quorum system"
            )

    def to_explicit(self) -> "ExplicitQuorumSystem":
        """Materialise the system as an :class:`ExplicitQuorumSystem`."""
        return ExplicitQuorumSystem(self.universe, self.quorums(), name=self.name)

    def element_index_matrix(self) -> np.ndarray:
        """Return the quorum/element incidence matrix as a boolean array.

        Rows are quorums (in enumeration order), columns are universe
        elements (in universe order).  Used by the LP load computation and by
        the Monte-Carlo availability computation.  The matrix is built once
        by the bitmask engine and cached; a writable copy is returned.
        """
        return self.bitset_engine().incidence_matrix().copy()

    # ------------------------------------------------------------------
    # Dunder helpers.
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r} n={self.n}>"


class ExplicitQuorumSystem(QuorumSystem):
    """A quorum system given by an explicit collection of quorums.

    Parameters
    ----------
    universe:
        The universe of servers, either a :class:`~repro.core.universe.Universe`
        or any iterable of hashable elements.
    quorums:
        The quorums.  They are normalised to ``frozenset`` and deduplicated
        while preserving first-seen order.
    name:
        Optional human-readable name.
    validate:
        When ``True`` (the default), check Definition 3.1 eagerly.
    """

    def __init__(
        self,
        universe: Universe | Iterable[Hashable],
        quorums: Iterable[Iterable[Hashable]],
        *,
        name: str = "explicit",
        validate: bool = True,
    ):
        if not isinstance(universe, Universe):
            universe = Universe(universe)
        self._universe = universe
        seen: dict[frozenset, None] = {}
        for quorum in quorums:
            seen.setdefault(frozenset(quorum), None)
        self._quorums = tuple(seen)
        self.name = name
        if validate:
            self.validate()

    @property
    def universe(self) -> Universe:
        return self._universe

    def iter_quorums(self) -> Iterator[frozenset]:
        return iter(self._quorums)

    def num_quorums(self) -> int:
        return len(self._quorums)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExplicitQuorumSystem):
            return NotImplemented
        return (
            self._universe.as_frozenset() == other._universe.as_frozenset()
            and frozenset(self._quorums) == frozenset(other._quorums)
        )

    def __hash__(self) -> int:
        return hash((self._universe.as_frozenset(), frozenset(self._quorums)))

    def restricted_to_alive(self, crashed: Iterable[Hashable]) -> "ExplicitQuorumSystem | None":
        """Return the sub-system of quorums untouched by ``crashed`` servers.

        Returns ``None`` when every quorum is hit, i.e. when the crash
        configuration disables the system (the event ``crash(Q)`` of
        Definition 3.10).
        """
        down = frozenset(crashed)
        down_mask = bitset_mod.mask_of(
            (element for element in down if element in self._universe), self._universe
        )
        alive = [
            quorum
            for quorum, mask in zip(self._quorums, self.quorum_masks(limit=None))
            if not mask & down_mask
        ]
        if not alive:
            return None
        return ExplicitQuorumSystem(
            self._universe, alive, name=f"{self.name}|alive", validate=False
        )


class ImplicitQuorumSystem(QuorumSystem):
    """A lazy, never-enumerated view of a quorum-system construction.

    The paper's large-``n`` statements (load ``Omega(1/sqrt(n))``, the
    load/availability trade-off of Sections 4–8) are about systems whose
    quorum family is astronomically large — M-Grid over a ``100 x 100`` grid
    has ``C(100, 2)^2 ≈ 2.4 * 10^7`` quorums and M-Path vastly more.  This
    wrapper decouples *what the system is* from *which subsets it contains*:

    * every combinatorial measure (``c``, ``IS``, ``MT``, fairness, masking
      bound, ``load``, ``crash_probability``) is **delegated to the base
      construction's closed forms**, so the true values are reported at any
      ``n`` (see :mod:`repro.core.analytic` for the uniform dispatch);
    * the quorum list is replaced by a **frozen i.i.d. sample** of
      ``num_samples`` quorums drawn through
      :meth:`QuorumSystem.sample_quorum_mask` (the base construction's
      load-optimal access strategy), materialised lazily on first use;
    * :meth:`quorums` / :meth:`quorum_masks` / :meth:`bitset_engine` expose
      that sample, so the bitmask engine, :class:`~repro.core.strategy.Strategy`
      and both workload engines (:mod:`repro.simulation.engine`,
      :mod:`repro.simulation.events`) accept the system unchanged;
    * exact computations that would treat the sample as the whole family
      (the load LP, strategy validation) check :attr:`is_implicit` and raise
      :class:`~repro.exceptions.ComputationError` unless the *base* family
      fits their enumeration budget.

    Parameters
    ----------
    base:
        The underlying construction.  It must provide
        ``sample_quorum_mask`` (all constructions in
        :mod:`repro.constructions` emit masks natively) and should provide
        closed-form measures; measures the base cannot answer without
        enumeration keep the base's behaviour (including its guard errors).
    num_samples:
        Size of the frozen sample that stands in for the quorum list.
    seed:
        Seed of the private generator that draws the frozen sample, so a
        given ``(base, num_samples, seed)`` triple always yields the same
        support (runs stay reproducible).

    Examples
    --------
    >>> from repro.constructions.mgrid import MGrid
    >>> big = ImplicitQuorumSystem(MGrid(50, 3), num_samples=128, seed=7)
    >>> big.n                                   # true universe, 2500 servers
    2500
    >>> big.load() == MGrid(50, 3).load()       # closed form, not the sample
    True
    >>> len(big.quorum_masks()) <= 128          # sampled support (deduplicated)
    True
    """

    enumerates_all_quorums = False
    is_implicit = True

    def __init__(self, base: QuorumSystem, *, num_samples: int = 256, seed: int = 0):
        if isinstance(base, ImplicitQuorumSystem):
            raise ComputationError("refusing to wrap an implicit system in another one")
        if num_samples < 1:
            raise ComputationError(f"num_samples must be >= 1, got {num_samples}")
        self.base = base
        self.num_samples = int(num_samples)
        self.seed = int(seed)
        self.name = f"Implicit({base.name}, m={num_samples})"
        self._sample_counts: dict[int, int] | None = None

    # ------------------------------------------------------------------
    # Structure: the universe is real, the family is sampled.
    # ------------------------------------------------------------------
    @property
    def universe(self) -> Universe:
        return self.base.universe

    def _ensure_sample(self) -> dict[int, int]:
        """Draw the frozen support sample once: mask -> multiplicity."""
        if self._sample_counts is None:
            rng = np.random.default_rng(self.seed)
            counts: dict[int, int] = {}
            for _ in range(self.num_samples):
                mask = self.base.sample_quorum_mask(rng)
                counts[mask] = counts.get(mask, 0) + 1
            self._sample_counts = counts
        return self._sample_counts

    def iter_quorum_masks(self) -> Iterator[int]:
        """Yield the *sampled* support masks (deduplicated, first-seen order)."""
        return iter(self._ensure_sample())

    def iter_quorums(self) -> Iterator[frozenset]:
        universe = self.universe
        for mask in self.iter_quorum_masks():
            yield bitset_mod.mask_to_frozenset(mask, universe)

    def quorum_masks(self, *, limit: int | None = DEFAULT_ENUMERATION_LIMIT) -> tuple[int, ...]:
        """Return the sampled support masks (NOT the full family; see class docs)."""
        cached = getattr(self, "_quorum_mask_cache", None)
        if cached is None:
            cached = tuple(self._ensure_sample())
            self._quorum_mask_cache = cached
        return cached

    def quorums(self, *, limit: int | None = DEFAULT_ENUMERATION_LIMIT) -> tuple[frozenset, ...]:
        """Return the sampled support (NOT the full family; see class docs)."""
        cached = getattr(self, "_quorum_cache", None)
        if cached is None:
            cached = tuple(self.iter_quorums())
            self._quorum_cache = cached
        return cached

    def support_strategy(self) -> "Strategy":
        """Return the empirical access strategy over the frozen sample.

        Each sampled mask is weighted by its multiplicity, so the strategy
        is the empirical (plug-in) estimate of the base construction's
        access strategy; its induced load converges to the construction's
        ``L(Q)`` as ``num_samples`` grows.  The strategy's per-universe mask
        cache is primed, so no frozenset round-trips happen on the hot path.
        """
        from repro.core.strategy import Strategy  # local: strategy imports this module

        counts = self._ensure_sample()
        return Strategy.from_masks(
            self.universe, tuple(counts), tuple(counts.values()), normalise=True
        )

    def sampled_optimal_strategy(self) -> "Strategy":
        """Return the load-LP-optimal strategy *over the frozen sample*.

        The plain :meth:`support_strategy` inherits the sampling noise of the
        i.i.d. draw — the busiest server of an empirical strategy sits a few
        standard deviations above ``L(Q)``.  Solving the load LP restricted
        to the sampled sub-family rebalances the weights (dropping redundant
        quorums, evening out row/column collisions), so the induced load
        converges to ``L(Q)`` much faster in ``num_samples``.  The value is
        an upper bound on the true ``L(Q)`` (the LP optimises over fewer
        quorums), and the strategy is supported on genuine quorums, so the
        workload engines can run it at any scale the sample fits.
        """
        cached = getattr(self, "_sampled_optimal_cache", None)
        if cached is None:
            from repro.core import load as load_mod  # local: load imports this module

            sampled = ExplicitQuorumSystem(
                self.universe,
                self.quorums(),
                name=f"{self.name}|sample",
                validate=False,
            )
            cached = load_mod.exact_load(sampled, quorum_limit=None).strategy
            self._sampled_optimal_cache = cached
        return cached

    # ------------------------------------------------------------------
    # Sampling: fresh draws always come from the base construction.
    # ------------------------------------------------------------------
    def sample_quorum(self, rng: np.random.Generator) -> frozenset:
        return self.base.sample_quorum(rng)

    def sample_quorum_avoiding(
        self,
        rng: np.random.Generator,
        excluded: frozenset,
        *,
        attempts: int = 50,
    ) -> frozenset:
        return self.base.sample_quorum_avoiding(rng, excluded, attempts=attempts)

    def sample_quorum_mask(self, rng: np.random.Generator) -> int:
        return self.base.sample_quorum_mask(rng)

    # ------------------------------------------------------------------
    # Measures: delegated to the base construction's closed forms.  A base
    # without a closed form keeps its own behaviour, including enumeration
    # guards — nothing here silently computes over the sample.
    # ------------------------------------------------------------------
    def num_quorums(self) -> int:
        return self.base.num_quorums()

    def min_quorum_size(self) -> int:
        return self.base.min_quorum_size()

    def max_quorum_size(self) -> int:
        return self.base.max_quorum_size()

    def min_intersection_size(self) -> int:
        return self.base.min_intersection_size()

    def min_transversal_size(self) -> int:
        return self.base.min_transversal_size()

    def minimal_transversal(self) -> frozenset:
        return self.base.minimal_transversal()

    def fairness(self) -> tuple[int, int] | None:
        return self.base.fairness()

    def masking_bound(self) -> int:
        return self.base.masking_bound()

    def degree(self, element: Hashable) -> int:
        return self.base.degree(element)

    def degrees(self) -> dict[Hashable, int]:
        return self.base.degrees()

    def load(self) -> float:
        """The base construction's closed-form load (raises if it has none)."""
        analytic = getattr(self.base, "load", None)
        if not callable(analytic):
            raise ComputationError(
                f"{self.base.name} has no closed-form load; "
                "use repro.core.analytic.analytic_load or an explicit system"
            )
        return float(analytic())

    def crash_probability(self, p: float, **kwargs: object) -> float:
        """The closed-form ``Fp`` of the base construction, at any ``n``.

        Routed through
        :func:`repro.core.analytic.analytic_failure_probability` so the
        value is the deterministic closed form (e.g. the exact row/column
        dynamic program for grids) rather than the base's Monte-Carlo
        estimator.  Passing estimator keyword arguments (``trials``,
        ``rng``, ...) opts back into the base construction's own method.
        """
        if kwargs:
            estimator = getattr(self.base, "crash_probability", None)
            if not callable(estimator):
                raise ComputationError(
                    f"{self.base.name} has no crash_probability estimator"
                )
            return float(estimator(p, **kwargs))
        from repro.core import analytic as analytic_mod  # local: analytic imports core

        return float(analytic_mod.analytic_failure_probability(self.base, p).value)

    def validate(self) -> None:
        """Spot-check Definition 3.1 on the sampled support only.

        The full pairwise-intersection check is exactly what an implicit
        system exists to avoid; validating the sample catches construction
        bugs (a sampler emitting non-intersecting sets) without enumeration.
        """
        engine = self.bitset_engine()
        if engine.num_quorums == 0:
            raise InvalidQuorumSystemError("implicit system produced an empty sample")
        if not engine.all_pairs_intersect():
            raise InvalidQuorumSystemError(
                f"two sampled quorums of {self.name} do not intersect; "
                "the base construction's sampler is broken"
            )

    def __repr__(self) -> str:
        return (
            f"<ImplicitQuorumSystem base={self.base.name!r} n={self.n} "
            f"num_samples={self.num_samples}>"
        )
