"""Quorum-system composition (Definition 4.6 and Theorem 4.7).

The composition ``S ∘ R`` replaces every element ``i`` of the outer system
``S`` with a disjoint copy ``R_i`` of the inner system ``R``; a quorum of the
composition is obtained by choosing a quorum ``S`` of the outer system and,
for every ``i`` in it, a quorum of ``R_i``.

Theorem 4.7 gives the algebra of the composition:

=====================  ==========================================
universe size          ``n = n_S · n_R``
minimal quorum         ``c = c(S) · c(R)``
minimal intersection   ``IS = IS(S) · IS(R)``
minimal transversal    ``MT = MT(S) · MT(R)``
crash probability      ``Fp(S∘R) = s(r(p))`` with ``s = Fp(S)``, ``r = Fp(R)``
load                   ``L(S∘R) = L(S) · L(R)``
=====================  ==========================================

The composed system is exposed both lazily (:class:`ComposedQuorumSystem`
enumerates quorums on demand and reports the Theorem 4.7 values without
enumeration) and eagerly (:meth:`ComposedQuorumSystem.to_explicit` for small
systems, used heavily by the test-suite to validate the theorem).  Because
copy ``i`` of the inner universe occupies a contiguous bit range of the
composed universe, composed quorum bitmasks are ORs of shifted inner masks
(see :meth:`ComposedQuorumSystem.iter_quorum_masks`).

See ``docs/notation.md`` for the notation glossary.
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Iterator
from typing import Any

import numpy as np

from repro.core import availability as availability_mod
from repro.core import load as load_mod
from repro.core.quorum_system import ExplicitQuorumSystem, QuorumSystem
from repro.core.universe import Universe
from repro.exceptions import InvalidParameterError

__all__ = ["ComposedQuorumSystem", "compose", "self_compose"]


class ComposedQuorumSystem(QuorumSystem):
    """The composition ``S ∘ R`` of two quorum systems.

    Elements of the composed universe are pairs ``(i, r)`` where ``i`` is an
    element of the outer universe and ``r`` an element of the inner universe:
    the ``i``-th copy of the inner system lives on ``{(i, r) : r in R}``.
    """

    def __init__(self, outer: QuorumSystem, inner: QuorumSystem, *, name: str | None = None):
        self._outer = outer
        self._inner = inner
        copies = [inner.universe.relabel(i) for i in outer.universe]
        self._universe = Universe.disjoint_union(copies)
        self.name = name or f"{outer.name}∘{inner.name}"

    # ------------------------------------------------------------------
    # Structure.
    # ------------------------------------------------------------------
    @property
    def outer(self) -> QuorumSystem:
        """The outer component ``S``."""
        return self._outer

    @property
    def inner(self) -> QuorumSystem:
        """The inner component ``R``."""
        return self._inner

    @property
    def universe(self) -> Universe:
        return self._universe

    @staticmethod
    def _tag(copy_index: Hashable, inner_quorum: frozenset) -> frozenset:
        return frozenset((copy_index, element) for element in inner_quorum)

    def _tagged_inner_quorums(self, copy_index: Hashable) -> tuple[frozenset, ...]:
        """The inner system's quorums relabelled into copy ``copy_index`` (cached).

        ``iter_quorums`` revisits every copy once per surrounding product
        combination; tagging each copy's quorums once instead of per
        combination removes the dominant cost of eager composition.
        """
        cache = getattr(self, "_tagged_cache", None)
        if cache is None:
            cache = {}
            self._tagged_cache = cache
        tagged = cache.get(copy_index)
        if tagged is None:
            tagged = tuple(
                self._tag(copy_index, inner_quorum) for inner_quorum in self._inner.quorums()
            )
            cache[copy_index] = tagged
        return tagged

    def iter_quorums(self) -> Iterator[frozenset]:
        for outer_quorum in self._outer.quorums():
            members = sorted(outer_quorum, key=repr)
            tagged_lists = [self._tagged_inner_quorums(copy_index) for copy_index in members]
            for choice in itertools.product(*tagged_lists):
                combined: set = set()
                for tagged_quorum in choice:
                    combined |= tagged_quorum
                yield frozenset(combined)

    def iter_quorum_masks(self) -> Iterator[int]:
        """Yield composed quorums as bitmasks without building any frozensets.

        Copy ``i`` (the ``i``-th outer element in universe order) occupies the
        contiguous bit range ``[i * n_R, (i + 1) * n_R)`` of the composed
        universe, so a tagged inner quorum is just the inner quorum's mask
        shifted by the copy offset, and a composed quorum is the OR of one
        shifted mask per chosen copy.
        """
        inner_size = self._inner.n
        inner_masks = self._inner.quorum_masks()
        outer_universe = self._outer.universe
        shifted_cache: dict[Hashable, tuple[int, ...]] = {}

        def shifted_masks(copy_index: Hashable) -> tuple[int, ...]:
            shifted = shifted_cache.get(copy_index)
            if shifted is None:
                offset = outer_universe.index_of(copy_index) * inner_size
                shifted = tuple(mask << offset for mask in inner_masks)
                shifted_cache[copy_index] = shifted
            return shifted

        for outer_quorum in self._outer.quorums():
            members = sorted(outer_quorum, key=repr)
            shifted_lists = [shifted_masks(copy_index) for copy_index in members]
            for choice in itertools.product(*shifted_lists):
                combined_mask = 0
                for shifted in choice:
                    combined_mask |= shifted
                yield combined_mask

    def num_quorums(self) -> int:
        """Return the number of quorums without enumerating them."""
        inner_count = self._inner.num_quorums()
        return sum(
            inner_count ** len(outer_quorum) for outer_quorum in self._outer.quorums()
        )

    # ------------------------------------------------------------------
    # Theorem 4.7: combinatorial parameters.
    # ------------------------------------------------------------------
    def min_quorum_size(self) -> int:
        return self._outer.min_quorum_size() * self._inner.min_quorum_size()

    def max_quorum_size(self) -> int:
        return self._outer.max_quorum_size() * self._inner.max_quorum_size()

    def min_intersection_size(self) -> int:
        return self._outer.min_intersection_size() * self._inner.min_intersection_size()

    def min_transversal_size(self) -> int:
        return self._outer.min_transversal_size() * self._inner.min_transversal_size()

    def fairness(self) -> tuple[int, int] | None:
        outer_fairness = self._outer.fairness()
        inner_fairness = self._inner.fairness()
        if outer_fairness is None or inner_fairness is None:
            return None
        outer_size, outer_degree = outer_fairness
        inner_size, inner_degree = inner_fairness
        # Each composed quorum has outer_size * inner_size elements.  A fixed
        # element (i, r) appears once for every outer quorum containing i,
        # every inner quorum containing r, and every free choice on the other
        # outer-quorum positions.
        inner_count = self._inner.num_quorums()
        degree = outer_degree * inner_degree * inner_count ** (outer_size - 1)
        return outer_size * inner_size, degree

    # ------------------------------------------------------------------
    # Theorem 4.7: load and availability.
    # ------------------------------------------------------------------
    def load(self) -> float:
        """Return ``L(S) · L(R)`` using the best known load of each component."""
        outer_load = load_mod.best_known_load(self._outer).load
        inner_load = load_mod.best_known_load(self._inner).load
        return outer_load * inner_load

    def crash_probability(self, p: float, **kwargs: Any) -> float:
        """Return ``Fp(S∘R) = s(r(p))`` (modular decomposition of reliability)."""
        inner_value = availability_mod.failure_probability(self._inner, p, **kwargs).value
        return availability_mod.failure_probability(self._outer, inner_value, **kwargs).value

    def sample_quorum(self, rng: np.random.Generator) -> frozenset:
        """Sample a quorum with the product strategy of Theorem 4.7's proof."""
        outer_quorum = self._outer.sample_quorum(rng)
        combined: set = set()
        for copy_index in outer_quorum:
            inner_quorum = self._inner.sample_quorum(rng)
            combined |= self._tag(copy_index, inner_quorum)
        return frozenset(combined)

    # ------------------------------------------------------------------
    # Conversion.
    # ------------------------------------------------------------------
    def to_explicit(self, *, limit: int = 200_000) -> ExplicitQuorumSystem:
        """Materialise the composition (only sensible for small components)."""
        return ExplicitQuorumSystem(
            self._universe, self.quorums(limit=limit), name=self.name, validate=False
        )


def compose(outer: QuorumSystem, inner: QuorumSystem, *, name: str | None = None) -> ComposedQuorumSystem:
    """Return the composition ``outer ∘ inner`` (Definition 4.6)."""
    return ComposedQuorumSystem(outer, inner, name=name)


def self_compose(system: QuorumSystem, depth: int, *, name: str | None = None) -> QuorumSystem:
    """Compose ``system`` over itself ``depth - 1`` times.

    ``self_compose(R, 1)`` is ``R`` itself, ``self_compose(R, 2)`` is
    ``R ∘ R``, and so on.  This is the recursive construction underlying the
    RT systems of Section 5.2.
    """
    if depth < 1:
        raise InvalidParameterError(f"depth must be >= 1, got {depth}")
    result: QuorumSystem = system
    for _ in range(depth - 1):
        result = ComposedQuorumSystem(system, result)
    if name is not None:
        result.name = name
    return result
