"""Epoch-based dynamic membership: the universe as a reconfigurable object.

The paper states its load and availability results for a *fixed* universe of
``n`` servers; a production deployment reconfigures.  This module makes the
member set a first-class object:

* a :class:`Membership` records **join/sever events** with absolute epoch
  ids: epoch 0 is the initial member set, and every event produces the next
  epoch.  Epochs are immutable — history is never rewritten, so an epoch id
  names one member set forever (the ``QuorumBase.join``/``sever`` shape of
  the related work's quorum managers);
* :func:`rebind_system` recomputes a quorum system **as a pure function of
  the current membership** (the indy-plenum ``Quorums(n)`` shape): registry
  constructions are rebuilt with their parameters resized to the epoch's
  ``n`` and relabelled onto the live members, explicit systems are
  restricted to the quorums their surviving members can still form;
* :class:`ReboundQuorumSystem` is the relabelling wrapper that makes the
  rebuild cheap: quorum *bitmasks* are label-independent (bit ``i`` is
  position ``i`` of the universe order), so the wrapper delegates every
  mask-level view and closed-form measure to the freshly built construction
  and only translates frozensets.  The PR-1 incidence caches
  (``quorum_masks``/``bitset_engine``) live per rebound instance, so they
  are invalidated per *epoch*, not per call.

Strategy re-optimisation on epoch change lives next door: incremental
re-weighting is :meth:`repro.core.strategy.Strategy.restricted_to` (keep the
surviving quorums, renormalise), the full LP re-solve is
:func:`repro.core.load.exact_load` on the rebound system; the workload-level
wiring is :mod:`repro.simulation.reconfig`.  See ``docs/membership.md``.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Sequence
from dataclasses import dataclass
from math import isqrt
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core import bitset as bitset_mod
from repro.core.quorum_system import (
    ExplicitQuorumSystem,
    ImplicitQuorumSystem,
    QuorumSystem,
)
from repro.core.universe import Universe
from repro.exceptions import ComputationError, InvalidQuorumSystemError

if TYPE_CHECKING:  # circular at runtime: these import core modules
    from repro.core.strategy import Strategy

__all__ = [
    "Epoch",
    "Membership",
    "MembershipEvent",
    "ReboundQuorumSystem",
    "plan_events",
    "rebind_system",
    "severed_between",
]

#: The two reconfiguration event kinds.
EVENT_KINDS = ("join", "sever")


@dataclass(frozen=True)
class MembershipEvent:
    """One reconfiguration step: servers joining or severing together.

    Attributes
    ----------
    kind:
        ``"join"`` (the servers are admitted) or ``"sever"`` (they are
        evicted).  One event reconfigures atomically: all its servers change
        state in the same epoch transition.
    servers:
        The affected servers, in a deterministic order (joins append to the
        member order in this order).
    """

    kind: str
    servers: tuple[Hashable, ...]

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise InvalidQuorumSystemError(
                f"membership event kind must be one of {EVENT_KINDS}, got {self.kind!r}"
            )
        if not self.servers:
            raise InvalidQuorumSystemError(
                f"a {self.kind} event must name at least one server"
            )
        if len(set(self.servers)) != len(self.servers):
            raise InvalidQuorumSystemError(
                f"a {self.kind} event names a server twice: {self.servers!r}"
            )


@dataclass(frozen=True)
class Epoch:
    """One immutable configuration of the membership.

    Attributes
    ----------
    index:
        The absolute epoch id: 0 for the initial configuration, incremented
        by every event.  Ids are never reused; an evicted epoch stays
        addressable (the history checker needs to say "this value was
        written in epoch 1").
    universe:
        The live members as an ordered :class:`~repro.core.universe.Universe`
        (survivors keep their relative order; joiners append).
    joined / severed:
        The delta against the previous epoch (both empty for epoch 0).
    """

    index: int
    universe: Universe
    joined: frozenset
    severed: frozenset

    @property
    def members(self) -> tuple[Hashable, ...]:
        """The live servers, in universe order."""
        return self.universe.elements

    @property
    def n(self) -> int:
        """The epoch's universe size."""
        return self.universe.size

    def member_set(self) -> frozenset:
        """The live servers as a frozenset."""
        return self.universe.as_frozenset()


class Membership:
    """An append-only log of join/sever events with absolute epoch ids.

    Parameters
    ----------
    initial:
        The epoch-0 member set (a :class:`~repro.core.universe.Universe` or
        any ordered iterable of hashable server ids).
    events:
        Reconfiguration steps, each a :class:`MembershipEvent` or a
        ``(kind, servers)`` pair.  Event ``k`` produces epoch ``k + 1``.
        Severs must name current members, joins must name fresh servers,
        and no epoch may become empty.

    Examples
    --------
    >>> m = Membership(range(5), [("sever", [3, 4]), ("join", ["x"])])
    >>> m.num_epochs
    3
    >>> m.epoch(1).members
    (0, 1, 2)
    >>> m.epoch(2).members
    (0, 1, 2, 'x')
    """

    def __init__(
        self,
        initial: Universe | Iterable[Hashable],
        events: Iterable[MembershipEvent | tuple[str, Iterable[Hashable]]] = (),
    ):
        if not isinstance(initial, Universe):
            initial = Universe(initial)
        normalised: list[MembershipEvent] = []
        for event in events:
            if not isinstance(event, MembershipEvent):
                kind, servers = event
                event = MembershipEvent(kind=kind, servers=tuple(servers))
            normalised.append(event)
        self._events = tuple(normalised)

        epochs: list[Epoch] = [
            Epoch(index=0, universe=initial, joined=frozenset(), severed=frozenset())
        ]
        members = list(initial.elements)
        member_set = set(members)
        for event in self._events:
            if event.kind == "sever":
                missing = [s for s in event.servers if s not in member_set]
                if missing:
                    raise InvalidQuorumSystemError(
                        f"sever event for epoch {len(epochs)} names servers that "
                        f"are not members: {missing!r}"
                    )
                severed = frozenset(event.servers)
                members = [s for s in members if s not in severed]
                member_set -= severed
                joined: frozenset = frozenset()
            else:
                present = [s for s in event.servers if s in member_set]
                if present:
                    raise InvalidQuorumSystemError(
                        f"join event for epoch {len(epochs)} names servers that "
                        f"are already members: {present!r}"
                    )
                joined = frozenset(event.servers)
                members = members + list(event.servers)
                member_set |= joined
                severed = frozenset()
            if not members:
                raise InvalidQuorumSystemError(
                    f"epoch {len(epochs)} would have no members"
                )
            epochs.append(
                Epoch(
                    index=len(epochs),
                    universe=Universe(members),
                    joined=joined,
                    severed=severed,
                )
            )
        self._epochs = tuple(epochs)
        #: Per-(system, epoch) rebind cache: the whole point of absolute
        #: epoch ids is that a rebound system — and its PR-1 incidence
        #: caches — can be reused for as long as the epoch lasts and is
        #: dropped exactly when the epoch changes.
        self._rebind_cache: dict[tuple[int, int], QuorumSystem] = {}

    # ------------------------------------------------------------------
    # Structure.
    # ------------------------------------------------------------------
    @property
    def events(self) -> tuple[MembershipEvent, ...]:
        """The reconfiguration events, in application order."""
        return self._events

    @property
    def epochs(self) -> tuple[Epoch, ...]:
        """Every epoch, index 0 first."""
        return self._epochs

    @property
    def num_epochs(self) -> int:
        """The number of epochs (events + 1)."""
        return len(self._epochs)

    @property
    def initial(self) -> Universe:
        """The epoch-0 universe."""
        return self._epochs[0].universe

    def epoch(self, index: int) -> Epoch:
        """Return the epoch with the given absolute id."""
        if not 0 <= index < len(self._epochs):
            raise InvalidQuorumSystemError(
                f"epoch id {index} out of range [0, {len(self._epochs) - 1}]"
            )
        return self._epochs[index]

    def ever_members(self) -> frozenset:
        """Every server that was a member in at least one epoch."""
        combined: set[Hashable] = set()
        for epoch in self._epochs:
            combined |= epoch.member_set()
        return frozenset(combined)

    # ------------------------------------------------------------------
    # Rebinding (cached per epoch).
    # ------------------------------------------------------------------
    def rebind(self, system: QuorumSystem, epoch_index: int) -> QuorumSystem:
        """Return ``system`` recomputed for the given epoch (cached per epoch).

        The cache key is ``(id(system), epoch_index)``: the same deployment
        rebound to the same epoch returns the same object, so the
        incidence/bitset caches hanging off it are shared across every
        operation of the epoch and invalidated only when the epoch changes.
        """
        epoch = self.epoch(epoch_index)
        key = (id(system), epoch_index)
        cached = self._rebind_cache.get(key)
        if cached is None:
            cached = rebind_system(system, epoch)
            self._rebind_cache[key] = cached
        return cached

    def __len__(self) -> int:
        return len(self._epochs)

    def __iter__(self) -> Iterator[Epoch]:
        return iter(self._epochs)

    def __repr__(self) -> str:
        sizes = ", ".join(str(epoch.n) for epoch in self._epochs)
        return f"Membership(epochs={self.num_epochs}, sizes=[{sizes}])"


class ReboundQuorumSystem(QuorumSystem):
    """A construction recomputed for an epoch, relabelled onto its members.

    Quorum bitmasks are label-independent — bit ``i`` means "position ``i``
    of the universe order" — so rebinding a construction of the right size
    onto the live member set is a pure relabelling: every mask-level view
    (:meth:`iter_quorum_masks`, :meth:`sample_quorum_mask`) and every
    closed-form measure delegates to the rebuilt construction unchanged,
    and only the frozenset views translate through the epoch's universe.

    Parameters
    ----------
    base:
        A construction whose universe has exactly the epoch's size, built
        with parameters recomputed for that size (see :func:`rebind_system`).
    universe:
        The epoch's member universe the base is relabelled onto.
    epoch_index:
        The absolute epoch id (kept for cache keys and reporting).
    """

    def __init__(self, base: QuorumSystem, universe: Universe, *, epoch_index: int):
        if base.universe.size != universe.size:
            raise InvalidQuorumSystemError(
                f"cannot relabel a {base.universe.size}-server construction "
                f"onto {universe.size} members"
            )
        self.base = base
        self._universe = universe
        self.epoch_index = int(epoch_index)
        self.name = f"{base.name}@e{epoch_index}"
        self.enumerates_all_quorums = base.enumerates_all_quorums

    @property
    def universe(self) -> Universe:
        return self._universe

    def iter_quorum_masks(self) -> Iterator[int]:
        return self.base.iter_quorum_masks()

    def iter_quorums(self) -> Iterator[frozenset]:
        universe = self._universe
        for mask in self.base.iter_quorum_masks():
            yield bitset_mod.mask_to_frozenset(mask, universe)

    # --- sampling delegates at the mask level (labels never materialise).
    def sample_quorum_mask(self, rng: np.random.Generator) -> int:
        return self.base.sample_quorum_mask(rng)

    def sample_quorum(self, rng: np.random.Generator) -> frozenset:
        return bitset_mod.mask_to_frozenset(
            self.base.sample_quorum_mask(rng), self._universe
        )

    # --- measures are label-independent; use the base's closed forms.
    def num_quorums(self) -> int:
        return self.base.num_quorums()

    def min_quorum_size(self) -> int:
        return self.base.min_quorum_size()

    def max_quorum_size(self) -> int:
        return self.base.max_quorum_size()

    def min_intersection_size(self) -> int:
        return self.base.min_intersection_size()

    def min_transversal_size(self) -> int:
        return self.base.min_transversal_size()

    def masking_bound(self) -> int:
        return self.base.masking_bound()

    def fairness(self) -> tuple[int, int] | None:
        return self.base.fairness()

    def load(self) -> float:
        """The base construction's closed-form load, when it has one."""
        analytic = getattr(self.base, "load", None)
        if not callable(analytic):
            raise ComputationError(
                f"{self.base.name} has no closed-form load"
            )
        return float(analytic())

    def __repr__(self) -> str:
        return (
            f"<ReboundQuorumSystem base={self.base.name!r} "
            f"epoch={self.epoch_index} n={self.n}>"
        )


# ----------------------------------------------------------------------
# Parameter recomputation: construction parameters as functions of n.
# ----------------------------------------------------------------------
def _resized_params(construction: str, params: dict, n_new: int) -> dict:
    """Recompute a registry parameter dict for a universe of size ``n_new``.

    Pure functions of the target size, per family: threshold shapes take
    ``n`` directly; grid shapes need a perfect square; recursive thresholds
    a power ``k^depth``; trees ``2^(depth+1) - 1``; projective planes
    ``q^2 + q + 1``; crumbling walls keep their row profile and grow/shrink
    the tail rows.  Sizes outside the family raise
    :class:`~repro.exceptions.InvalidQuorumSystemError`.
    """
    resized = dict(params)
    if "side" in params:
        side = isqrt(n_new)
        if side * side != n_new:
            raise InvalidQuorumSystemError(
                f"{construction} needs a square universe; epoch has n={n_new}"
            )
        resized["side"] = side
        return resized
    if "rows" in params:
        rows = [int(width) for width in params["rows"]]
        total = sum(rows)
        while total > n_new and rows:
            trim = min(rows[-1], total - n_new)
            rows[-1] -= trim
            total -= trim
            if rows[-1] == 0:
                rows.pop()
        if not rows or total > n_new:
            raise InvalidQuorumSystemError(
                f"{construction} cannot shrink its wall to n={n_new}"
            )
        if total < n_new:
            rows[-1] += n_new - total
        resized["rows"] = tuple(rows)
        return resized
    if "q" in params:
        q = isqrt(n_new)
        while q * q + q + 1 > n_new:
            q -= 1
        if q < 2 or q * q + q + 1 != n_new:
            raise InvalidQuorumSystemError(
                f"{construction} needs n = q^2 + q + 1; no such q for n={n_new}"
            )
        resized["q"] = q
        return resized
    if "depth" in params and "k" in params:  # recursive threshold: n = k^depth
        k = int(params["k"])
        depth, size = 0, 1
        while size < n_new:
            size *= k
            depth += 1
        if size != n_new or depth < 1:
            raise InvalidQuorumSystemError(
                f"{construction} needs n = {k}^depth; no such depth for n={n_new}"
            )
        resized["depth"] = depth
        return resized
    if "depth" in params:  # tree: n = 2^(depth + 1) - 1
        depth, size = 0, 1
        while size < n_new + 1:
            size *= 2
            depth += 1
        if size != n_new + 1 or depth < 1:
            raise InvalidQuorumSystemError(
                f"{construction} needs n = 2^(depth+1) - 1; no such depth for n={n_new}"
            )
        resized["depth"] = depth - 1
        return resized
    if "n" in params:
        if "k" in params and int(params["k"]) > n_new:
            raise InvalidQuorumSystemError(
                f"{construction} threshold k={params['k']} exceeds epoch size n={n_new}"
            )
        resized["n"] = n_new
        return resized
    raise InvalidQuorumSystemError(
        f"{construction} has no size parameter to recompute for n={n_new}"
    )


def _registry_rebind(system: QuorumSystem, epoch: Epoch) -> QuorumSystem | None:
    """Rebuild a registered construction at the epoch's size, or ``None``.

    The registry is the component that knows each construction's parameters;
    it is imported lazily because the facade imports core at module load
    (this function only runs long after both packages exist).
    """
    from repro.api import registry as registry_mod  # local: api imports core

    try:
        spec = registry_mod.spec_of(system)
    except Exception:  # noqa: BLE001 -- unregistered systems fall through  # repro-lint: disable=R3 -- spec_of's InvalidParameterError is the expected miss; re-raising would make every explicit system an error
        return None
    if epoch.n == system.universe.size and epoch.universe == system.universe:
        return system
    params = _resized_params(spec.construction, spec.params, epoch.n)
    rebuilt = registry_mod.build(registry_mod.SystemSpec(spec.construction, params))
    if rebuilt.universe == epoch.universe:
        return rebuilt
    return ReboundQuorumSystem(rebuilt, epoch.universe, epoch_index=epoch.index)


def rebind_system(
    system: QuorumSystem,
    epoch: Epoch,
    *,
    resize: Callable[[int], QuorumSystem] | None = None,
) -> QuorumSystem:
    """Recompute ``system`` as a pure function of the epoch's membership.

    Dispatch, in order:

    1. the epoch's universe equals the system's — return it unchanged (the
       common epoch-0 case, and any re-join that restores a configuration);
    2. an :class:`~repro.core.quorum_system.ImplicitQuorumSystem` rebinds
       its base construction and re-wraps with the same sample budget and
       seed (the sample itself is epoch-fresh: it is drawn from the rebound
       base);
    3. a ``resize`` callback, when given, builds the same family at the
       epoch's size over any universe; the result is relabelled onto the
       members;
    4. a registry construction is rebuilt with parameters recomputed for
       the epoch's ``n`` (:func:`_resized_params`) and relabelled;
    5. anything else (explicit/composed systems) keeps its quorum family
       restricted to the quorums its surviving members can still form —
       joins extend the universe with idle spares, severs drop every quorum
       that lost a member.

    Raises
    ------
    InvalidQuorumSystemError
        When the family has no configuration of the epoch's size (e.g. a
        grid asked for a non-square ``n``), or when a sever leaves an
        explicit system with no quorum at all.
    """
    if epoch.universe == system.universe:
        return system
    if isinstance(system, ImplicitQuorumSystem):
        rebased = rebind_system(system.base, epoch, resize=resize)
        return ImplicitQuorumSystem(
            rebased, num_samples=system.num_samples, seed=system.seed
        )
    if resize is not None:
        rebuilt = resize(epoch.n)
        if rebuilt.universe == epoch.universe:
            return rebuilt
        return ReboundQuorumSystem(rebuilt, epoch.universe, epoch_index=epoch.index)
    rebound = _registry_rebind(system, epoch)
    if rebound is not None:
        return rebound
    return _restrict_explicit(system, epoch)


def _restrict_explicit(system: QuorumSystem, epoch: Epoch) -> ExplicitQuorumSystem:
    """Fallback rebind for unregistered systems: keep the surviving quorums."""
    member_set = epoch.member_set()
    survivors = [
        quorum
        for quorum in system.quorums()  # repro-lint: disable=R2 -- rebind cold path, runs once per (system, epoch)
        if quorum <= member_set
    ]
    if not survivors:
        raise InvalidQuorumSystemError(
            f"severing {sorted(epoch.severed, key=repr)} leaves {system.name} "
            f"with no quorum in epoch {epoch.index}"
        )
    return ExplicitQuorumSystem(
        epoch.universe,
        survivors,
        name=f"{system.name}@e{epoch.index}",
        validate=False,
    )


def severed_between(
    membership: Membership, start: int, end: int
) -> frozenset:
    """Servers severed anywhere in the epoch range ``[start, end]``.

    Used by the epoch-boundary history rules: a quorum acknowledged by a
    server severed in a covering epoch is evidence of a stale configuration.
    """
    combined: set[Hashable] = set()
    for index in range(max(0, start), min(end, membership.num_epochs - 1) + 1):
        combined |= membership.epoch(index).severed
    return frozenset(combined)


def plan_events(
    universe: Universe, steps: Sequence[tuple[str, int]]
) -> tuple[MembershipEvent, ...]:
    """Expand count-based reconfiguration steps into explicit events.

    Each step is ``(kind, count)``: ``"sever"`` evicts the last ``count``
    members of the *current* order (deterministic, no RNG), ``"join"``
    re-admits the most recently severed block — in its original relative
    order, so a sever/re-join round trip restores the universe exactly —
    and then mints fresh ids ``"j<epoch>.<i>"`` once the severed pool is
    exhausted.  This is the JSON-stable shape
    :class:`repro.api.membership.MembershipSpec` builds from.
    """
    members = list(universe.elements)
    severed_stack: list[Hashable] = []
    events: list[MembershipEvent] = []
    for step_index, (kind, count) in enumerate(steps):
        count = int(count)
        if count < 1:
            raise InvalidQuorumSystemError(
                f"step {step_index}: count must be >= 1, got {count}"
            )
        if kind == "sever":
            if count >= len(members):
                raise InvalidQuorumSystemError(
                    f"step {step_index}: severing {count} of {len(members)} "
                    "members would empty the universe"
                )
            victims = tuple(members[-count:])
            members = members[:-count]
            severed_stack.extend(victims)
            events.append(MembershipEvent(kind="sever", servers=victims))
        elif kind == "join":
            take = min(count, len(severed_stack))
            # Re-admit the most recently severed block, keeping its original
            # relative order so a sever/re-join round trip restores the
            # universe (and rebinding recognises the restored configuration).
            joiners: list[Hashable] = list(severed_stack[len(severed_stack) - take:])
            del severed_stack[len(severed_stack) - take:]
            fresh = 0
            while len(joiners) < count:
                joiners.append(f"j{step_index + 1}.{fresh}")
                fresh += 1
            members.extend(joiners)
            events.append(MembershipEvent(kind="join", servers=tuple(joiners)))
        else:
            raise InvalidQuorumSystemError(
                f"step {step_index}: kind must be one of {EVENT_KINDS}, got {kind!r}"
            )
    return tuple(events)
