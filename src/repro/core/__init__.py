"""Core quorum-system model: universes, quorum systems, measures, and bounds.

This package implements Sections 3 and 4 of the paper: the quorum-system
abstraction, the load and availability measures, the lower bounds on both,
and quorum composition.
"""

from repro.core.analytic import (
    analytic_failure_probability,
    analytic_load,
    crumbling_wall_failure_probability,
    rowcol_survival_probability,
)
from repro.core.availability import (
    AvailabilityResult,
    exact_failure_probability,
    failure_probability,
    inclusion_exclusion_failure_probability,
    is_condorcet_sequence,
    monte_carlo_failure_probability,
)
from repro.core.bitset import BitsetEngine, mask_of, mask_to_frozenset, masks_of
from repro.core.bounds import (
    crash_probability_lower_bound,
    crash_probability_lower_bound_for_system,
    load_lower_bound,
    load_lower_bound_for_system,
    load_optimality_ratio,
    optimal_quorum_size,
    resilience_upper_bound_from_load,
)
from repro.core.composition import ComposedQuorumSystem, compose, self_compose
from repro.core.load import LoadResult, best_known_load, exact_load, fair_load, load_of_strategy
from repro.core.masking import MaskingReport, masking_report, verify_masking
from repro.core.membership import (
    Epoch,
    Membership,
    MembershipEvent,
    ReboundQuorumSystem,
    plan_events,
    rebind_system,
    severed_between,
)
from repro.core.quorum_system import (
    ExplicitQuorumSystem,
    ImplicitQuorumSystem,
    QuorumSystem,
)
from repro.core.strategy import Strategy
from repro.core.transversal import (
    greedy_transversal,
    is_transversal,
    minimal_transversal,
    minimal_transversal_size,
)
from repro.core.universe import Universe

__all__ = [
    "AvailabilityResult",
    "BitsetEngine",
    "ComposedQuorumSystem",
    "Epoch",
    "ExplicitQuorumSystem",
    "ImplicitQuorumSystem",
    "LoadResult",
    "MaskingReport",
    "Membership",
    "MembershipEvent",
    "QuorumSystem",
    "ReboundQuorumSystem",
    "Strategy",
    "Universe",
    "analytic_failure_probability",
    "analytic_load",
    "best_known_load",
    "compose",
    "crash_probability_lower_bound",
    "crumbling_wall_failure_probability",
    "crash_probability_lower_bound_for_system",
    "exact_failure_probability",
    "exact_load",
    "failure_probability",
    "fair_load",
    "greedy_transversal",
    "inclusion_exclusion_failure_probability",
    "is_condorcet_sequence",
    "is_transversal",
    "load_lower_bound",
    "load_lower_bound_for_system",
    "load_of_strategy",
    "load_optimality_ratio",
    "mask_of",
    "mask_to_frozenset",
    "masking_report",
    "masks_of",
    "minimal_transversal",
    "minimal_transversal_size",
    "monte_carlo_failure_probability",
    "optimal_quorum_size",
    "plan_events",
    "rebind_system",
    "resilience_upper_bound_from_load",
    "rowcol_survival_probability",
    "self_compose",
    "severed_between",
    "verify_masking",
]
