"""Float comparison helpers at the library's declared ``1e-9`` tolerance.

The analytic closed forms and the exact enumeration/LP engines agree to
``1e-9``, not exactly (:mod:`repro.core.analytic` cross-validation), so an
exact ``==`` between computed floats promises a tolerance of zero that no
measure path provides.  Lint rule R4 bans ``==``/``!=`` against float
expressions in ``src/repro``; these helpers are the sanctioned replacement
and the single definition of the tolerance.
"""

from __future__ import annotations

__all__ = ["TOLERANCE", "is_zero", "isclose"]

#: The library-wide absolute comparison slack: the cross-validation bound of
#: the analytic layer and the probability-sum tolerance of strategies.
TOLERANCE: float = 1e-9


def isclose(a: float, b: float, *, tol: float = TOLERANCE) -> bool:
    """Return whether ``a`` and ``b`` agree within absolute ``tol``.

    Absolute (not relative) comparison on purpose: the compared quantities
    are probabilities and loads in ``[0, 1]``, where the paper-bound
    cross-validations are stated as absolute ``1e-9`` envelopes.
    """
    return abs(a - b) <= tol


def is_zero(value: float, *, tol: float = TOLERANCE) -> bool:
    """Return whether ``value`` is zero within absolute ``tol``."""
    return abs(value) <= tol
