"""Transversals (hitting sets) of set systems.

A *transversal* of a quorum system ``Q`` is a set ``T`` that intersects every
quorum (Definition 3.3).  The size of the smallest transversal, ``MT(Q)``,
determines the resilience of the system: ``f = MT(Q) - 1`` (the remark after
Definition 3.4), because crashing a full minimal transversal disables every
quorum, while any smaller crash set leaves some quorum untouched.

Computing a minimum hitting set is NP-hard in general, so this module offers
three procedures:

* :func:`minimal_transversal` — exact solution.  The default engine encodes
  the problem as a small binary integer program solved by HiGHS
  (:func:`scipy.optimize.milp`); a pure-Python branch-and-bound engine is
  also available (``engine="branch-and-bound"``) and serves as an
  independent cross-check in the test-suite.
* :func:`greedy_transversal` — the classical ``ln m`` approximation, used as
  an upper bound and as the branch-and-bound incumbent.
* :func:`is_transversal` — verification helper.

All functions operate on plain collections of ``frozenset`` so that they can
be reused by the percolation and simulation subsystems without importing the
quorum-system abstraction; internally the reduction and the integer-program
assembly run on local bitmasks (:mod:`repro.core.bitset` helpers).

See ``docs/notation.md`` for the notation glossary (MT, transversal, f).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Collection, Hashable, Iterable

import numpy as np
from scipy import optimize, sparse

from repro.core import bitset as bitset_mod
from repro.exceptions import ComputationError

__all__ = [
    "is_transversal",
    "greedy_transversal",
    "minimal_transversal",
    "minimal_transversal_size",
]


def is_transversal(candidate: Collection[Hashable], sets: Iterable[frozenset]) -> bool:
    """Return ``True`` when ``candidate`` intersects every set in ``sets``."""
    members = frozenset(candidate)
    return all(members & group for group in sets)


def greedy_transversal(sets: Collection[frozenset]) -> frozenset:
    """Return a transversal built by repeatedly picking the most frequent element.

    The result is an upper bound on the minimum transversal; it is within a
    logarithmic factor of optimal, which is good enough to seed the exact
    branch-and-bound search with a useful incumbent.
    """
    remaining = [frozenset(group) for group in sets]
    chosen: set[Hashable] = set()
    while remaining:
        counts: Counter[Hashable] = Counter()
        for group in remaining:
            counts.update(group)
        element, _ = counts.most_common(1)[0]
        chosen.add(element)
        remaining = [group for group in remaining if element not in group]
    return frozenset(chosen)


def _local_masks(groups: list[frozenset]) -> list[int]:
    """Encode ``groups`` as bitmasks over a local first-seen element order.

    The transversal routines accept bare collections of frozensets (no
    universe attached), so a throwaway index is built on the fly; only
    subset/intersection *relations* are read off the masks, never element
    identities, so the order is irrelevant.
    """
    index: dict[Hashable, int] = {}
    masks: list[int] = []
    for group in groups:
        mask = 0
        for element in group:
            position = index.setdefault(element, len(index))
            mask |= 1 << position
        masks.append(mask)
    return masks


def _reduce_sets(sets: Collection[frozenset]) -> list[frozenset]:
    """Deduplicate and drop supersets (they never constrain the optimum).

    Subset tests run on local bitmasks (``small & big == small``) rather than
    frozenset comparisons; the surviving groups and their order are the same.
    """
    unique = sorted(set(sets), key=len)
    masks = _local_masks(unique)
    reduced: list[frozenset] = []
    reduced_masks: list[int] = []
    for group, mask in zip(unique, masks):
        if not any(smaller & mask == smaller for smaller in reduced_masks):
            reduced.append(group)
            reduced_masks.append(mask)
    return reduced


def _minimal_transversal_milp(reduced: list[frozenset]) -> frozenset:
    """Solve the minimum hitting set as a binary integer program (HiGHS)."""
    elements = sorted({element for group in reduced for element in group}, key=repr)
    index = {element: position for position, element in enumerate(elements)}

    # Assemble the coverage matrix through the bitmask incidence helper: one
    # mask per set over the sorted element order, unpacked to rows/columns in
    # a single vectorised pass.
    masks = [
        sum(1 << index[element] for element in group) for group in reduced
    ]
    incidence = bitset_mod.incidence_from_masks(masks, len(elements))
    rows, columns = np.nonzero(incidence)
    coverage = sparse.csr_matrix(
        (np.ones(len(rows)), (rows, columns)), shape=(len(reduced), len(elements))
    )

    constraints = optimize.LinearConstraint(coverage, lb=1, ub=np.inf)
    integrality = np.ones(len(elements))
    bounds = optimize.Bounds(0, 1)
    result = optimize.milp(
        c=np.ones(len(elements)),
        constraints=constraints,
        integrality=integrality,
        bounds=bounds,
    )
    if not result.success:
        raise ComputationError(f"hitting-set integer program failed: {result.message}")
    chosen = frozenset(
        element for element, position in index.items() if result.x[position] > 0.5
    )
    if not is_transversal(chosen, reduced):
        raise ComputationError("integer program returned a non-transversal (numerical issue)")
    return chosen


def _smallest_uncovered(sets: list[frozenset], chosen: set[Hashable]) -> frozenset | None:
    """Return the smallest set not yet hit by ``chosen`` (or ``None``)."""
    best: frozenset | None = None
    for group in sets:
        if chosen & group:
            continue
        if best is None or len(group) < len(best):
            best = group
            if len(best) == 1:
                break
    return best


def _minimal_transversal_branch_and_bound(reduced: list[frozenset]) -> frozenset:
    """Exact search branching on the smallest uncovered set, pruned by the incumbent."""
    best = greedy_transversal(reduced)

    def search(chosen: set[Hashable]) -> None:
        nonlocal best
        if len(chosen) >= len(best):
            return
        target = _smallest_uncovered(reduced, chosen)
        if target is None:
            best = frozenset(chosen)
            return
        for element in sorted(target, key=repr):
            chosen.add(element)
            search(chosen)
            chosen.remove(element)

    search(set())
    return best


def minimal_transversal(
    sets: Collection[frozenset],
    *,
    engine: str = "milp",
    max_sets: int = 100_000,
) -> frozenset:
    """Return a minimum-cardinality transversal of ``sets``.

    Parameters
    ----------
    sets:
        The sets to hit.  Must be non-empty sets; an empty input collection
        has the empty set as its (trivial) transversal.
    engine:
        ``"milp"`` (default; binary integer program solved by HiGHS) or
        ``"branch-and-bound"`` (pure Python, only sensible for small
        instances but independent of scipy — used as a cross-check).
    max_sets:
        Guard against running an exact algorithm over an absurdly large
        quorum list.

    Returns
    -------
    frozenset
        A smallest transversal.  ``MT`` is its length.
    """
    groups = [frozenset(group) for group in sets]
    if not groups:
        return frozenset()
    if any(not group for group in groups):
        raise ComputationError("cannot hit an empty set; no transversal exists")
    if len(groups) > max_sets:
        raise ComputationError(
            f"refusing exact transversal search over {len(groups)} sets "
            f"(limit {max_sets}); use greedy_transversal or an analytic bound"
        )

    reduced = _reduce_sets(groups)
    if engine == "milp":
        return _minimal_transversal_milp(reduced)
    if engine == "branch-and-bound":
        return _minimal_transversal_branch_and_bound(reduced)
    raise ComputationError(f"unknown transversal engine {engine!r}")


def minimal_transversal_size(
    sets: Collection[frozenset],
    *,
    engine: str = "milp",
    max_sets: int = 100_000,
) -> int:
    """Return ``MT``, the size of the smallest transversal of ``sets``."""
    return len(minimal_transversal(sets, engine=engine, max_sets=max_sets))
