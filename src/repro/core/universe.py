"""The universe of servers over which quorum systems are constructed.

The paper assumes a universe ``U`` of ``n`` servers (Section 3).  Elements of
the universe may be any hashable Python objects; the constructions in
:mod:`repro.constructions` use integers or integer pairs ``(row, column)``.

:class:`Universe` is an immutable, ordered view of a set of elements.  It
offers index lookups in both directions (element to index and index to
element), which the load and availability computations use to map servers to
vector positions, and which fixes the bit order of the quorum bitmasks in
:mod:`repro.core.bitset`.

See ``docs/notation.md`` for the notation glossary.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Sequence

from repro.exceptions import InvalidQuorumSystemError

__all__ = ["Universe"]


class Universe:
    """An immutable, ordered universe of servers.

    Parameters
    ----------
    elements:
        The servers.  Duplicates are rejected because a quorum system is
        defined over a *set* of servers.  The iteration order of ``elements``
        is preserved, so constructions can present their servers in a
        human-meaningful order (e.g. row-major grid order).

    Examples
    --------
    >>> u = Universe(range(5))
    >>> len(u)
    5
    >>> u.index_of(3)
    3
    >>> u.element_at(0)
    0
    """

    __slots__ = ("_elements", "_index")

    def __init__(self, elements: Iterable[Hashable]):
        ordered = tuple(elements)
        index: dict[Hashable, int] = {}
        for position, element in enumerate(ordered):
            if element in index:
                raise InvalidQuorumSystemError(
                    f"duplicate element {element!r} in universe"
                )
            index[element] = position
        if not ordered:
            raise InvalidQuorumSystemError("a universe must contain at least one server")
        self._elements = ordered
        self._index = index

    @classmethod
    def of_size(cls, n: int) -> "Universe":
        """Return the canonical universe ``{0, 1, ..., n - 1}``."""
        if n <= 0:
            raise InvalidQuorumSystemError(f"universe size must be positive, got {n}")
        return cls(range(n))

    @property
    def elements(self) -> tuple[Hashable, ...]:
        """The servers, in their declared order."""
        return self._elements

    @property
    def size(self) -> int:
        """The number of servers ``n = |U|``."""
        return len(self._elements)

    def index_of(self, element: Hashable) -> int:
        """Return the position of ``element`` in the declared order."""
        try:
            return self._index[element]
        except KeyError:
            raise InvalidQuorumSystemError(
                f"element {element!r} is not part of this universe"
            ) from None

    def element_at(self, index: int) -> Hashable:
        """Return the server at ``index`` in the declared order."""
        return self._elements[index]

    def indices_of(self, elements: Iterable[Hashable]) -> tuple[int, ...]:
        """Return the positions of several elements, in iteration order."""
        return tuple(self.index_of(element) for element in elements)

    def as_frozenset(self) -> frozenset:
        """Return the universe as a frozenset (order discarded)."""
        return frozenset(self._elements)

    def subset(self, elements: Iterable[Hashable]) -> frozenset:
        """Validate that ``elements`` all belong to the universe and return them.

        Raises
        ------
        InvalidQuorumSystemError
            If any element is not a member of the universe.
        """
        subset = frozenset(elements)
        for element in subset:
            if element not in self._index:
                raise InvalidQuorumSystemError(
                    f"element {element!r} is not part of this universe"
                )
        return subset

    def __contains__(self, element: Hashable) -> bool:
        return element in self._index

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Universe):
            return NotImplemented
        return self._elements == other._elements

    def __hash__(self) -> int:
        return hash(self._elements)

    def __repr__(self) -> str:
        if self.size <= 8:
            return f"Universe({list(self._elements)!r})"
        head = ", ".join(repr(element) for element in self._elements[:4])
        return f"Universe([{head}, ...], size={self.size})"

    def relabel(self, prefix: Hashable) -> "Universe":
        """Return a copy whose elements are tagged with ``prefix``.

        Used by quorum composition (Definition 4.6), where each element of
        the outer system is replaced by a *disjoint* copy of the inner
        system's universe.  Tagging guarantees disjointness.
        """
        return Universe((prefix, element) for element in self._elements)

    @staticmethod
    def disjoint_union(universes: Sequence["Universe"]) -> "Universe":
        """Return the union of several universes, which must be disjoint."""
        combined: list[Hashable] = []
        for universe in universes:
            combined.extend(universe.elements)
        return Universe(combined)
