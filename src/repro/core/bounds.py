"""Lower bounds on the load and availability of b-masking quorum systems.

This module implements the bounds of Section 4.1 of the paper:

* Theorem 4.1 — ``L(Q) >= max{(2b+1)/c(Q), c(Q)/n}`` for any ``b``-masking
  quorum system ``Q``.
* Corollary 4.2 — ``L(Q) >= sqrt((2b+1)/n)``, with equality when
  ``c(Q) = sqrt((2b+1) n)``.
* Proposition 4.3 — ``Fp(Q) >= p^(MT(Q)) = p^(f+1)``.
* Proposition 4.4 — ``Fp(Q) >= p^(c(Q) - 2b)``.
* Proposition 4.5 — ``Fp(Q) >= p^(b+1)`` when ``MT(Q) <= (IS(Q)+1)/2``.

In addition it exposes the *resilience/load trade-off* noted in Section 8:
``f <= n·L(Q)``, which follows from ``f <= c(Q)`` and Theorem 4.1.

All functions take plain numeric parameters so that they can be evaluated for
systems that are too large to enumerate; convenience wrappers taking a
:class:`~repro.core.quorum_system.QuorumSystem` are also provided.

See ``docs/notation.md`` for the notation glossary.
"""

from __future__ import annotations

import math

from repro.core.floats import is_zero
from repro.core.quorum_system import QuorumSystem
from repro.exceptions import ComputationError, InvalidParameterError

__all__ = [
    "load_lower_bound",
    "load_lower_bound_for_system",
    "optimal_quorum_size",
    "crash_probability_lower_bound",
    "crash_probability_lower_bound_for_system",
    "resilience_upper_bound_from_load",
    "load_optimality_ratio",
]


def load_lower_bound(n: int, b: int, quorum_size: int | None = None) -> float:
    """Return the Theorem 4.1 / Corollary 4.2 lower bound on the load.

    Parameters
    ----------
    n:
        Number of servers.
    b:
        Masking parameter of the system.
    quorum_size:
        ``c(Q)`` when known.  With it, the bound is Theorem 4.1's
        ``max{(2b+1)/c, c/n}``; without it, the universal Corollary 4.2
        bound ``sqrt((2b+1)/n)`` is returned.
    """
    if n <= 0:
        raise ComputationError(f"universe size must be positive, got {n}")
    if b < 0:
        raise ComputationError(f"masking parameter must be >= 0, got {b}")
    if quorum_size is None:
        return math.sqrt((2 * b + 1) / n)
    if quorum_size <= 0 or quorum_size > n:
        raise ComputationError(f"quorum size {quorum_size} is not in [1, {n}]")
    return max((2 * b + 1) / quorum_size, quorum_size / n)


def load_lower_bound_for_system(system: QuorumSystem, b: int | None = None) -> float:
    """Return Theorem 4.1's bound evaluated on ``system``.

    When ``b`` is omitted the system's own masking bound (Corollary 3.7) is
    used.
    """
    if b is None:
        b = system.masking_bound()
    return load_lower_bound(system.n, b, system.min_quorum_size())


def optimal_quorum_size(n: int, b: int) -> float:
    """Return the quorum size ``sqrt((2b+1) n)`` at which Corollary 4.2 is tight."""
    if n <= 0 or b < 0:
        raise ComputationError(f"invalid parameters n={n}, b={b}")
    return math.sqrt((2 * b + 1) * n)


def crash_probability_lower_bound(
    p: float,
    *,
    min_transversal: int | None = None,
    quorum_size: int | None = None,
    b: int | None = None,
    balanced: bool = False,
) -> float:
    """Return the strongest applicable lower bound on ``Fp``.

    The three bounds of Propositions 4.3–4.5 are evaluated with whatever
    parameters are supplied and the largest (i.e. strongest) is returned:

    * ``p^MT``            — needs ``min_transversal`` (Proposition 4.3);
    * ``p^(c - 2b)``      — needs ``quorum_size`` and ``b`` (Proposition 4.4);
    * ``p^(b+1)``         — needs ``b`` and ``balanced=True``, meaning the
      system satisfies ``MT <= (IS+1)/2`` (Proposition 4.5).
    """
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"crash probability must lie in [0, 1], got {p}")
    candidates: list[float] = []
    if min_transversal is not None:
        if min_transversal <= 0:
            raise ComputationError(f"MT must be positive, got {min_transversal}")
        candidates.append(p ** min_transversal)
    if quorum_size is not None and b is not None:
        exponent = quorum_size - 2 * b
        if exponent <= 0:
            raise ComputationError(
                f"quorum size {quorum_size} must exceed 2b = {2 * b} for a b-masking system"
            )
        candidates.append(p ** exponent)
    if balanced and b is not None:
        candidates.append(p ** (b + 1))
    if not candidates:
        raise ComputationError("no parameters supplied; cannot evaluate any bound")
    return max(candidates)


def crash_probability_lower_bound_for_system(
    system: QuorumSystem, p: float, b: int | None = None
) -> float:
    """Evaluate Propositions 4.3–4.5 on an enumerable ``system``."""
    if b is None:
        b = system.masking_bound()
    min_transversal = system.min_transversal_size()
    intersection = system.min_intersection_size()
    return crash_probability_lower_bound(
        p,
        min_transversal=min_transversal,
        quorum_size=system.min_quorum_size(),
        b=b,
        balanced=min_transversal <= (intersection + 1) / 2,
    )


def resilience_upper_bound_from_load(n: int, load: float) -> float:
    """Return the Section 8 trade-off bound ``f <= n L(Q)``.

    Low load forces low resilience and vice versa; this is the impossibility
    the probabilistic quorum systems of [MRWW98] were later designed to
    evade.
    """
    if n <= 0:
        raise ComputationError(f"universe size must be positive, got {n}")
    if not 0.0 <= load <= 1.0:
        raise InvalidParameterError(f"load must lie in [0, 1], got {load}")
    return n * load


def load_optimality_ratio(n: int, b: int, achieved_load: float) -> float:
    """Return ``achieved_load / sqrt((2b+1)/n)``.

    A ratio of 1 means the system meets the Corollary 4.2 lower bound exactly;
    the paper calls a construction *load optimal* when this ratio is bounded
    by a constant as ``n`` grows.
    """
    bound = load_lower_bound(n, b)
    if is_zero(bound):
        raise ComputationError("degenerate lower bound of zero")
    return achieved_load / bound
