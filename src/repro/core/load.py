"""Load of a quorum system (Definition 3.8, Proposition 3.9).

The *load* ``L(Q)`` is the access probability of the busiest server under the
best possible access strategy.  It is a best-case, failure-free measure of
how well the system spreads work.

This module offers three ways to obtain the load:

* :func:`exact_load` — solve the defining linear program exactly with
  :func:`scipy.optimize.linprog`.  Feasible whenever the quorum list can be
  enumerated (a few tens of thousands of quorums).
* :func:`fair_load` — Proposition 3.9: a fair quorum system has
  ``L(Q) = c(Q) / n``.  This is a closed form, valid only for fair systems.
* :func:`best_known_load` — use the construction's own closed form when one
  exists, fall back to the fair formula, and finally to the LP.

The linear program is the standard one: variables are the strategy weights
``w_Q`` plus the load bound ``L``; minimise ``L`` subject to
``sum_{Q ∋ u} w_Q <= L`` for every server ``u`` and ``sum_Q w_Q = 1``.  The
LP's incidence matrix comes from the bitmask engine
(:mod:`repro.core.bitset`), built once per system and cached.

See ``docs/notation.md`` for the full paper-notation glossary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.core.quorum_system import QuorumSystem
from repro.core.strategy import Strategy
from repro.exceptions import ComputationError

__all__ = ["LoadResult", "exact_load", "fair_load", "best_known_load", "load_of_strategy"]


@dataclass(frozen=True)
class LoadResult:
    """The outcome of a load computation.

    Attributes
    ----------
    load:
        The value of ``L(Q)`` (or an upper bound, depending on the method).
    strategy:
        A strategy achieving ``load``, when the method produces one.
    method:
        Which procedure produced the value (``"lp"``, ``"fair"``,
        ``"analytic"`` or ``"strategy"``).
    """

    load: float
    strategy: Strategy | None
    method: str


def load_of_strategy(system: QuorumSystem, strategy: Strategy) -> float:
    """Return the load induced on ``system`` by ``strategy`` (Definition 3.8)."""
    return strategy.induced_system_load(system.universe)


def fair_load(system: QuorumSystem) -> LoadResult:
    """Return ``c(Q)/n`` for a fair system (Proposition 3.9).

    Raises
    ------
    ComputationError
        If the system is not fair, in which case the formula does not apply.
    """
    fairness = system.fairness()
    if fairness is None:
        raise ComputationError(
            f"{system.name} is not a fair quorum system; Proposition 3.9 does not apply"
        )
    quorum_size, _ = fairness
    quorum_list = system.quorums()
    strategy = Strategy.uniform(quorum_list)
    return LoadResult(load=quorum_size / system.n, strategy=strategy, method="fair")


def exact_load(system: QuorumSystem, *, quorum_limit: int | None = 50_000) -> LoadResult:
    """Return the exact load of ``system`` by solving the defining LP.

    Parameters
    ----------
    system:
        The quorum system; its quorums must be enumerable.
    quorum_limit:
        Guard on the number of quorums the LP is allowed to contain
        (``None`` lifts the budget and defers to the system's own
        enumeration guards).

    Returns
    -------
    LoadResult
        The optimal load and an optimal strategy realising it.

    Notes
    -----
    Quorum systems are immutable and the LP is deterministic, so the result
    is memoised on the system object (like the quorum list itself): repeated
    load queries against the same system pay for one solve.  As with
    ``QuorumSystem.quorums``, a cached result is returned without re-checking
    ``quorum_limit``.
    """
    cached = getattr(system, "_exact_load_cache", None)
    if cached is not None:
        return cached
    if getattr(system, "is_implicit", False):
        # An implicit system's quorums() is a *sampled sub-family*: solving
        # the LP over it would silently report the sample's load as L(Q).
        # If the base family fits the budget, solve the real LP on the base;
        # otherwise refuse loudly (this used to be an OOM/hang).
        base = system.base
        try:
            base_count = base.num_quorums()
        except ComputationError:
            base_count = None
        # quorum_limit=None means "no budget": delegate and let the base's
        # own enumeration guards speak.
        if quorum_limit is not None and (base_count is None or base_count > quorum_limit):
            described = "unknown" if base_count is None else f"{base_count}"
            raise ComputationError(
                f"{system.name} is an implicit system whose base family "
                f"({described} quorums) exceeds the exact-LP enumeration "
                f"budget of {quorum_limit}; use "
                "repro.core.analytic.analytic_load for the closed form or "
                "system.support_strategy() for the sampled strategy"
            )
        return exact_load(base, quorum_limit=quorum_limit)
    # Prime the quorum and mask caches under the caller's limit so both the
    # strategy construction and the engine build honour it, then reuse the
    # engine's incidence matrix (built once per system); repeated load
    # computations only pay for the LP itself.
    system.quorums(limit=quorum_limit)
    system.quorum_masks(limit=quorum_limit)
    incidence = system.bitset_engine().incidence_matrix().astype(float)  # shape (m, n)
    num_quorums, num_elements = incidence.shape

    # Variables: [w_1, ..., w_m, L].  Minimise L.
    objective = np.zeros(num_quorums + 1)
    objective[-1] = 1.0

    # For every element u: sum_{Q ∋ u} w_Q - L <= 0.
    upper_matrix = np.hstack([incidence.T, -np.ones((num_elements, 1))])
    upper_bounds = np.zeros(num_elements)

    # sum_Q w_Q = 1.
    equality_matrix = np.zeros((1, num_quorums + 1))
    equality_matrix[0, :num_quorums] = 1.0
    equality_rhs = np.array([1.0])

    bounds = [(0.0, None)] * num_quorums + [(0.0, 1.0)]

    result = optimize.linprog(
        objective,
        A_ub=upper_matrix,
        b_ub=upper_bounds,
        A_eq=equality_matrix,
        b_eq=equality_rhs,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise ComputationError(f"load LP failed for {system.name}: {result.message}")

    weights = np.clip(result.x[:num_quorums], 0.0, None)
    strategy = Strategy.from_vector(system, weights, normalise=True)
    load_value = float(result.x[-1])
    load_result = LoadResult(load=load_value, strategy=strategy, method="lp")
    system._exact_load_cache = load_result
    return load_result


def best_known_load(system: QuorumSystem) -> LoadResult:
    """Return the best available load value for ``system``.

    Preference order:

    1. A construction-provided closed form (a ``load()`` method on the
       system object), reported with method ``"analytic"``.
    2. The fair-system formula of Proposition 3.9.
    3. The exact linear program.
    """
    analytic = getattr(system, "load", None)
    if callable(analytic):
        return LoadResult(load=float(analytic()), strategy=None, method="analytic")
    try:
        return fair_load(system)
    except ComputationError:
        pass
    return exact_load(system)
