"""Access strategies over quorum systems (Definition 3.8, first half).

An access strategy ``w`` is a probability distribution over the quorums of a
system: ``w(Q) >= 0`` and ``sum_Q w(Q) = 1``.  The *load induced on an
element* ``u`` is ``l_w(u) = sum_{Q ∋ u} w(Q)``; the load induced on the
system is the maximum over elements.  The system load (the paper's ``L(Q)``)
is the minimum of the induced load over all strategies, computed in
:mod:`repro.core.load`.

See ``docs/notation.md`` for the notation glossary (w, l_w(u), L(Q)).
"""

from __future__ import annotations

from collections.abc import Hashable, ItemsView, Iterable, Mapping

import numpy as np

from repro.core import bitset as bitset_mod
from repro.core.quorum_system import QuorumSystem
from repro.core.universe import Universe
from repro.exceptions import StrategyError

__all__ = ["Strategy"]

#: Probabilities are accepted as valid when they sum to one within this slack.
_PROBABILITY_TOLERANCE = 1e-9


class Strategy:
    """A probability distribution over quorums.

    Parameters
    ----------
    weights:
        Mapping from quorum (any iterable of elements; normalised to
        ``frozenset``) to its access probability.  Quorums with zero weight
        may be omitted.
    normalise:
        When ``True``, rescale the weights to sum to one instead of rejecting
        a distribution that does not.

    Examples
    --------
    >>> w = Strategy({frozenset({0, 1}): 0.5, frozenset({1, 2}): 0.5})
    >>> w.probability(frozenset({0, 1}))
    0.5
    """

    def __init__(
        self,
        weights: Mapping[Iterable[Hashable], float],
        *,
        normalise: bool = False,
    ):
        cleaned: dict[frozenset, float] = {}
        for quorum, weight in weights.items():
            weight = float(weight)
            if weight < -_PROBABILITY_TOLERANCE:
                raise StrategyError(f"negative probability {weight} for quorum {set(quorum)}")
            if weight <= 0.0:
                continue
            key = frozenset(quorum)
            cleaned[key] = cleaned.get(key, 0.0) + weight
        if not cleaned:
            raise StrategyError("a strategy must give positive probability to some quorum")
        total = sum(cleaned.values())
        if normalise:
            cleaned = {quorum: weight / total for quorum, weight in cleaned.items()}
        elif abs(total - 1.0) > _PROBABILITY_TOLERANCE:
            raise StrategyError(f"strategy probabilities sum to {total}, expected 1")
        self._weights = cleaned
        # Sampling arrays, built once: the support as a tuple, the probability
        # vector over it, and its cumulative sums.  ``sample`` and
        # ``sample_many`` draw uniforms and invert the cumulative distribution,
        # so one scalar draw and one vectorised draw read the same stream.
        self._support_tuple: tuple[frozenset, ...] = tuple(cleaned)
        probabilities = np.fromiter(cleaned.values(), dtype=float, count=len(cleaned))
        probabilities /= probabilities.sum()
        probabilities.setflags(write=False)
        self._probabilities = probabilities
        cumulative = np.cumsum(probabilities)
        cumulative.setflags(write=False)
        self._cumulative = cumulative
        #: Caches of the mask-native views of the support (bitmask tuples and
        #: :class:`~repro.core.bitset.BitsetEngine`), keyed by
        #: ``(universe, epoch)`` rather than by universe identity alone: a
        #: reconfiguration can reuse a universe object while changing what the
        #: bit positions mean, so the epoch id must participate in the key for
        #: rebinding to never serve a stale inverse-CDF/mask cache.
        self._mask_cache: dict[tuple[Universe, int | None], tuple[int, ...]] = {}
        self._engine_cache: dict[tuple[Universe, int | None], bitset_mod.BitsetEngine] = {}

    # ------------------------------------------------------------------
    # Constructors.
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, quorums: Iterable[Iterable[Hashable]]) -> "Strategy":
        """Return the uniform strategy over the given quorums."""
        quorum_list = [frozenset(quorum) for quorum in quorums]
        if not quorum_list:
            raise StrategyError("cannot build a uniform strategy over no quorums")
        weight = 1.0 / len(quorum_list)
        return cls({quorum: weight for quorum in quorum_list})

    @classmethod
    def uniform_over_system(cls, system: QuorumSystem) -> "Strategy":
        """Return the uniform strategy over all quorums of ``system``."""
        return cls.uniform(system.quorums())  # repro-lint: disable=R2 -- constructor cold path; the frozenset family is the documented input surface here

    @classmethod
    def from_vector(
        cls, system: QuorumSystem, vector: np.ndarray, *, normalise: bool = True
    ) -> "Strategy":
        """Build a strategy from a weight vector aligned with ``system.quorums()``.

        When ``normalise`` is set the vector is rescaled by its *full* total
        before non-positive entries are dropped, and the surviving weights are
        then required to sum to one.  Truncating exact zeros therefore changes
        nothing, while a vector carrying meaningful negative mass is rejected
        (previously the negatives were silently dropped and their mass
        redistributed over the remaining quorums).
        """
        quorum_list = system.quorums()  # repro-lint: disable=R2 -- constructor cold path; the weight vector is aligned with the frozenset enumeration by contract
        vector = np.asarray(vector, dtype=float)
        if vector.ndim != 1 or len(vector) != len(quorum_list):
            raise StrategyError(
                f"weight vector has length {len(vector)}, expected {len(quorum_list)}"
            )
        if normalise:
            total = float(vector.sum())
            if total <= 0.0:
                raise StrategyError(
                    f"weight vector sums to {total}; cannot normalise a non-positive total"
                )
            vector = vector / total
        weights = {
            quorum: float(weight)
            for quorum, weight in zip(quorum_list, vector)
            if weight > 0.0
        }
        return cls(weights, normalise=False)

    @classmethod
    def from_masks(
        cls,
        universe: Universe,
        masks: Iterable[int],
        weights: Iterable[float] | None = None,
        *,
        normalise: bool = True,
    ) -> "Strategy":
        """Build a strategy directly from ``int`` bitmasks over ``universe``.

        This is the mask-native constructor the implicit layer uses
        (:meth:`repro.core.quorum_system.ImplicitQuorumSystem.support_strategy`):
        duplicated masks are merged by summing their weights, and the
        per-universe mask cache is primed so the sampling hot paths
        (:meth:`support_masks`, :meth:`support_engine`) never convert a
        frozenset back into a mask.

        Parameters
        ----------
        universe:
            The universe the mask bit positions refer to.
        masks:
            Quorum bitmasks; duplicates are allowed and merged.
        weights:
            Optional per-mask weights aligned with ``masks`` (uniform when
            omitted).
        normalise:
            Rescale the merged weights to sum to one (the default), or
            require them to already be a distribution.
        """
        mask_list = list(masks)
        if weights is None:
            weight_list = [1.0] * len(mask_list)
        else:
            weight_list = [float(weight) for weight in weights]
            if len(weight_list) != len(mask_list):
                raise StrategyError(
                    f"{len(mask_list)} masks but {len(weight_list)} weights"
                )
        merged: dict[int, float] = {}
        for mask, weight in zip(mask_list, weight_list):
            merged[mask] = merged.get(mask, 0.0) + weight
        quorum_weights = {
            bitset_mod.mask_to_frozenset(mask, universe): weight
            for mask, weight in merged.items()
        }
        strategy = cls(quorum_weights, normalise=normalise)
        # Prime the mask cache; the support keeps the merged dict's
        # first-seen order minus the non-positive weights __init__ dropped.
        strategy._mask_cache[universe, None] = tuple(
            mask for mask, weight in merged.items() if weight > 0.0
        )
        return strategy

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    @property
    def support(self) -> tuple[frozenset, ...]:
        """The quorums that receive positive probability."""
        return self._support_tuple

    def probability(self, quorum: Iterable[Hashable]) -> float:
        """Return the probability assigned to ``quorum`` (0 if unsupported)."""
        return self._weights.get(frozenset(quorum), 0.0)

    def items(self) -> ItemsView[frozenset, float]:
        """Iterate over ``(quorum, probability)`` pairs."""
        return self._weights.items()

    def validate_against(self, system: QuorumSystem) -> None:
        """Check that every supported set is a quorum of ``system``.

        Raises
        ------
        StrategyError
            If some supported set is not among the system's quorums.
        """
        quorum_set = set(system.quorums())  # repro-lint: disable=R2 -- one-off validation cold path, never on the sampling route
        for quorum in self._weights:
            if quorum not in quorum_set:
                raise StrategyError(
                    f"strategy assigns probability to {set(quorum)}, "
                    f"which is not a quorum of {system.name}"
                )

    # ------------------------------------------------------------------
    # Induced load (Definition 3.8).
    # ------------------------------------------------------------------
    def induced_loads(self, universe: Universe) -> dict[Hashable, float]:
        """Return ``l_w(u)`` for every element ``u`` of ``universe``.

        Raises
        ------
        StrategyError
            If some supported quorum contains an element outside ``universe``
            — a strategy/universe mismatch that would otherwise silently
            under-report the induced load.
        """
        loads = {element: 0.0 for element in universe}
        for quorum, weight in self._weights.items():
            for element in quorum:
                if element not in loads:
                    raise StrategyError(
                        f"strategy supports a quorum containing {element!r}, "
                        f"which is not part of the given universe"
                    )
                loads[element] += weight
        return loads

    def induced_system_load(self, universe: Universe) -> float:
        """Return ``L_w(Q) = max_u l_w(u)``, the load induced by this strategy."""
        return max(self.induced_loads(universe).values())

    # ------------------------------------------------------------------
    # Sampling (cached inverse-CDF arrays, shared by all sampling paths).
    # ------------------------------------------------------------------
    @property
    def probabilities(self) -> np.ndarray:
        """The probability vector over :attr:`support` (read-only, sums to 1)."""
        return self._probabilities

    def sample_index(self, rng: np.random.Generator) -> int:
        """Draw one support index according to the strategy (one uniform draw)."""
        draw = rng.random()
        index = np.searchsorted(
            self._cumulative, draw * self._cumulative[-1], side="right"
        )
        return min(int(index), len(self._support_tuple) - 1)

    def sample(self, rng: np.random.Generator) -> frozenset:
        """Draw one quorum according to the strategy."""
        return self._support_tuple[self.sample_index(rng)]

    def sample_many(
        self, rng: np.random.Generator, size: int | tuple[int, ...]
    ) -> np.ndarray:
        """Draw a batch of support indices according to the strategy.

        Parameters
        ----------
        rng:
            Randomness source; consumes ``np.prod(size)`` uniform draws, the
            same stream a loop of :meth:`sample_index` calls would consume.
        size:
            Output shape (an int or a shape tuple).

        Returns
        -------
        numpy.ndarray
            Integer indices into :attr:`support`, of the requested shape.
            Combine with :meth:`support_engine` to resolve them into bitmasks
            or incidence rows without building any frozensets.
        """
        draws = rng.random(size)
        indices = np.searchsorted(
            self._cumulative, draws * self._cumulative[-1], side="right"
        ).astype(np.int64)
        return np.minimum(indices, len(self._support_tuple) - 1)

    def support_masks(
        self, universe: Universe, *, epoch: int | None = None
    ) -> tuple[int, ...]:
        """The support quorums as ``int`` bitmasks over ``universe`` (cached).

        ``epoch`` distinguishes cache entries across reconfigurations: callers
        running inside a membership epoch pass its absolute index so a later
        epoch that happens to reuse an equal universe never reads a mask tuple
        computed under a different binding.
        """
        cached = self._mask_cache.get((universe, epoch))
        if cached is None:
            cached = bitset_mod.masks_of(self._support_tuple, universe)
            self._mask_cache[universe, epoch] = cached
        return cached

    def support_engine(
        self, universe: Universe, *, epoch: int | None = None
    ) -> bitset_mod.BitsetEngine:
        """A :class:`~repro.core.bitset.BitsetEngine` over the support (cached).

        Rows are support quorums in :attr:`support` order, so indices from
        :meth:`sample_many` index directly into its packed and incidence views.
        Like :meth:`support_masks`, the cache key is ``(universe, epoch)``.
        """
        cached = self._engine_cache.get((universe, epoch))
        if cached is None:
            cached = bitset_mod.BitsetEngine(
                universe, self.support_masks(universe, epoch=epoch)
            )
            self._engine_cache[universe, epoch] = cached
        return cached

    # ------------------------------------------------------------------
    # Epoch re-weighting.
    # ------------------------------------------------------------------
    def restricted_to(self, members: Iterable[Hashable]) -> "Strategy | None":
        """Re-weight this strategy over the quorums surviving a reconfiguration.

        Keeps exactly the supported quorums that are subsets of ``members``
        and renormalises their probabilities — the incremental re-weighting
        path on epoch change.  Returns ``None`` when no supported quorum
        survives, signalling the caller to fall back to a full re-solve.
        """
        member_set = frozenset(members)
        surviving = {
            quorum: weight
            for quorum, weight in self._weights.items()
            if quorum <= member_set
        }
        if not surviving:
            return None
        return Strategy(surviving, normalise=True)

    def __len__(self) -> int:
        return len(self._weights)

    def __repr__(self) -> str:
        return f"Strategy(support={len(self._weights)} quorums)"
