"""Availability of quorum systems: the crash probability ``Fp`` (Definition 3.10).

Assume each server crashes independently with probability ``p``.  A quorum is
*hit* when it contains at least one crashed server; the system fails when
every quorum is hit.  ``Fp(Q)`` is the probability of that event.  A family of
systems is *Condorcet* when ``Fp -> 0`` as ``n -> infinity`` for every
``p < 1/2``.

Three general-purpose estimators are provided (constructions additionally
expose their own closed forms or specialised simulators, e.g. percolation for
M-Path):

* :func:`exact_failure_probability` — sums over all ``2^n`` crash
  configurations.  Exponential, but exact; intended for ``n`` up to ~20.
* :func:`inclusion_exclusion_failure_probability` — inclusion–exclusion over
  the quorums (the minimal path sets of reliability theory).  Exponential in
  the *number of quorums*; intended for systems with up to ~22 quorums.
* :func:`monte_carlo_failure_probability` — vectorised Monte-Carlo estimate
  with a normal-approximation confidence interval.

:func:`failure_probability` dispatches between them (and a construction's own
``crash_probability`` method) based on system size.

The exact enumeration and the Monte-Carlo sampler both run on the bitmask
engine (:mod:`repro.core.bitset`): the former asks it for the superset-closure
survival table over all ``2^n`` alive-sets, the latter for the cached
incidence matrix.  See ``docs/notation.md`` for the notation glossary.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

from repro.core.quorum_system import QuorumSystem
from repro.core.rng import ensure_rng
from repro.exceptions import ComputationError, InvalidParameterError

__all__ = [
    "AvailabilityResult",
    "exact_failure_probability",
    "inclusion_exclusion_failure_probability",
    "monte_carlo_failure_probability",
    "failure_probability",
    "is_condorcet_sequence",
]


@dataclass(frozen=True)
class AvailabilityResult:
    """Outcome of a crash-probability estimation.

    Attributes
    ----------
    value:
        The estimate of ``Fp(Q)``.
    method:
        ``"exact"``, ``"inclusion-exclusion"``, ``"monte-carlo"`` or
        ``"analytic"``.
    std_error:
        Standard error of the estimate (zero for exact methods).
    trials:
        Number of Monte-Carlo trials (zero for exact methods).
    """

    value: float
    method: str
    std_error: float = 0.0
    trials: int = 0

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Return a two-sided normal-approximation confidence interval."""
        low = max(0.0, self.value - z * self.std_error)
        high = min(1.0, self.value + z * self.std_error)
        return low, high


def _validate_probability(p: float) -> float:
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"crash probability must lie in [0, 1], got {p}")
    return float(p)


def _reject_implicit(system: QuorumSystem, estimator: str) -> None:
    """Refuse to estimate Fp over an implicit system's sampled sub-family.

    An :class:`~repro.core.quorum_system.ImplicitQuorumSystem` exposes only a
    frozen *sample* of its quorums, so any estimator that walks the family
    would silently report the sample's failure probability (typically far
    above the real one — fewer quorums means fewer ways to survive).
    """
    if getattr(system, "is_implicit", False):
        raise ComputationError(
            f"{system.name} is an implicit system; {estimator} over its sampled "
            "sub-family would overestimate Fp.  Use "
            "repro.core.analytic.analytic_failure_probability (closed forms) "
            "or the base construction directly"
        )


def exact_failure_probability(
    system: QuorumSystem, p: float, *, max_universe: int = 22
) -> AvailabilityResult:
    """Return ``Fp(Q)`` exactly by enumerating crash configurations.

    The system survives a crash configuration exactly when some quorum
    contains no crashed server, so

    ``Fp(Q) = sum over crashed sets D of p^|D| (1-p)^(n-|D|) [every quorum meets D]``.

    The sum is organised over *alive* sets represented as bitmasks so the
    inner test is a subset check on integers.
    """
    _reject_implicit(system, "exact enumeration")
    p = _validate_probability(p)
    n = system.n
    if n > max_universe:
        raise ComputationError(
            f"exact enumeration over 2^{n} crash configurations refused "
            f"(limit n <= {max_universe}); use Monte-Carlo instead"
        )
    engine = system.bitset_engine()
    # The weight of an alive-set depends only on its cardinality; tabulating
    # the n + 1 possible weights and accumulating them sequentially in
    # alive-mask order reproduces the naive sum bit for bit.
    weights = [(1.0 - p) ** alive_count * p ** (n - alive_count) for alive_count in range(n + 1)]
    survive_probability = 0.0
    if n <= 26:
        # Survival of every alive-set at once: the superset-closure dynamic
        # program replaces the per-mask "some quorum is a subset" scan.
        survives = engine.subset_survival_table()
        alive_counts = np.bitwise_count(np.arange(1 << n, dtype=np.uint64)).astype(np.int64)
        for alive_count in alive_counts[survives].tolist():
            survive_probability += weights[alive_count]
    else:
        # A caller who raised max_universe beyond the table's memory comfort
        # zone gets the direct per-mask scan (same sum, same order).
        quorum_masks = engine.masks
        for alive_mask in range(1 << n):
            if any(mask & alive_mask == mask for mask in quorum_masks):
                survive_probability += weights[alive_mask.bit_count()]
    return AvailabilityResult(value=1.0 - survive_probability, method="exact")


def inclusion_exclusion_failure_probability(
    system: QuorumSystem, p: float, *, max_quorums: int = 22
) -> AvailabilityResult:
    """Return ``Fp(Q)`` exactly via inclusion–exclusion over quorums.

    ``P(some quorum alive) = sum_{∅ != S ⊆ Q} (-1)^(|S|+1) (1-p)^(|union of S|)``.

    Exact but exponential in the number of quorums; useful when the system
    has few quorums over a large universe (e.g. a finite projective plane).
    """
    _reject_implicit(system, "inclusion-exclusion")
    p = _validate_probability(p)
    quorum_masks = system.quorum_masks()
    if len(quorum_masks) > max_quorums:
        raise ComputationError(
            f"inclusion-exclusion over 2^{len(quorum_masks)} quorum subsets refused "
            f"(limit {max_quorums} quorums); use Monte-Carlo instead"
        )
    survive_probability = 0.0
    for subset_size in range(1, len(quorum_masks) + 1):
        sign = 1.0 if subset_size % 2 == 1 else -1.0
        for subset in itertools.combinations(quorum_masks, subset_size):
            union = 0
            for mask in subset:
                union |= mask
            union_size = union.bit_count()
            survive_probability += sign * (1.0 - p) ** union_size
    return AvailabilityResult(value=1.0 - survive_probability, method="inclusion-exclusion")


def monte_carlo_failure_probability(
    system: QuorumSystem,
    p: float,
    *,
    trials: int = 20_000,
    rng: np.random.Generator | None = None,
    batch_size: int = 2_000,
) -> AvailabilityResult:
    """Estimate ``Fp(Q)`` by sampling crash configurations.

    Each trial crashes every server independently with probability ``p`` and
    checks whether any quorum is left untouched.  The check is vectorised
    through the quorum/element incidence matrix.
    """
    _reject_implicit(system, "Monte-Carlo estimation")
    p = _validate_probability(p)
    if trials <= 0:
        raise InvalidParameterError(f"trials must be positive, got {trials}")
    rng = ensure_rng(rng)
    engine = system.bitset_engine()

    failures = 0
    remaining = trials
    while remaining > 0:
        batch = min(batch_size, remaining)
        crashed = rng.random((batch, system.n)) < p  # (batch, n)
        # A quorum is alive when none of its members crashed.
        some_quorum_alive = engine.alive_quorum_exists(crashed)
        failures += int((~some_quorum_alive).sum())
        remaining -= batch

    estimate = failures / trials
    std_error = math.sqrt(max(estimate * (1.0 - estimate), 1e-12) / trials)
    return AvailabilityResult(
        value=estimate, method="monte-carlo", std_error=std_error, trials=trials
    )


def failure_probability(
    system: QuorumSystem,
    p: float,
    *,
    method: str = "auto",
    trials: int = 20_000,
    rng: np.random.Generator | None = None,
) -> AvailabilityResult:
    """Return ``Fp(Q)`` using the most appropriate available method.

    ``method`` may be ``"auto"``, ``"exact"``, ``"inclusion-exclusion"``,
    ``"monte-carlo"`` or ``"analytic"``.  With ``"auto"``:

    1. use the construction's own ``crash_probability`` method when present;
    2. otherwise use exact enumeration when the universe is small;
    3. otherwise use inclusion–exclusion when the quorum list is small;
    4. otherwise fall back to Monte-Carlo.
    """
    if method == "analytic" or method == "auto":
        analytic = getattr(system, "crash_probability", None)
        if callable(analytic):
            return AvailabilityResult(value=float(analytic(p)), method="analytic")
        if method == "analytic":
            raise ComputationError(
                f"{system.name} does not provide an analytic crash probability"
            )
    if method == "exact":
        return exact_failure_probability(system, p)
    if method == "inclusion-exclusion":
        return inclusion_exclusion_failure_probability(system, p)
    if method == "monte-carlo":
        return monte_carlo_failure_probability(system, p, trials=trials, rng=rng)
    if method != "auto":
        raise ComputationError(f"unknown availability method {method!r}")

    if system.n <= 18:
        return exact_failure_probability(system, p)
    try:
        quorum_count = system.num_quorums()
    except ComputationError:
        quorum_count = None
    if quorum_count is not None and quorum_count <= 18:
        return inclusion_exclusion_failure_probability(system, p)
    return monte_carlo_failure_probability(system, p, trials=trials, rng=rng)


def is_condorcet_sequence(
    failure_probabilities: list[float], *, tolerance: float = 0.0
) -> bool:
    """Return ``True`` when a sequence of ``Fp`` values trends to zero.

    The paper calls a family of systems *Condorcet* when ``Fp -> 0`` as the
    universe grows, for every ``p < 1/2``.  This numeric proxy checks that
    the sequence is (weakly) decreasing overall and that its last value is at
    most half its first value (or already below ``tolerance``).
    """
    if len(failure_probabilities) < 2:
        raise ComputationError("need at least two points to judge a trend")
    first, last = failure_probabilities[0], failure_probabilities[-1]
    if last <= tolerance:
        return True
    return last <= first / 2.0
