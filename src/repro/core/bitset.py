"""Bitmask quorum engine: compact set encodings for the hot combinatorial paths.

Every quorum over an indexed :class:`~repro.core.universe.Universe` of ``n``
servers can be encoded as a Python ``int`` whose bit ``i`` is set exactly when
the server at universe position ``i`` belongs to the quorum.  Subset tests,
intersections and unions then become single machine-word operations (or a few
of them), and a whole quorum list becomes either

* a tuple of ``int`` bitmasks (arbitrary ``n``, exact arithmetic), or
* a bit-packed ``numpy`` array of ``uint64`` words, ``shape (m, ceil(n/64))``,
  on which pairwise intersections, popcounts and survival checks vectorise.

:class:`BitsetEngine` bundles both encodings with the quorum/element incidence
matrix, built **once per system** and cached; all the measure computations in
:mod:`repro.core` (load LP assembly, exact and Monte-Carlo availability,
masking verification, transversal search) go through it.  The frozenset API
of :class:`~repro.core.quorum_system.QuorumSystem` remains the public surface
— the engine is the representation underneath it.

Paper notation for the quantities computed here is catalogued in
``docs/notation.md``.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Sequence

import numpy as np

from repro.core.universe import Universe
from repro.exceptions import ComputationError

__all__ = [
    "BitsetEngine",
    "incidence_from_masks",
    "iter_bit_indices",
    "mask_of",
    "mask_to_frozenset",
    "masks_of",
    "pack_mask",
    "pack_masks",
]

#: Width of the numpy words the packed encoding uses.
_WORD_BITS = 64
_WORD_MASK = (1 << _WORD_BITS) - 1


def mask_of(elements: Iterable[Hashable], universe: Universe) -> int:
    """Return the bitmask of ``elements`` over ``universe``'s index order."""
    mask = 0
    for element in elements:
        mask |= 1 << universe.index_of(element)
    return mask


def masks_of(quorums: Iterable[Iterable[Hashable]], universe: Universe) -> tuple[int, ...]:
    """Return the bitmask of every quorum, preserving iteration order."""
    return tuple(mask_of(quorum, universe) for quorum in quorums)


def iter_bit_indices(mask: int) -> Iterator[int]:
    """Yield the set-bit positions of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_to_frozenset(mask: int, universe: Universe) -> frozenset:
    """Return the universe elements whose bits are set in ``mask``."""
    return frozenset(universe.element_at(index) for index in iter_bit_indices(mask))


def pack_masks(masks: Sequence[int], n: int) -> np.ndarray:
    """Pack bitmasks into a ``(len(masks), ceil(n/64))`` array of ``uint64`` words.

    Word ``j`` of row ``i`` holds bits ``64 j .. 64 j + 63`` of ``masks[i]``
    (little-endian word order), so ``numpy.bitwise_count`` over a row sums to
    the quorum size.
    """
    num_words = max(1, -(-n // _WORD_BITS))
    packed = np.zeros((len(masks), num_words), dtype=np.uint64)
    for row, mask in enumerate(masks):
        word_index = 0
        while mask:
            packed[row, word_index] = mask & _WORD_MASK
            mask >>= _WORD_BITS
            word_index += 1
    return packed


def pack_mask(mask: int, n: int) -> np.ndarray:
    """Pack a single bitmask into a ``(ceil(n/64),)`` array of ``uint64`` words."""
    return pack_masks((mask,), n)[0]


def incidence_from_masks(masks: Sequence[int], n: int) -> np.ndarray:
    """Return the boolean incidence matrix (rows: masks, columns: bit index)."""
    packed = pack_masks(masks, n)
    as_bytes = packed.view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
    return bits[:, :n].astype(bool)


class BitsetEngine:
    """Cached bitmask/incidence views of one quorum list over one universe.

    Parameters
    ----------
    universe:
        The indexed universe the bit positions refer to.
    masks:
        One ``int`` bitmask per quorum, in enumeration order.  The order is
        preserved everywhere so that results can be mapped back to the
        system's ``quorums()`` tuple by position.
    """

    __slots__ = ("_universe", "_masks", "_packed", "_incidence", "_incidence_int", "_sizes")

    def __init__(self, universe: Universe, masks: Sequence[int]):
        limit = 1 << universe.size
        for mask in masks:
            if not 0 <= mask < limit:
                raise ComputationError(
                    f"bitmask {mask:#x} has bits outside the {universe.size}-element universe"
                )
        self._universe = universe
        self._masks = tuple(masks)
        self._packed: np.ndarray | None = None
        self._incidence: np.ndarray | None = None
        self._incidence_int: np.ndarray | None = None
        self._sizes: np.ndarray | None = None

    @classmethod
    def from_quorums(
        cls, universe: Universe, quorums: Iterable[Iterable[Hashable]]
    ) -> "BitsetEngine":
        """Build an engine from frozenset-style quorums (compatibility path)."""
        return cls(universe, masks_of(quorums, universe))

    # ------------------------------------------------------------------
    # Structure.
    # ------------------------------------------------------------------
    @property
    def universe(self) -> Universe:
        return self._universe

    @property
    def masks(self) -> tuple[int, ...]:
        """The quorums as ``int`` bitmasks, in enumeration order."""
        return self._masks

    @property
    def n(self) -> int:
        return self._universe.size

    @property
    def num_quorums(self) -> int:
        return len(self._masks)

    def frozensets(self) -> tuple[frozenset, ...]:
        """The quorums as frozensets (the compatibility view)."""
        return tuple(mask_to_frozenset(mask, self._universe) for mask in self._masks)

    # ------------------------------------------------------------------
    # Cached array views.
    # ------------------------------------------------------------------
    def packed(self) -> np.ndarray:
        """The bit-packed ``(m, ceil(n/64))`` ``uint64`` view (built once)."""
        if self._packed is None:
            self._packed = pack_masks(self._masks, self.n)
            self._packed.setflags(write=False)
        return self._packed

    def incidence_matrix(self) -> np.ndarray:
        """The boolean quorum/element incidence matrix (built once, read-only).

        Rows are quorums in enumeration order, columns universe positions.
        """
        if self._incidence is None:
            self._incidence = incidence_from_masks(self._masks, self.n)
            self._incidence.setflags(write=False)
        return self._incidence

    def quorum_sizes(self) -> np.ndarray:
        """Per-quorum cardinalities ``|Q|`` as an int64 vector (built once)."""
        if self._sizes is None:
            sizes = np.bitwise_count(self.packed()).sum(axis=1, dtype=np.int64)
            sizes.setflags(write=False)
            self._sizes = sizes
        return self._sizes

    # ------------------------------------------------------------------
    # Combinatorial measures.
    # ------------------------------------------------------------------
    def min_quorum_size(self) -> int:
        return int(self.quorum_sizes().min())

    def max_quorum_size(self) -> int:
        return int(self.quorum_sizes().max())

    def degrees(self) -> np.ndarray:
        """Per-element quorum membership counts, indexed by universe position."""
        return self.incidence_matrix().sum(axis=0, dtype=np.int64)

    def first_pair_intersecting_below(self, required: int) -> tuple[int, int] | None:
        """Return the first quorum pair (combinations order) meeting in < ``required``.

        "First" follows ``itertools.combinations`` order over quorum indices:
        smallest first index, then smallest second index.  Returns ``None``
        when every pair intersects in at least ``required`` elements.
        """
        packed = self.packed()
        for first in range(self.num_quorums - 1):
            overlap = np.bitwise_count(packed[first] & packed[first + 1 :]).sum(
                axis=1, dtype=np.int64
            )
            below = np.nonzero(overlap < required)[0]
            if below.size:
                return first, first + 1 + int(below[0])
        return None

    def min_intersection_size(self) -> int:
        """Return ``IS``, the smallest pairwise intersection, by vectorised popcount.

        For a single-quorum system this is the quorum size, mirroring the
        convention of :meth:`QuorumSystem.min_intersection_size`.
        """
        if self.num_quorums == 1:
            return int(self.quorum_sizes()[0])
        packed = self.packed()
        smallest: int | None = None
        for first in range(self.num_quorums - 1):
            overlap = np.bitwise_count(packed[first] & packed[first + 1 :]).sum(
                axis=1, dtype=np.int64
            )
            candidate = int(overlap.min())
            if smallest is None or candidate < smallest:
                smallest = candidate
                if smallest == 0:
                    break
        return int(smallest)

    def all_pairs_intersect(self) -> bool:
        """Return ``True`` when every two quorums share at least one element."""
        return self.first_pair_intersecting_below(1) is None

    # ------------------------------------------------------------------
    # Survival checks (availability hot paths).
    # ------------------------------------------------------------------
    def subset_survival_table(self) -> np.ndarray:
        """Return a boolean table over all ``2^n`` alive-sets: does a quorum survive?

        Entry ``a`` is ``True`` exactly when some quorum is a subset of the
        alive-set with bitmask ``a``.  Built by the superset-closure dynamic
        program (one vectorised pass per bit), so the whole table costs
        ``O(n 2^n)`` bit operations instead of ``O(m 2^n)`` subset tests.
        """
        n = self.n
        if n > 26:
            raise ComputationError(
                f"refusing to materialise a survival table over 2^{n} alive-sets"
            )
        table = np.zeros(1 << n, dtype=bool)
        table[list(self._masks)] = True
        for bit in range(n):
            step = 1 << bit
            view = table.reshape(-1, 2, step)
            view[:, 1, :] |= view[:, 0, :]
        return table

    def _incidence_int_matrix(self) -> np.ndarray:
        """The ``(n, m)`` int64 transpose of the incidence matrix (built once)."""
        if self._incidence_int is None:
            incidence_int = self.incidence_matrix().T.astype(np.int64)
            incidence_int.setflags(write=False)
            self._incidence_int = incidence_int
        return self._incidence_int

    def quorums_alive(self, crashed: np.ndarray) -> np.ndarray:
        """Per-quorum survival over a batch of crash configurations.

        Parameters
        ----------
        crashed:
            Boolean array of shape ``(batch, n)``; entry ``(t, i)`` says the
            server at universe position ``i`` crashed in configuration ``t``.

        Returns
        -------
        numpy.ndarray
            Boolean array of shape ``(batch, num_quorums)``: entry ``(t, q)``
            is ``True`` when quorum ``q`` contains no crashed member of
            configuration ``t``.  This is the per-phase quorum-responsiveness
            matrix the workload scenario engine runs on.
        """
        hit_counts = np.atleast_2d(crashed).astype(np.int64) @ self._incidence_int_matrix()
        return hit_counts == 0

    def alive_quorum_exists(self, crashed: np.ndarray) -> np.ndarray:
        """Vectorised survival check over a batch of crash configurations.

        Parameters
        ----------
        crashed:
            Boolean array of shape ``(batch, n)``; entry ``(t, i)`` says the
            server at universe position ``i`` crashed in trial ``t``.

        Returns
        -------
        numpy.ndarray
            Boolean vector of length ``batch``: some quorum has no crashed
            member.
        """
        hit_counts = crashed.astype(np.int64) @ self._incidence_int_matrix()
        return (hit_counts == 0).any(axis=1)

    def intersection_counts(
        self,
        rows_a: np.ndarray,
        rows_b: np.ndarray,
        restrict_words: np.ndarray | None = None,
    ) -> np.ndarray:
        """Pairwise ``|Q_a ∩ Q_b (∩ R)|`` for aligned batches of quorum indices.

        Parameters
        ----------
        rows_a, rows_b:
            Integer index arrays of equal shape, selecting quorums by
            enumeration order.
        restrict_words:
            Optional packed ``uint64`` filter (one row of :func:`pack_masks`
            per entry, broadcastable against the selected rows) intersected
            into every pair — e.g. the correct-server set when counting how
            many honest replicas vouch for a value.

        Returns
        -------
        numpy.ndarray
            ``int64`` popcounts, one per index pair.
        """
        packed = self.packed()
        words = packed[rows_a] & packed[rows_b]
        if restrict_words is not None:
            words = words & restrict_words
        return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)

    def __repr__(self) -> str:
        return f"BitsetEngine(n={self.n}, quorums={self.num_quorums})"
