"""Verification of the b-masking property (Definitions 3.4 and 3.5).

A quorum system is *b-masking* when

1. it is resilient to at least ``b`` failures — for every set ``K`` of ``b``
   servers some quorum avoids ``K`` entirely (Definition 3.4), and
2. every two quorums intersect in at least ``2b + 1`` servers
   (the consistency requirement (1) in Definition 3.5).

The fast way to establish the property is through ``MT`` and ``IS``
(Lemma 3.6 and Corollary 3.7), which :class:`~repro.core.quorum_system.QuorumSystem`
already exposes.  This module provides the *literal* checks, used by the
test-suite to validate the fast path and by users who want an explicit
certificate or counterexample.  The pairwise-intersection sweep runs on the
bit-packed quorum list of :mod:`repro.core.bitset` rather than on frozensets.

See ``docs/notation.md`` for the notation glossary (b-masking, IS, MT, ...).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quorum_system import QuorumSystem
from repro.exceptions import MaskingViolationError

__all__ = [
    "MaskingReport",
    "check_consistency",
    "check_resilience",
    "verify_masking",
    "masking_report",
]


@dataclass(frozen=True)
class MaskingReport:
    """Summary of a masking verification.

    Attributes
    ----------
    b:
        The masking parameter that was checked.
    consistent:
        Whether every pair of quorums intersects in at least ``2b+1`` servers.
    resilient:
        Whether every ``b``-set of servers avoids some quorum.
    violating_pair:
        A pair of quorums with too small an intersection, if any.
    blocking_set:
        A ``b``-set of servers hitting every quorum, if any.
    """

    b: int
    consistent: bool
    resilient: bool
    violating_pair: tuple[frozenset, frozenset] | None = None
    blocking_set: frozenset | None = None

    @property
    def is_masking(self) -> bool:
        """Whether the system is a ``b``-masking quorum system."""
        return self.consistent and self.resilient


def check_consistency(system: QuorumSystem, b: int) -> tuple[frozenset, frozenset] | None:
    """Return a pair of quorums violating ``|Q1 ∩ Q2| >= 2b+1``, or ``None``.

    This is the consistency requirement (1) of Definition 3.5, checked
    exhaustively over all quorum pairs by vectorised popcount on the
    bit-packed quorum list; the witness pair (in enumeration order) is mapped
    back to frozensets.
    """
    required = 2 * b + 1
    engine = system.bitset_engine()
    if engine.num_quorums == 1:
        only = system.quorums()[0]
        if len(only) < required:
            return only, only
        return None
    pair = engine.first_pair_intersecting_below(required)
    if pair is None:
        return None
    quorum_list = system.quorums()
    return quorum_list[pair[0]], quorum_list[pair[1]]


def check_resilience(system: QuorumSystem, b: int) -> frozenset | None:
    """Return a ``b``-set of servers that hits every quorum, or ``None``.

    Definition 3.4 requires that for every set ``K`` of ``b`` servers some
    quorum is disjoint from ``K``.  Rather than enumerating all ``C(n, b)``
    candidate sets, we use the equivalence with transversals: such a ``K``
    exists exactly when ``MT(Q) <= b``, and the minimal transversal itself is
    a witness (padded to size ``b`` if needed, which preserves the hitting
    property).
    """
    if b <= 0:
        return None
    min_transversal = system.minimal_transversal()
    if len(min_transversal) > b:
        return None
    padding_needed = b - len(min_transversal)
    if padding_needed == 0:
        return min_transversal
    extra = [
        element for element in system.universe if element not in min_transversal
    ][:padding_needed]
    return frozenset(min_transversal | set(extra))


def masking_report(system: QuorumSystem, b: int) -> MaskingReport:
    """Return a full :class:`MaskingReport` for masking parameter ``b``."""
    if b < 0:
        raise MaskingViolationError(f"masking parameter must be >= 0, got {b}")
    violating_pair = check_consistency(system, b)
    blocking_set = check_resilience(system, b)
    return MaskingReport(
        b=b,
        consistent=violating_pair is None,
        resilient=blocking_set is None,
        violating_pair=violating_pair,
        blocking_set=blocking_set,
    )


def verify_masking(system: QuorumSystem, b: int) -> None:
    """Raise :class:`~repro.exceptions.MaskingViolationError` unless ``system`` is ``b``-masking."""
    report = masking_report(system, b)
    if report.is_masking:
        return
    if not report.consistent:
        first, second = report.violating_pair
        raise MaskingViolationError(
            f"{system.name} is not {b}-masking: quorums intersect in "
            f"{len(first & second)} < {2 * b + 1} servers"
        )
    raise MaskingViolationError(
        f"{system.name} is not {b}-masking: the {len(report.blocking_set)} servers "
        f"{sorted(report.blocking_set, key=repr)[:6]} hit every quorum"
    )
