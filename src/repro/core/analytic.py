"""Closed-form load and availability: the implicit large-universe engine.

The enumeration-based engines (:func:`repro.core.load.exact_load`,
:func:`repro.core.availability.exact_failure_probability`) top out around
``n ≈ 30`` servers / tens of thousands of quorums, which is enough to *verify*
the paper's formulas but not its *asymptotics* — the load ``Ω(1/sqrt(n))``
lower bound (Corollary 4.2) and the load/availability trade-off across
Threshold, Grid, M-Grid and M-Path (Sections 4–8) are statements about
``n -> infinity``.  This module computes the same two quantities in closed
form, dispatching on construction structure, so no quorum family is ever
materialised:

===================  =====================================================
Construction         Closed form used
===================  =====================================================
Threshold            ``L = k/n``; ``Fp`` = binomial tail (exact)
Grid (both)          ``L = c/n``; ``Fp`` via the fully-alive row/column
                     joint distribution (exact dynamic program, see
                     :func:`rowcol_survival_probability`)
M-Grid               same row/column dynamic program with ``k`` rows and
                     ``k`` columns required (exact)
M-Path               Proposition 7.2 strategy load; ``Fp`` of the
                     straight-line family by the same dynamic program over
                     the triangular lattice's rows/columns (exact for that
                     family, an upper bound for full M-Path whose bent
                     paths only add quorums; the percolation machinery of
                     :mod:`repro.percolation` provides the full-family
                     Monte-Carlo and the Proposition 7.3 bound)
RT(k, l)             ``L = (l/k)^h``; ``Fp`` by the exact recurrence
                     ``F(h) = g(F(h-1))`` (Proposition 5.6)
Crumbling wall       ``Fp`` by per-row products (rows are independent)
Composition S ∘ R    ``Fp(S∘R) = Fp_S(Fp_R(p))`` — exact modular
                     decomposition (inner copies fail independently), which
                     makes boostFPP exact whenever the outer plane is small
                     enough to enumerate
generic              exact enumeration / inclusion–exclusion fallbacks when
                     feasible, else a clear :class:`ComputationError`
===================  =====================================================

Every closed form is cross-validated against the LP/enumeration engine to
``1e-9`` on the small-``n`` test matrix (``tests/test_analytic.py``); the
large-``n`` sweeps live in :mod:`repro.analysis.asymptotics` and
``benchmarks/test_bench_large_n.py``.  ``docs/analysis.md`` maps each
theorem to its implementing function.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np
from scipy import stats

from repro.core.availability import (
    AvailabilityResult,
    exact_failure_probability,
    inclusion_exclusion_failure_probability,
)
from repro.core.load import LoadResult
from repro.core.quorum_system import QuorumSystem
from repro.exceptions import ComputationError, InvalidParameterError

if TYPE_CHECKING:
    from repro.core.composition import ComposedQuorumSystem

__all__ = [
    "analytic_load",
    "analytic_failure_probability",
    "crumbling_wall_failure_probability",
    "rowcol_survival_probability",
]


def _unwrap(system: QuorumSystem) -> QuorumSystem:
    """Resolve an :class:`ImplicitQuorumSystem` view to its base construction."""
    return getattr(system, "base", system) if getattr(system, "is_implicit", False) else system


# ----------------------------------------------------------------------
# Load.
# ----------------------------------------------------------------------
def analytic_load(system: QuorumSystem) -> LoadResult:
    """Return ``L(Q)`` from the construction's closed form (no enumeration).

    Dispatch order:

    1. the construction's own ``load()`` closed form (all the paper's
       constructions provide one — Propositions 3.9, 5.2, 5.5, 6.2, 7.2 and
       Theorem 4.7 for compositions), reported with method ``"analytic"``;
    2. the fair-system formula ``L = c/n`` of Proposition 3.9 (this path may
       enumerate to *check* fairness, so it only triggers for explicit
       systems), reported with method ``"fair"``.

    Unlike :func:`repro.core.load.best_known_load` this never falls back to
    the LP, so it is safe at any universe size; an
    :class:`~repro.core.quorum_system.ImplicitQuorumSystem` is resolved to
    its base construction first.

    Raises
    ------
    ComputationError
        When the system has neither a closed form nor checkable fairness.
    """
    base = _unwrap(system)
    load_fn = getattr(base, "load", None)
    if callable(load_fn):
        return LoadResult(load=float(load_fn()), strategy=None, method="analytic")
    fairness = base.fairness()
    if fairness is not None:
        quorum_size, _ = fairness
        return LoadResult(load=quorum_size / base.n, strategy=None, method="fair")
    raise ComputationError(
        f"{base.name} has no closed-form load and is not fair; "
        "use repro.core.load.exact_load (enumeration permitting)"
    )


# ----------------------------------------------------------------------
# Availability: the row/column dynamic program shared by the grid family.
# ----------------------------------------------------------------------
def rowcol_survival_probability(
    side: int, p: float, min_rows: int, min_cols: int
) -> float:
    """Exact ``P(>= min_rows fully-alive rows AND >= min_cols fully-alive columns)``.

    Servers sit on a ``side x side`` grid and crash independently with
    probability ``p`` (Definition 3.10's model).  The joint distribution of
    (number of fully-alive rows, number of fully-alive columns) has no
    product form — the events share cells — but it admits an exact dynamic
    program over rows: process one row at a time and track

    * ``r`` — how many of the processed rows were fully alive, and
    * ``m`` — how many columns are still fully alive *within the processed
      rows* (column exchangeability makes the count a sufficient statistic).

    A row is fully alive with probability ``(1-p)^side`` (keeping ``m``
    intact); otherwise exactly ``j`` of the ``m`` tracked column-cells
    survive with the binomial weight ``C(m, j) (1-p)^j p^(m-j)`` minus the
    fully-alive corner.  All transition weights are non-negative, so unlike
    the textbook bivariate inclusion–exclusion the computation is
    numerically stable at any ``side`` (no alternating ``C(100, 50)``-sized
    terms), costing ``O(side^3)`` flops via one matrix product per row.

    This single routine gives the exact crash probability of the whole grid
    family: RegularGrid (``min_rows = min_cols = 1``), the [MR98a]
    MaskingGrid (``2b+1`` rows, one column), M-Grid (``k`` rows, ``k``
    columns; Section 5.1) and M-Path's straight-line family (``k`` and
    ``k`` over the triangular lattice, Section 7).
    """
    if side < 1:
        raise ComputationError(f"grid side must be >= 1, got {side}")
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"crash probability must lie in [0, 1], got {p}")
    if min_rows > side or min_cols > side:
        return 0.0
    alive = 1.0 - p
    row_alive = alive**side

    # T[m, j]: P(exactly j of m tracked column-cells alive AND the row is
    # not fully alive).  Subtracting the fully-alive corner at j = m keeps
    # the two transition branches disjoint.
    transition = np.zeros((side + 1, side + 1))
    for m in range(side + 1):
        transition[m, : m + 1] = stats.binom.pmf(np.arange(m + 1), m, alive)
        transition[m, m] -= row_alive
    # dp[r, m] after t rows: P(r alive rows so far, m columns still intact).
    dp = np.zeros((side + 1, side + 1))
    dp[0, side] = 1.0
    for _ in range(side):
        advanced = dp @ transition
        advanced[1:, :] += dp[:-1, :] * row_alive
        dp = advanced
    # The sum can overshoot [0, 1] by a few ulps at extreme p; clamp so the
    # derived Fp is a genuine probability.
    return float(min(1.0, max(0.0, dp[min_rows:, min_cols:].sum())))


def crumbling_wall_failure_probability(row_widths: Sequence[int], p: float) -> float:
    """Exact ``Fp`` of a crumbling wall by per-row products.

    A wall quorum is one full row plus a representative from every row below
    it, so the system survives exactly when some row ``i`` is fully alive
    and every row below ``i`` has at least one alive element.  Rows occupy
    disjoint cells, hence are independent; classifying each row as *fully
    alive* (probability ``a_i = (1-p)^{w_i}``), *partially alive*
    (``s_i - a_i`` with ``s_i = 1 - p^{w_i}``) or *dead*, the survival
    probability telescopes into

    ``P(survive) = sum_i a_i * prod_{j > i} (s_j - a_j)``

    — the ``i``-th term is the event "row ``i`` is the *lowest* fully-alive
    row whose suffix is all non-dead", and the terms are disjoint because
    any lower fully-alive row with a non-dead suffix would be counted at its
    own index instead.
    """
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"crash probability must lie in [0, 1], got {p}")
    widths = [int(width) for width in row_widths]
    if not widths or any(width <= 0 for width in widths):
        raise ComputationError(f"row widths must be positive, got {row_widths}")
    alive = 1.0 - p
    fully = [alive**width for width in widths]
    some = [1.0 - p**width for width in widths]
    survive = 0.0
    suffix = 1.0  # prod over rows below the current one of (s_j - a_j)
    for index in range(len(widths) - 1, -1, -1):
        survive += fully[index] * suffix
        suffix *= some[index] - fully[index]
    return float(min(1.0, max(0.0, 1.0 - survive)))


def analytic_failure_probability(
    system: QuorumSystem, p: float, *, max_universe: int = 22, max_quorums: int = 22
) -> AvailabilityResult:
    """Return ``Fp(Q)`` in closed form, dispatching on construction structure.

    The result's ``method`` field records what the value is:

    * ``"analytic"`` — exact (binomial tails, the row/column dynamic
      program, the RT recurrence, per-row wall products, or an exact
      modular composition);
    * ``"analytic-straight-lines"`` — exact for M-Path's straight-line
      quorum family (the family its Proposition 7.2 strategy draws from and
      the simulator uses); an upper bound on full M-Path, whose bent-path
      quorums only improve survival;
    * ``"analytic-bound"`` — a deterministic upper bound (boostFPP with an
      outer plane too large to enumerate, via Proposition 6.3's line-death
      estimate);
    * ``"enumeration"`` / ``"inclusion-exclusion"`` — generic exact
      fallbacks for small systems without special structure.

    An :class:`~repro.core.quorum_system.ImplicitQuorumSystem` is resolved
    to its base construction, so availability at ``n = 10^4`` costs the same
    as at ``n = 16``.  Cross-validated to ``1e-9`` against the enumeration
    engine in ``tests/test_analytic.py``.

    Raises
    ------
    ComputationError
        When no closed form applies and the exact fallbacks are infeasible.
    """
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"crash probability must lie in [0, 1], got {p}")
    # Local imports: repro.constructions imports repro.core, so dispatching
    # on the concrete construction classes must not run at module-import
    # time.
    from repro.constructions.crumbling_wall import CrumblingWall
    from repro.constructions.grid import MaskingGrid, RegularGrid
    from repro.constructions.mgrid import MGrid
    from repro.constructions.mpath import MPath
    from repro.constructions.recursive_threshold import RecursiveThreshold
    from repro.constructions.threshold import ThresholdQuorumSystem
    from repro.core.composition import ComposedQuorumSystem

    system = _unwrap(system)
    if isinstance(system, ThresholdQuorumSystem):
        return AvailabilityResult(value=system.crash_probability(p), method="analytic")
    if isinstance(system, RecursiveThreshold):
        return AvailabilityResult(value=system.crash_probability(p), method="analytic")
    if isinstance(system, RegularGrid):
        survive = rowcol_survival_probability(system.side, p, 1, 1)
        return AvailabilityResult(value=1.0 - survive, method="analytic")
    if isinstance(system, MaskingGrid):
        survive = rowcol_survival_probability(system.side, p, 2 * system.b + 1, 1)
        return AvailabilityResult(value=1.0 - survive, method="analytic")
    if isinstance(system, MGrid):
        survive = rowcol_survival_probability(system.side, p, system.k, system.k)
        return AvailabilityResult(value=1.0 - survive, method="analytic")
    if isinstance(system, MPath):
        survive = rowcol_survival_probability(system.side, p, system.k, system.k)
        return AvailabilityResult(value=1.0 - survive, method="analytic-straight-lines")
    if isinstance(system, CrumblingWall):
        value = crumbling_wall_failure_probability(system.row_widths, p)
        return AvailabilityResult(value=value, method="analytic")
    if isinstance(system, ComposedQuorumSystem):
        return _composed_failure_probability(
            system, p, max_universe=max_universe, max_quorums=max_quorums
        )

    # Generic exact fallbacks for structureless systems.
    if system.n <= max_universe:
        result = exact_failure_probability(system, p, max_universe=max_universe)
        return AvailabilityResult(value=result.value, method="enumeration")
    try:
        quorum_count = system.num_quorums()
    except ComputationError:
        quorum_count = None
    if quorum_count is not None and quorum_count <= max_quorums:
        result = inclusion_exclusion_failure_probability(
            system, p, max_quorums=max_quorums
        )
        return AvailabilityResult(value=result.value, method="inclusion-exclusion")
    raise ComputationError(
        f"{system.name} has no analytic crash probability and is too large "
        f"for the exact fallbacks (n={system.n}); use "
        "repro.core.availability.monte_carlo_failure_probability"
    )


def _composed_failure_probability(
    system: "ComposedQuorumSystem", p: float, *, max_universe: int, max_quorums: int
) -> AvailabilityResult:
    """Exact modular decomposition ``Fp(S∘R) = Fp_S(Fp_R(p))`` (Theorem 4.7 setting).

    The inner copies occupy disjoint sub-universes and fail independently,
    each with probability ``r = Fp_R(p)``; the composition survives exactly
    when the outer system survives with per-element crash probability ``r``.
    The decomposition is therefore *exact* whenever both recursive values
    are; a bounded inner/outer value degrades the method tag accordingly.
    For boostFPP with an outer plane too big to enumerate, fall back to the
    construction's deterministic Proposition 6.3 estimate.
    """
    inner = analytic_failure_probability(
        system.inner, p, max_universe=max_universe, max_quorums=max_quorums
    )
    try:
        outer = analytic_failure_probability(
            system.outer, inner.value, max_universe=max_universe, max_quorums=max_quorums
        )
    except ComputationError:
        from repro.constructions.boost_fpp import BoostedFPP

        if isinstance(system, BoostedFPP):
            # Proposition 6.3's line-death estimate is deterministic; the
            # generic ComposedQuorumSystem.crash_probability may fall back
            # to Monte-Carlo, so only boostFPP gets this escape hatch.
            return AvailabilityResult(
                value=float(system.crash_probability(p)), method="analytic-bound"
            )
        raise
    exact_methods = {"analytic", "enumeration", "inclusion-exclusion"}
    if inner.method in exact_methods and outer.method in exact_methods:
        method = "analytic"
    else:
        method = "analytic-bound"
    return AvailabilityResult(value=outer.value, method=method)
