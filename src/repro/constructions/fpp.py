"""The finite projective plane as a (regular) quorum system.

The lines of a projective plane of order ``q`` over its ``q^2 + q + 1``
points pairwise intersect in exactly one point, so they form a regular
quorum system with quorums of size ``q + 1`` and optimal load
``(q + 1)/n ~ 1/sqrt(n)`` [NW98].  It is the outer component of the boostFPP
construction of Section 6; on its own it masks no Byzantine failure
(``IS = 1``) and its crash probability tends to one.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.core.quorum_system import QuorumSystem
from repro.core.universe import Universe
from repro.exceptions import InvalidParameterError
from repro.gf.projective_plane import ProjectivePlane, projective_plane

__all__ = ["FiniteProjectivePlane"]


class FiniteProjectivePlane(QuorumSystem):
    """The quorum system whose quorums are the lines of PG(2, q).

    Parameters
    ----------
    q:
        The plane order; must be a prime power.  The universe elements are
        the integers ``0 .. q^2 + q`` indexing the plane's points.
    """

    def __init__(self, q: int):
        self.q = q
        self._plane: ProjectivePlane = projective_plane(q)
        self._universe = Universe.of_size(self._plane.num_points)
        self.name = f"FPP({q})"

    @property
    def plane(self) -> ProjectivePlane:
        """The underlying incidence structure."""
        return self._plane

    @property
    def universe(self) -> Universe:
        return self._universe

    def iter_quorums(self) -> Iterator[frozenset]:
        return iter(self._plane.lines)

    def iter_quorum_masks(self) -> Iterator[int]:
        # Points are the integers 0..q^2+q in universe order, so a line's
        # bitmask is the sum of its point bits.
        for line in self._plane.lines:
            mask = 0
            for point in line:
                mask |= 1 << point
            yield mask

    def num_quorums(self) -> int:
        return len(self._plane.lines)

    def sample_quorum(self, rng: np.random.Generator) -> frozenset:
        return self._plane.lines[int(rng.integers(len(self._plane.lines)))]

    # ------------------------------------------------------------------
    # Analytic measures (Section 6, first paragraphs).
    # ------------------------------------------------------------------
    def min_quorum_size(self) -> int:
        return self.q + 1

    def max_quorum_size(self) -> int:
        return self.q + 1

    def min_intersection_size(self) -> int:
        return 1

    def min_transversal_size(self) -> int:
        # The only transversals of size q + 1 are the lines themselves; no
        # smaller set can meet every line.
        return self.q + 1

    def load(self) -> float:
        """Return ``(q+1)/n ~ 1/sqrt(n)``, optimal for regular systems [NW98]."""
        return (self.q + 1) / self.n

    def crash_probability_upper_bound(self, p: float) -> float:
        """Return the bound ``min(1, (q+1) p)`` from equation (6) of the paper.

        ``Fp(FPP) <= 1 - (1-p)^(q+1) <= (q+1) p``: the plane survives whenever
        one fixed line survives.  The true ``Fp`` still tends to one as the
        plane grows [RST92], which is why boostFPP's availability is only
        good for ``p < 1/4``.
        """
        if not 0.0 <= p <= 1.0:
            raise InvalidParameterError(f"crash probability must lie in [0, 1], got {p}")
        return min(1.0, (self.q + 1) * p)
