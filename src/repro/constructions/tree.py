"""The tree quorum system of Agrawal and El Abbadi [AE91].

Servers are the nodes of a complete binary tree.  A quorum is defined
recursively: a quorum for a subtree is either its root together with a quorum
of *one* of its children, or a quorum of *both* children (the root is
bypassed).  Quorums range from a single root-to-leaf path (logarithmic size,
when nothing has failed) to roughly half the leaves (when many interior nodes
are bypassed), which is what gives the construction its graceful degradation.

It is a *regular* quorum system (``IS = 1``) cited in the paper's related
work; in this library it serves as another structurally interesting input to
the Section 6 boosting transform and as a stress test for the generic
measure machinery (it is neither fair nor symmetric).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.core.quorum_system import QuorumSystem
from repro.core.universe import Universe
from repro.exceptions import ConstructionError

__all__ = ["TreeQuorumSystem"]


class TreeQuorumSystem(QuorumSystem):
    """The tree quorum protocol over a complete binary tree of the given depth.

    Parameters
    ----------
    depth:
        Depth of the tree; ``depth = 0`` is a single node, ``depth = d`` has
        ``2^(d+1) - 1`` nodes.  Nodes are numbered heap-style: the root is 0
        and node ``i`` has children ``2i + 1`` and ``2i + 2``.
    """

    def __init__(self, depth: int):
        if depth < 0:
            raise ConstructionError(f"tree depth must be >= 0, got {depth}")
        if depth > 4:
            raise ConstructionError(
                "tree quorum enumeration beyond depth 4 explodes; "
                "compose smaller trees instead"
            )
        self.depth = depth
        self._n = 2 ** (depth + 1) - 1
        self._universe = Universe.of_size(self._n)
        self.name = f"TreeQuorum(depth={depth})"

    @property
    def universe(self) -> Universe:
        return self._universe

    def _node_depth(self, node: int) -> int:
        level = 0
        while node:
            node = (node - 1) // 2
            level += 1
        return level

    def _subtree_quorums(self, root: int) -> list[frozenset]:
        """Return the quorums of the subtree rooted at ``root``."""
        if self._node_depth(root) == self.depth:
            return [frozenset({root})]
        left = self._subtree_quorums(2 * root + 1)
        right = self._subtree_quorums(2 * root + 2)
        quorums: list[frozenset] = []
        # Root plus a quorum of either child.
        for child_quorums in (left, right):
            quorums.extend(frozenset({root}) | quorum for quorum in child_quorums)
        # Both children's quorums, bypassing the root.
        quorums.extend(l | r for l in left for r in right)
        return quorums

    def iter_quorums(self) -> Iterator[frozenset]:
        seen: set[frozenset] = set()
        for quorum in self._subtree_quorums(0):
            if quorum not in seen:
                seen.add(quorum)
                yield quorum

    def min_quorum_size(self) -> int:
        """The cheapest quorum is a single root-to-leaf path: ``depth + 1`` nodes."""
        return self.depth + 1

    def sample_quorum(self, rng: np.random.Generator) -> frozenset:
        """Sample by walking the recursion, preferring the cheap (path) branches."""

        def sample_subtree(root: int) -> frozenset:
            if self._node_depth(root) == self.depth:
                return frozenset({root})
            choice = rng.random()
            if choice < 0.8:
                child = 2 * root + 1 if rng.random() < 0.5 else 2 * root + 2
                return frozenset({root}) | sample_subtree(child)
            return sample_subtree(2 * root + 1) | sample_subtree(2 * root + 2)

        return sample_subtree(0)
