"""Threshold quorum systems.

The ``k``-of-``n`` threshold system has every ``k``-subset of the universe as
a quorum.  Two instances matter for the paper:

* the **Threshold** baseline of [MR98a] (first row of Table 2), obtained with
  ``k = ceil((n + 2b + 1) / 2)`` so that any two quorums intersect in at
  least ``2b + 1`` servers; and
* the ``(3b+1)``-of-``(4b+1)`` block used as the inner component of the
  boostFPP construction (Section 6) and as the generic "boosting" component
  that turns any regular quorum system into a masking one.

Thresholds are fair and symmetric, so all of their measures have closed
forms, including the crash probability (a binomial tail), which is why they
also serve as the ground truth in many tests.
"""

from __future__ import annotations

import math
from collections.abc import Iterator

import numpy as np
from scipy import stats

from repro.core import bitset
from repro.core.quorum_system import QuorumSystem
from repro.core.universe import Universe
from repro.exceptions import ConstructionError, InvalidParameterError

__all__ = ["ThresholdQuorumSystem", "masking_threshold", "majority", "boosting_block"]


class ThresholdQuorumSystem(QuorumSystem):
    """The ``k``-of-``n`` threshold quorum system.

    Parameters
    ----------
    n:
        Universe size.
    k:
        Quorum size.  Must satisfy ``n/2 < k <= n`` so that every two quorums
        intersect (Definition 3.1).

    Notes
    -----
    All measures are analytic:

    * ``c = k``, ``IS = 2k - n``, ``MT = n - k + 1``;
    * the system is ``(k, C(n-1, k-1))``-fair, so ``L = k / n``;
    * ``Fp = P(Binomial(n, p) >= n - k + 1)`` — the system dies exactly when
      fewer than ``k`` servers stay alive.
    """

    def __init__(self, n: int, k: int):
        if not 0 < k <= n:
            raise ConstructionError(f"threshold {k} must lie in [1, {n}]")
        if 2 * k <= n:
            raise ConstructionError(
                f"{k}-of-{n} is not a quorum system: two disjoint quorums exist"
            )
        self._n = n
        self.k = k
        self._universe = Universe.of_size(n)
        self.name = f"Threshold({k}-of-{n})"

    # ------------------------------------------------------------------
    # Structure.
    # ------------------------------------------------------------------
    @property
    def universe(self) -> Universe:
        return self._universe

    def iter_quorum_masks(self) -> Iterator[int]:
        import itertools

        for combination in itertools.combinations(range(self._n), self.k):
            mask = 0
            for index in combination:
                mask |= 1 << index
            yield mask

    def iter_quorums(self) -> Iterator[frozenset]:
        for mask in self.iter_quorum_masks():
            yield bitset.mask_to_frozenset(mask, self._universe)

    def num_quorums(self) -> int:
        return math.comb(self._n, self.k)

    def sample_quorum_mask(self, rng: np.random.Generator) -> int:
        """Draw ``k`` uniform servers directly as a bitmask (no enumeration)."""
        members = rng.choice(self._n, size=self.k, replace=False)
        mask = 0
        for member in members:
            mask |= 1 << int(member)
        return mask

    def sample_quorum(self, rng: np.random.Generator) -> frozenset:
        members = rng.choice(self._n, size=self.k, replace=False)
        return frozenset(int(member) for member in members)

    def sample_quorum_avoiding(
        self,
        rng: np.random.Generator,
        excluded: frozenset,
        *,
        attempts: int = 50,
    ) -> frozenset:
        """Pick ``k`` servers uniformly among the non-excluded ones when possible."""
        available = [server for server in range(self._n) if server not in excluded]
        if len(available) < self.k:
            return self.sample_quorum(rng)
        chosen = rng.choice(len(available), size=self.k, replace=False)
        return frozenset(available[int(index)] for index in chosen)

    # ------------------------------------------------------------------
    # Analytic measures.
    # ------------------------------------------------------------------
    def min_quorum_size(self) -> int:
        return self.k

    def max_quorum_size(self) -> int:
        return self.k

    def min_intersection_size(self) -> int:
        return 2 * self.k - self._n

    def min_transversal_size(self) -> int:
        return self._n - self.k + 1

    def fairness(self) -> tuple[int, int]:
        return self.k, math.comb(self._n - 1, self.k - 1)

    def masking_bound(self) -> int:
        by_resilience = self.min_transversal_size() - 1
        by_intersection = (self.min_intersection_size() - 1) // 2
        return max(0, min(by_resilience, by_intersection))

    def load(self) -> float:
        """Return ``L = k / n`` (Proposition 3.9; the system is fair)."""
        return self.k / self._n

    def crash_probability(self, p: float) -> float:
        """Return the exact ``Fp``: the binomial tail ``P(#crashed >= n - k + 1)``."""
        if not 0.0 <= p <= 1.0:
            raise InvalidParameterError(f"crash probability must lie in [0, 1], got {p}")
        threshold_crashes = self._n - self.k + 1
        return float(stats.binom.sf(threshold_crashes - 1, self._n, p))

    def chernoff_crash_bound(self, p: float) -> float:
        """Return the Chernoff upper bound on ``Fp`` used in Proposition 6.3.

        For the ``(3b+1)``-of-``(4b+1)`` block the paper derives
        ``Fp <= exp(-2 n gamma^2)`` with ``gamma = MT/n - p``; the bound is
        vacuous (returns 1) when ``p`` exceeds ``MT/n``.
        """
        gamma = self.min_transversal_size() / self._n - p
        if gamma <= 0:
            return 1.0
        return math.exp(-2.0 * self._n * gamma * gamma)


def masking_threshold(n: int, b: int) -> ThresholdQuorumSystem:
    """Return the [MR98a] Threshold baseline: ``ceil((n + 2b + 1)/2)``-of-``n``.

    This is the first row of Table 2: it masks up to ``b < n/4`` Byzantine
    failures, has resilience ``f = O(n - b)``, load ``1/2 + O(b/n)`` and
    Condorcet availability.
    """
    if b < 0:
        raise ConstructionError(f"masking parameter must be >= 0, got {b}")
    if 4 * b >= n:
        raise ConstructionError(
            f"a {b}-masking system over {n} servers cannot exist (requires 4b < n)"
        )
    k = math.ceil((n + 2 * b + 1) / 2)
    system = ThresholdQuorumSystem(n, k)
    system.name = f"MR98-Threshold(n={n}, b={b})"
    return system


def boosting_block(b: int) -> ThresholdQuorumSystem:
    """Return the ``(3b+1)``-of-``(4b+1)`` threshold block of Section 6.

    It is itself a ``b``-masking system (``IS = 2b+1``, ``MT = b+1``) and is
    the inner component of boostFPP and of the generic boosting transform.
    """
    if b < 0:
        raise ConstructionError(f"masking parameter must be >= 0, got {b}")
    system = ThresholdQuorumSystem(4 * b + 1, 3 * b + 1)
    system.name = f"Thresh(3b+1 of 4b+1, b={b})"
    return system


def majority(n: int) -> ThresholdQuorumSystem:
    """Return the simple majority quorum system (``ceil((n+1)/2)``-of-``n``)."""
    system = ThresholdQuorumSystem(n, math.ceil((n + 1) / 2))
    system.name = f"Majority({n})"
    return system
