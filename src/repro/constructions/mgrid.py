"""The multi-grid (M-Grid) construction of Section 5.1.

Servers are arranged in a ``sqrt(n) x sqrt(n)`` grid; a quorum is the union
of ``sqrt(b+1)`` full rows and ``sqrt(b+1)`` full columns (Figure 1 shows the
``7 x 7``, ``b = 3`` instance).  The system is ``b``-masking for
``b <= (sqrt(n) - 1)/2``, has optimal load ``~ 2 sqrt((b+1)/n)``
(Proposition 5.2), but its crash probability tends to one as the grid grows
(any configuration that hits every row kills every quorum).
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator

import numpy as np

from repro.constructions.grid import _column_mask, _row_mask
from repro.core import bitset
from repro.core.quorum_system import QuorumSystem
from repro.core.rng import ensure_rng
from repro.core.universe import Universe
from repro.exceptions import ConstructionError, InvalidParameterError

__all__ = ["MGrid"]


class MGrid(QuorumSystem):
    """The M-Grid(b) quorum system over a ``side x side`` grid.

    Parameters
    ----------
    side:
        The grid side; the universe has ``n = side ** 2`` servers labelled
        ``(row, column)`` with 0-based indices.
    b:
        The masking parameter.  The construction uses
        ``k = ceil(sqrt(b + 1))`` rows and columns per quorum and requires
        ``b <= (side - 1)/2`` (Proposition 5.1) as well as ``2k <= side`` so
        that quorums with disjoint row and column sets exist.
    """

    def __init__(self, side: int, b: int):
        if side < 2:
            raise ConstructionError(f"grid side must be at least 2, got {side}")
        if b < 0:
            raise ConstructionError(f"masking parameter must be >= 0, got {b}")
        if b > (side - 1) / 2:
            raise ConstructionError(
                f"M-Grid over a {side}x{side} grid can mask at most "
                f"b = {(side - 1) // 2}; got b={b}"
            )
        k = math.isqrt(b + 1)
        if k * k < b + 1:
            k += 1
        if 2 * k > side:
            raise ConstructionError(
                f"M-Grid needs 2*ceil(sqrt(b+1)) <= side; got b={b}, side={side}"
            )
        self.side = side
        self.b = b
        #: Number of rows (and of columns) per quorum, ``ceil(sqrt(b+1))``.
        self.k = k
        self._universe = Universe(
            (row, column) for row in range(side) for column in range(side)
        )
        self.name = f"M-Grid({side}x{side}, b={b})"

    # ------------------------------------------------------------------
    # Structure.
    # ------------------------------------------------------------------
    @property
    def universe(self) -> Universe:
        return self._universe

    def _quorum_from(self, rows: tuple[int, ...], columns: tuple[int, ...]) -> frozenset:
        cells = set()
        for row in rows:
            cells.update((row, column) for column in range(self.side))
        for column in columns:
            cells.update((row, column) for row in range(self.side))
        return frozenset(cells)

    def iter_quorum_masks(self) -> Iterator[int]:
        column_masks = [_column_mask(self.side, column) for column in range(self.side)]
        for rows in itertools.combinations(range(self.side), self.k):
            row_mask = 0
            for row in rows:
                row_mask |= _row_mask(self.side, row)
            for columns in itertools.combinations(range(self.side), self.k):
                mask = row_mask
                for column in columns:
                    mask |= column_masks[column]
                yield mask

    def iter_quorums(self) -> Iterator[frozenset]:
        for mask in self.iter_quorum_masks():
            yield bitset.mask_to_frozenset(mask, self._universe)

    def num_quorums(self) -> int:
        return math.comb(self.side, self.k) ** 2

    def sample_quorum_mask(self, rng: np.random.Generator) -> int:
        """``k`` uniform rows plus ``k`` uniform columns, assembled from line masks.

        This is the load-optimal strategy of Proposition 5.2 drawn directly
        as a bitmask — the implicit-scale access path (the full family has
        ``C(side, k)^2`` members and is never enumerated at large ``side``).
        """
        rows = rng.choice(self.side, size=self.k, replace=False)
        columns = rng.choice(self.side, size=self.k, replace=False)
        mask = 0
        for row in rows:
            mask |= _row_mask(self.side, int(row))
        for column in columns:
            mask |= _column_mask(self.side, int(column))
        return mask

    def sample_quorum(self, rng: np.random.Generator) -> frozenset:
        rows = tuple(int(r) for r in rng.choice(self.side, size=self.k, replace=False))
        columns = tuple(int(c) for c in rng.choice(self.side, size=self.k, replace=False))
        return self._quorum_from(rows, columns)

    # ------------------------------------------------------------------
    # Analytic measures (Propositions 5.1 and 5.2).
    # ------------------------------------------------------------------
    def min_quorum_size(self) -> int:
        return 2 * self.k * self.side - self.k * self.k

    def max_quorum_size(self) -> int:
        return self.min_quorum_size()

    def min_intersection_size(self) -> int:
        # Quorums with disjoint row sets and disjoint column sets intersect in
        # exactly 2 k^2 cells (each one's rows crossed with the other's
        # columns); any shared row or column only enlarges the intersection.
        return 2 * self.k * self.k

    def min_transversal_size(self) -> int:
        # A set is a transversal exactly when it leaves fewer than k rows or
        # fewer than k columns untouched; cheapest is one hit in each of
        # side - (k - 1) rows.
        return self.side - self.k + 1

    def load(self) -> float:
        """Return ``c/n ~ 2 sqrt(b+1)/sqrt(n)`` (Proposition 5.2; the system is fair)."""
        return self.min_quorum_size() / self.n

    # ------------------------------------------------------------------
    # Availability.
    # ------------------------------------------------------------------
    def crash_probability_lower_bound(self, p: float) -> float:
        """Return the Section 5.1 lower bound ``(1 - (1-p)^side)^side``.

        If every row contains a crashed server then no quorum survives, so
        the probability of that event lower-bounds ``Fp``; it tends to one as
        the grid grows, which is M-Grid's weakness.
        """
        if not 0.0 <= p <= 1.0:
            raise InvalidParameterError(f"crash probability must lie in [0, 1], got {p}")
        return (1.0 - (1.0 - p) ** self.side) ** self.side

    def crash_probability(
        self,
        p: float,
        *,
        trials: int = 20_000,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Estimate ``Fp`` by direct Monte-Carlo over grid crash patterns.

        A sample survives when at least ``k`` rows and at least ``k`` columns
        are completely alive (then any such rows/columns form an untouched
        quorum); otherwise every quorum is hit.
        """
        if not 0.0 <= p <= 1.0:
            raise InvalidParameterError(f"crash probability must lie in [0, 1], got {p}")
        rng = ensure_rng(rng)
        crashed = rng.random((trials, self.side, self.side)) < p
        alive_rows = (~crashed).all(axis=2).sum(axis=1)
        alive_columns = (~crashed).all(axis=1).sum(axis=1)
        survived = (alive_rows >= self.k) & (alive_columns >= self.k)
        return float(1.0 - survived.mean())
