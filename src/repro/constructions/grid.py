"""Grid-based quorum systems.

Two grid systems appear in the paper:

* :class:`RegularGrid` — the classical Maekawa-style grid over a
  ``side x side`` arrangement of servers, whose quorums are one full row plus
  one full column.  It is a *regular* quorum system (``IS = 2``), included as
  a boosting input and as a baseline regular system.
* :class:`MaskingGrid` — the Grid baseline of [MR98a] (second row of
  Table 2): a quorum is one full column together with ``2b + 1`` full rows.
  It masks ``b < sqrt(n)/3`` failures, has load roughly ``2b/sqrt(n)`` and
  its crash probability tends to one.

Both use the element labelling ``(row, column)`` with indices starting at 0.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator

import numpy as np

from repro.core import bitset
from repro.core.quorum_system import QuorumSystem
from repro.core.rng import ensure_rng
from repro.core.universe import Universe
from repro.exceptions import ConstructionError, InvalidParameterError

__all__ = ["RegularGrid", "MaskingGrid", "grid_side_for", "render_grid_quorum"]


def grid_side_for(n: int) -> int:
    """Return ``sqrt(n)`` for a perfect square ``n``, else raise.

    The grid constructions of the paper assume ``n`` is a perfect square; the
    usual engineering workaround (padding to the next square) changes the
    measures, so this library requires exact squares and says so explicitly.
    """
    side = math.isqrt(n)
    if side * side != n:
        raise ConstructionError(
            f"grid constructions need a perfect-square universe; {n} is not one"
        )
    return side


def _row(side: int, row_index: int) -> frozenset:
    return frozenset((row_index, column) for column in range(side))


def _column(side: int, column_index: int) -> frozenset:
    return frozenset((row, column_index) for row in range(side))


def _row_mask(side: int, row_index: int) -> int:
    """Bitmask of one full row; element ``(r, c)`` sits at universe bit ``r*side + c``."""
    return ((1 << side) - 1) << (row_index * side)


def _column_mask(side: int, column_index: int) -> int:
    """Bitmask of one full column (one bit every ``side`` positions)."""
    mask = 0
    for row in range(side):
        mask |= 1 << (row * side + column_index)
    return mask


class RegularGrid(QuorumSystem):
    """The Maekawa grid: a quorum is one full row plus one full column.

    It is fair with quorums of size ``2*side - 1``, load ``(2*side - 1)/n``
    (about ``2/sqrt(n)``), ``IS = 2`` and ``MT = side`` — a regular quorum
    system that masks no Byzantine failures but serves as a natural input to
    the boosting transform of Section 6.
    """

    def __init__(self, side: int):
        if side < 2:
            raise ConstructionError(f"grid side must be at least 2, got {side}")
        self.side = side
        self._universe = Universe(
            (row, column) for row in range(side) for column in range(side)
        )
        self.name = f"RegularGrid({side}x{side})"

    @property
    def universe(self) -> Universe:
        return self._universe

    def iter_quorum_masks(self) -> Iterator[int]:
        column_masks = [_column_mask(self.side, column) for column in range(self.side)]
        for row in range(self.side):
            row_mask = _row_mask(self.side, row)
            for column in range(self.side):
                yield row_mask | column_masks[column]

    def iter_quorums(self) -> Iterator[frozenset]:
        for mask in self.iter_quorum_masks():
            yield bitset.mask_to_frozenset(mask, self._universe)

    def num_quorums(self) -> int:
        return self.side * self.side

    def sample_quorum_mask(self, rng: np.random.Generator) -> int:
        """One uniform row plus one uniform column, assembled from line masks."""
        row = int(rng.integers(self.side))
        column = int(rng.integers(self.side))
        return _row_mask(self.side, row) | _column_mask(self.side, column)

    def sample_quorum(self, rng: np.random.Generator) -> frozenset:
        row = int(rng.integers(self.side))
        column = int(rng.integers(self.side))
        return _row(self.side, row) | _column(self.side, column)

    def min_quorum_size(self) -> int:
        return 2 * self.side - 1

    def max_quorum_size(self) -> int:
        return 2 * self.side - 1

    def min_intersection_size(self) -> int:
        return 2 if self.side >= 2 else 1

    def min_transversal_size(self) -> int:
        return self.side

    def load(self) -> float:
        """Return ``(2*side - 1) / n`` (the system is fair)."""
        return (2 * self.side - 1) / self.n

    def crash_probability(
        self,
        p: float,
        *,
        trials: int = 20_000,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Estimate ``Fp`` by Monte-Carlo: the grid survives iff some row and some
        column are completely alive (that row plus that column is an untouched quorum)."""
        if not 0.0 <= p <= 1.0:
            raise InvalidParameterError(f"crash probability must lie in [0, 1], got {p}")
        rng = ensure_rng(rng)
        crashed = rng.random((trials, self.side, self.side)) < p
        alive_rows = (~crashed).all(axis=2).any(axis=1)
        alive_columns = (~crashed).all(axis=1).any(axis=1)
        survived = alive_rows & alive_columns
        return float(1.0 - survived.mean())


class MaskingGrid(QuorumSystem):
    """The [MR98a] Grid baseline: one full column plus ``2b + 1`` full rows.

    Consistency holds because the column of one quorum crosses the ``2b + 1``
    rows of any other quorum in ``2b + 1`` distinct servers.  The resilience
    is ``f = MT - 1 = side - 2b - 1``, so the construction requires
    ``2b + 1 <= side`` (and is only ``b``-masking while ``f >= b``, i.e.
    ``b <= (side - 1)/3``).
    """

    def __init__(self, side: int, b: int):
        if side < 2:
            raise ConstructionError(f"grid side must be at least 2, got {side}")
        if b < 0:
            raise ConstructionError(f"masking parameter must be >= 0, got {b}")
        if 2 * b + 1 > side:
            raise ConstructionError(
                f"MaskingGrid needs 2b+1 <= side; got b={b}, side={side}"
            )
        if side - 2 * b - 1 < b:
            raise ConstructionError(
                f"MaskingGrid with side={side} can mask at most b={(side - 1) // 3} "
                f"failures (resilience side-2b-1 must be >= b); got b={b}"
            )
        self.side = side
        self.b = b
        self._universe = Universe(
            (row, column) for row in range(side) for column in range(side)
        )
        self.name = f"MR98-Grid({side}x{side}, b={b})"

    @property
    def universe(self) -> Universe:
        return self._universe

    def iter_quorum_masks(self) -> Iterator[int]:
        for column in range(self.side):
            column_mask = _column_mask(self.side, column)
            for rows in itertools.combinations(range(self.side), 2 * self.b + 1):
                mask = column_mask
                for row in rows:
                    mask |= _row_mask(self.side, row)
                yield mask

    def iter_quorums(self) -> Iterator[frozenset]:
        for mask in self.iter_quorum_masks():
            yield bitset.mask_to_frozenset(mask, self._universe)

    def num_quorums(self) -> int:
        return self.side * math.comb(self.side, 2 * self.b + 1)

    def sample_quorum_mask(self, rng: np.random.Generator) -> int:
        """One uniform column plus ``2b + 1`` uniform rows, as a bitmask."""
        column = int(rng.integers(self.side))
        rows = rng.choice(self.side, size=2 * self.b + 1, replace=False)
        mask = _column_mask(self.side, column)
        for row in rows:
            mask |= _row_mask(self.side, int(row))
        return mask

    def sample_quorum(self, rng: np.random.Generator) -> frozenset:
        column = int(rng.integers(self.side))
        rows = rng.choice(self.side, size=2 * self.b + 1, replace=False)
        quorum = set(_column(self.side, column))
        for row in rows:
            quorum |= _row(self.side, int(row))
        return frozenset(quorum)

    def min_quorum_size(self) -> int:
        rows_part = (2 * self.b + 1) * self.side
        column_part = self.side - (2 * self.b + 1)
        return rows_part + column_part

    def max_quorum_size(self) -> int:
        return self.min_quorum_size()

    def min_intersection_size(self) -> int:
        # Disjoint row sets and distinct columns: the column of each quorum
        # crosses the rows of the other, giving 2(2b+1) cells; sharing rows or
        # the column only increases the intersection.  When the row sets are
        # forced to overlap (2(2b+1) > side) the minimum pair is less regular,
        # so fall back to exhaustive enumeration in that case.
        if 2 * (2 * self.b + 1) <= self.side:
            return 2 * (2 * self.b + 1)
        return super().min_intersection_size()

    def min_transversal_size(self) -> int:
        # A set fails to be a transversal when some column and 2b+1 rows are
        # all untouched; hitting all but 2b rows (side - 2b servers) is the
        # cheapest way to rule that out (hitting every column costs side).
        return self.side - 2 * self.b

    def load(self) -> float:
        """Return ``c/n ~ (2b+2)/sqrt(n)`` (the system is fair by symmetry)."""
        return self.min_quorum_size() / self.n

    def crash_probability(
        self,
        p: float,
        *,
        trials: int = 20_000,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Estimate ``Fp`` by Monte-Carlo over grid crash patterns.

        A sample survives when some column is completely alive *and* at least
        ``2b + 1`` rows are completely alive; like M-Grid's, this probability
        tends to one as the grid grows (Table 2).
        """
        if not 0.0 <= p <= 1.0:
            raise InvalidParameterError(f"crash probability must lie in [0, 1], got {p}")
        rng = ensure_rng(rng)
        crashed = rng.random((trials, self.side, self.side)) < p
        alive_rows = (~crashed).all(axis=2).sum(axis=1)
        alive_column_exists = (~crashed).all(axis=1).any(axis=1)
        survived = (alive_rows >= 2 * self.b + 1) & alive_column_exists
        return float(1.0 - survived.mean())


def render_grid_quorum(side: int, quorum: frozenset, *, filled: str = "#", empty: str = ".") -> str:
    """Return an ASCII rendering of a quorum over a ``side x side`` grid.

    Used by the figure-reproduction benchmarks to produce pictures analogous
    to Figures 1 and 3 of the paper.
    """
    lines = []
    for row in range(side):
        cells = [filled if (row, column) in quorum else empty for column in range(side)]
        lines.append(" ".join(cells))
    return "\n".join(lines)
