"""Boosted finite projective planes (Section 6) and the general boosting transform.

``boostFPP(q, b) = FPP(q) ∘ Thresh(3b+1 of 4b+1)``: every point of a
projective plane of order ``q`` is replaced by a disjoint copy of the
``(3b+1)``-of-``(4b+1)`` threshold system.  By Theorem 4.7 the composition
has

* ``n = (4b+1)(q^2+q+1)`` servers,
* quorums of size ``(3b+1)(q+1)``,
* ``IS = 2b+1`` and ``MT = (b+1)(q+1)``,

so it is a ``b``-masking system with *optimal* load ``≈ 3/(4q)``
(Proposition 6.2) and crash probability at most
``(q+1) exp(-b(1-4p)^2 / 2)`` for ``p < 1/4`` (Proposition 6.3).

The same composition applied to *any* regular quorum system is the boosting
technique the paper highlights: :func:`boost_masking` turns a benign-fault
quorum system into a ``b``-masking one over a universe ``4b + 1`` times
larger.

Quorum bitmasks come for free from the composition layer: each plane point's
threshold copy occupies a contiguous bit range, so boosted quorums are ORs of
shifted block masks (see
:meth:`repro.core.composition.ComposedQuorumSystem.iter_quorum_masks`).
See ``docs/notation.md`` for the notation glossary (boosting, b-masking).
"""

from __future__ import annotations

import math

from repro.constructions.fpp import FiniteProjectivePlane
from repro.constructions.threshold import ThresholdQuorumSystem, boosting_block
from repro.core.composition import ComposedQuorumSystem
from repro.core.quorum_system import QuorumSystem
from repro.exceptions import ConstructionError, InvalidParameterError

__all__ = ["BoostedFPP", "boost_masking"]


class BoostedFPP(ComposedQuorumSystem):
    """The boostFPP(q, b) system: FPP(q) composed over Thresh(3b+1 of 4b+1).

    Parameters
    ----------
    q:
        Order of the projective plane (prime power).
    b:
        Masking parameter; the inner block has ``4b + 1`` servers.
    """

    def __init__(self, q: int, b: int):
        if b < 1:
            raise ConstructionError(
                f"boostFPP needs b >= 1 (b = 0 degenerates to the plain FPP); got {b}"
            )
        outer = FiniteProjectivePlane(q)
        inner = boosting_block(b)
        super().__init__(outer, inner, name=f"boostFPP(q={q}, b={b})")
        self.q = q
        self.b = b

    @property
    def plane(self) -> FiniteProjectivePlane:
        """The outer projective-plane component."""
        return self.outer

    @property
    def threshold_block(self) -> ThresholdQuorumSystem:
        """The inner threshold component."""
        return self.inner

    # ------------------------------------------------------------------
    # Proposition 6.1: combinatorial parameters (also available through the
    # generic Theorem 4.7 algebra of the parent class; restated here so the
    # values can be checked against the paper's closed forms).
    # ------------------------------------------------------------------
    def min_quorum_size(self) -> int:
        return (3 * self.b + 1) * (self.q + 1)

    def min_intersection_size(self) -> int:
        return 2 * self.b + 1

    def min_transversal_size(self) -> int:
        return (self.b + 1) * (self.q + 1)

    def masking_bound(self) -> int:
        return min(self.min_transversal_size() - 1, (self.min_intersection_size() - 1) // 2)

    def load(self) -> float:
        """Return ``c/n = (3b+1)(q+1) / ((4b+1)(q^2+q+1)) ≈ 3/(4q)`` (Proposition 6.2)."""
        return self.min_quorum_size() / self.n

    # ------------------------------------------------------------------
    # Proposition 6.3: availability.
    # ------------------------------------------------------------------
    def crash_probability(self, p: float, **_: object) -> float:
        """Return the composed upper estimate ``(1 - (1-r)^(q+1))`` with ``r = Fp(Thresh)``.

        The inner threshold block's crash probability ``r(p)`` is exact (a
        binomial tail); the outer plane's crash probability is bounded by the
        probability that one fixed line dies, ``1 - (1 - r)^(q+1)``
        (equation (6)).  The result is therefore an upper bound on the true
        ``Fp``, tight for small ``r``, and the quantity the paper's Section 8
        comparison uses.
        """
        if not 0.0 <= p <= 1.0:
            raise InvalidParameterError(f"crash probability must lie in [0, 1], got {p}")
        inner_failure = self.threshold_block.crash_probability(p)
        return 1.0 - (1.0 - inner_failure) ** (self.q + 1)

    def crash_probability_chernoff_bound(self, p: float) -> float:
        """Return Proposition 6.3's closed form ``(q+1) exp(-b (1-4p)^2 / 2)``.

        Only meaningful for ``p < 1/4`` (the bound is clipped at 1 otherwise).
        """
        if not 0.0 <= p <= 1.0:
            raise InvalidParameterError(f"crash probability must lie in [0, 1], got {p}")
        if p >= 0.25:
            return 1.0
        bound = (self.q + 1) * math.exp(-self.b * (1.0 - 4.0 * p) ** 2 / 2.0)
        return min(1.0, bound)


def boost_masking(regular_system: QuorumSystem, b: int) -> ComposedQuorumSystem:
    """Boost a regular quorum system into a ``b``-masking one (Section 6's technique).

    The result is ``regular_system ∘ Thresh(3b+1 of 4b+1)``: by Theorem 4.7
    its minimal intersection is ``IS(regular) * (2b+1) >= 2b+1`` and its
    minimal transversal is ``MT(regular) * (b+1) >= b+1``, so by Lemma 3.6 it
    is ``b``-masking whatever the (regular) input system was.

    Parameters
    ----------
    regular_system:
        Any quorum system (``IS >= 1``); typically a benign-fault-tolerant
        construction such as a grid, majority, or crumbling wall.
    b:
        The desired masking parameter.
    """
    if b < 0:
        raise ConstructionError(f"masking parameter must be >= 0, got {b}")
    block = boosting_block(b)
    return ComposedQuorumSystem(
        regular_system, block, name=f"boost({regular_system.name}, b={b})"
    )
