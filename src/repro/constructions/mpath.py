"""The multi-path (M-Path) construction of Section 7.

Servers are the vertices of a triangulated ``sqrt(n) x sqrt(n)`` grid
(:class:`~repro.percolation.lattice.TriangularGrid`).  A quorum consists of
``sqrt(2b+1)`` vertex-disjoint left-right paths together with ``sqrt(2b+1)``
vertex-disjoint top-bottom paths (Figure 3).  The LR paths of one quorum must
cross the TB paths of any other, which yields intersections of at least
``2b + 1`` vertices (Proposition 7.1).

M-Path matches M-Grid's optimal load (Proposition 7.2) but, unlike every
other construction in the paper, it also has optimal crash probability for
*every* ``p < 1/2`` (Proposition 7.3) — a consequence of the percolation
threshold of the triangular lattice being 1/2.  The generic quorum family is
far too large to enumerate, so this class exposes

* analytic combinatorial parameters,
* the straight-line sub-family of quorums (rows and columns only), which is
  what the load-optimal strategy of Proposition 7.2 uses, and
* Monte-Carlo availability via the percolation substrate (disjoint open
  crossings counted by max-flow).
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator

import numpy as np

from repro.core import bitset
from repro.core.quorum_system import ExplicitQuorumSystem, QuorumSystem
from repro.core.rng import ensure_rng
from repro.core.universe import Universe
from repro.exceptions import ComputationError, ConstructionError, InvalidParameterError
from repro.percolation.lattice import TriangularGrid
from repro.percolation.site import count_disjoint_crossings, sample_open_vertices

__all__ = ["MPath"]


class MPath(QuorumSystem):
    """The M-Path(b) quorum system over a triangulated ``side x side`` grid.

    Parameters
    ----------
    side:
        The grid side; the universe has ``n = side ** 2`` servers labelled by
        their lattice coordinates ``(i, j)`` with ``1 <= i, j <= side``.
    b:
        The masking parameter.  The construction uses
        ``k = ceil(sqrt(2b + 1))`` paths per direction and requires
        ``MT = side - k + 1 >= b + 1`` (Proposition 7.1).
    """

    #: Only the straight-line sub-family is enumerated; the full system is
    #: too large, so generic exact measures must not silently use it.
    enumerates_all_quorums = False

    def __init__(self, side: int, b: int):
        if side < 2:
            raise ConstructionError(f"grid side must be at least 2, got {side}")
        if b < 0:
            raise ConstructionError(f"masking parameter must be >= 0, got {b}")
        k = math.isqrt(2 * b + 1)
        if k * k < 2 * b + 1:
            k += 1
        if k > side:
            raise ConstructionError(
                f"M-Path needs ceil(sqrt(2b+1)) <= side; got b={b}, side={side}"
            )
        if side - k + 1 < b + 1:
            raise ConstructionError(
                f"M-Path over a {side}x{side} grid is not {b}-masking: "
                f"resilience {side - k} < b = {b}"
            )
        self.side = side
        self.b = b
        #: Number of LR (and of TB) paths per quorum, ``ceil(sqrt(2b+1))``.
        self.k = k
        self.grid = TriangularGrid(side)
        self._universe = Universe(self.grid.vertices())
        self.name = f"M-Path({side}x{side}, b={b})"

    # ------------------------------------------------------------------
    # Structure.
    # ------------------------------------------------------------------
    @property
    def universe(self) -> Universe:
        return self._universe

    def _line_masks(self) -> tuple[dict[int, int], dict[int, int]]:
        """Per-row and per-column vertex bitmasks over the universe (built once)."""
        cached = getattr(self, "_line_mask_cache", None)
        if cached is None:
            row_masks = {
                j: bitset.mask_of(self.grid.row(j), self._universe)
                for j in range(1, self.side + 1)
            }
            column_masks = {
                i: bitset.mask_of(self.grid.column(i), self._universe)
                for i in range(1, self.side + 1)
            }
            cached = (row_masks, column_masks)
            self._line_mask_cache = cached
        return cached

    def _straight_quorum(self, rows: tuple[int, ...], columns: tuple[int, ...]) -> frozenset:
        return bitset.mask_to_frozenset(self._straight_mask(rows, columns), self._universe)

    def _straight_mask(self, rows: tuple[int, ...], columns: tuple[int, ...]) -> int:
        row_masks, column_masks = self._line_masks()
        mask = 0
        for j in rows:
            mask |= row_masks[j]
        for i in columns:
            mask |= column_masks[i]
        return mask

    def iter_quorum_masks(self) -> Iterator[int]:
        row_masks, column_masks = self._line_masks()
        indices = range(1, self.side + 1)
        for rows in itertools.combinations(indices, self.k):
            row_mask = 0
            for j in rows:
                row_mask |= row_masks[j]
            for columns in itertools.combinations(indices, self.k):
                mask = row_mask
                for i in columns:
                    mask |= column_masks[i]
                yield mask

    def iter_quorums(self) -> Iterator[frozenset]:
        """Yield the *straight-line* quorums (k rows plus k columns).

        This is a strict sub-family of the full M-Path quorum set (any
        collection of disjoint lattice paths would do), but it is the family
        the load-optimal strategy of Proposition 7.2 draws from, and it is
        the family the simulator uses.
        """
        for mask in self.iter_quorum_masks():
            yield bitset.mask_to_frozenset(mask, self._universe)

    def straight_line_subsystem(self, *, limit: int = 200_000) -> ExplicitQuorumSystem:
        """Return the straight-line quorums as an explicit quorum system."""
        quorums = []
        for index, quorum in enumerate(self.iter_quorums()):
            if index >= limit:
                raise ComputationError(
                    f"more than {limit} straight-line quorums; raise the limit explicitly"
                )
            quorums.append(quorum)
        return ExplicitQuorumSystem(
            self._universe, quorums, name=f"{self.name} (straight lines)", validate=False
        )

    def sample_quorum_mask(self, rng: np.random.Generator) -> int:
        """Draw a straight-line quorum (Proposition 7.2's strategy) as a bitmask."""
        rows = tuple(int(r) + 1 for r in rng.choice(self.side, size=self.k, replace=False))
        columns = tuple(int(c) + 1 for c in rng.choice(self.side, size=self.k, replace=False))
        return self._straight_mask(rows, columns)

    def sample_quorum(self, rng: np.random.Generator) -> frozenset:
        """Sample a straight-line quorum: k uniform rows and k uniform columns.

        This is exactly the strategy used in the proof of Proposition 7.2 and
        it realises the optimal load ``2k/side``.
        """
        rows = tuple(int(r) + 1 for r in rng.choice(self.side, size=self.k, replace=False))
        columns = tuple(int(c) + 1 for c in rng.choice(self.side, size=self.k, replace=False))
        return self._straight_quorum(rows, columns)

    # ------------------------------------------------------------------
    # Analytic measures (Propositions 7.1 and 7.2).
    # ------------------------------------------------------------------
    def min_quorum_size(self) -> int:
        """Return the straight-line quorum size ``2 k side - k^2 <= 2 sqrt(n(2b+1))``.

        This is an upper bound on the true ``c`` (bent paths cannot be
        shorter than ``side`` vertices each, and the straight-line family
        achieves the maximum row/column overlap), and it is the value the
        paper's ``c <= 2 sqrt(n(2b+1))`` statement refers to.
        """
        return 2 * self.k * self.side - self.k * self.k

    def min_intersection_size(self) -> int:
        """Return ``k^2 >= 2b + 1``: LR paths of one quorum cross TB paths of the other."""
        return self.k * self.k

    def min_transversal_size(self) -> int:
        """Return ``side - k + 1`` (as in M-Grid; Proposition 7.1)."""
        return self.side - self.k + 1

    def load(self) -> float:
        """Return the load of the straight-line strategy of Proposition 7.2.

        The strategy picks ``k`` of the ``side`` rows and ``k`` of the
        ``side`` columns uniformly; the probability that a fixed vertex is
        touched is ``1 - (1 - k/side)^2 = 2k/side - (k/side)^2``, which the
        paper upper-bounds by ``2k/side ~ 2 sqrt((2b+1)/n)``.
        """
        fraction = self.k / self.side
        return 2.0 * fraction - fraction * fraction

    def masking_bound(self) -> int:
        return max(
            0,
            min(
                self.min_transversal_size() - 1,
                (self.min_intersection_size() - 1) // 2,
            ),
        )

    # ------------------------------------------------------------------
    # Availability (Proposition 7.3) via percolation.
    # ------------------------------------------------------------------
    def survives(self, crashed: set) -> bool:
        """Return ``True`` when some quorum avoids the ``crashed`` vertices.

        A quorum exists among the alive vertices exactly when there are at
        least ``k`` vertex-disjoint open LR crossings *and* at least ``k``
        vertex-disjoint open TB crossings (the LR and TB families may share
        vertices with each other, just not within a family).
        """
        open_vertices = {
            vertex for vertex in self.grid.vertices() if vertex not in crashed
        }
        lr = count_disjoint_crossings(self.grid, open_vertices, direction="lr")
        if lr < self.k:
            return False
        tb = count_disjoint_crossings(self.grid, open_vertices, direction="tb")
        return tb >= self.k

    def crash_probability(
        self,
        p: float,
        *,
        trials: int = 300,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Estimate ``Fp`` by Monte-Carlo percolation sampling.

        Each trial crashes every vertex independently with probability ``p``
        and checks quorum survival with two max-flow computations.
        """
        if not 0.0 <= p <= 1.0:
            raise InvalidParameterError(f"crash probability must lie in [0, 1], got {p}")
        if trials <= 0:
            raise InvalidParameterError(f"trials must be positive, got {trials}")
        rng = ensure_rng(rng)
        failures = 0
        for _ in range(trials):
            open_vertices = sample_open_vertices(self.grid, p, rng)
            lr = count_disjoint_crossings(self.grid, open_vertices, direction="lr")
            if lr < self.k:
                failures += 1
                continue
            tb = count_disjoint_crossings(self.grid, open_vertices, direction="tb")
            if tb < self.k:
                failures += 1
        return failures / trials

    def crash_probability_upper_bound(self, p: float, p_prime: float | None = None) -> float:
        """Return the analytic bound of Proposition 7.3 (via Theorems B.1 and B.3).

        Combines the Bazzi-style counting estimate
        ``P_p'(LR) >= 1 - sqrt(n)(3p')^sqrt(n) / (1 - 3p')`` (valid for
        ``p' < 1/3``) with the interior inequality of Theorem B.3 to bound the
        probability that fewer than ``k`` disjoint crossings exist, and
        doubles it for the two directions (equation (7)).

        Parameters
        ----------
        p:
            The per-server crash probability (< 1/3 for this estimate).
        p_prime:
            The auxiliary probability ``p < p' < 1/3`` of Theorem B.3.  When
            omitted, the bound is minimised over a grid of candidate values
            (the paper picks ``p' = 1/7`` by hand for its Section 8 numbers).
        """
        if not 0.0 <= p < 1.0 / 3.0:
            raise ComputationError(
                f"the counting estimate needs p < 1/3, got {p}; "
                "use the Monte-Carlo crash_probability instead"
            )

        def evaluate(prime: float) -> float:
            one_minus_lr = self.side * (3.0 * prime) ** self.side / (1.0 - 3.0 * prime)
            amplification = ((1.0 - p) / (prime - p)) ** (self.k - 1)
            return 2.0 * amplification * one_minus_lr

        if p_prime is not None:
            if not p < p_prime < 1.0 / 3.0:
                raise ComputationError(
                    f"need p < p_prime < 1/3, got p={p}, p_prime={p_prime}"
                )
            return min(1.0, evaluate(p_prime))

        candidates = [p + (1.0 / 3.0 - p) * fraction for fraction in
                      (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)]
        return min(1.0, min(evaluate(prime) for prime in candidates))
