"""Crumbling-wall quorum systems [PW97b].

A crumbling wall arranges the universe in rows ("courses") of possibly
different widths; a quorum is one full row together with a single
representative from every row *below* it.  Any two quorums intersect (the
lower full row meets the other quorum's representative in that row), so the
wall is a regular quorum system.

Crumbling walls are cited in the paper's related work as practical
benign-fault quorum systems; this implementation exists mainly as an input
for the boosting transform of Section 6 (``boost_masking``), demonstrating
that the transform works on irregular, non-fair systems too.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Sequence

import numpy as np

from repro.core import bitset
from repro.core.quorum_system import QuorumSystem
from repro.core.universe import Universe
from repro.exceptions import ConstructionError

__all__ = ["CrumblingWall"]


class CrumblingWall(QuorumSystem):
    """A crumbling wall with the given row widths.

    Parameters
    ----------
    row_widths:
        Width of each row, top to bottom.  Every width must be positive and
        there must be at least one row.  Elements are labelled
        ``(row, position)``.
    """

    def __init__(self, row_widths: Sequence[int]):
        widths = tuple(int(width) for width in row_widths)
        if not widths:
            raise ConstructionError("a crumbling wall needs at least one row")
        if any(width <= 0 for width in widths):
            raise ConstructionError(f"row widths must be positive, got {widths}")
        self.row_widths = widths
        self._rows = [
            tuple((row, position) for position in range(width))
            for row, width in enumerate(widths)
        ]
        self._universe = Universe(
            element for row in self._rows for element in row
        )
        self.name = f"CrumblingWall({list(widths)})"

    @property
    def universe(self) -> Universe:
        return self._universe

    @property
    def num_rows(self) -> int:
        """The number of rows (courses) in the wall."""
        return len(self.row_widths)

    def iter_quorum_masks(self) -> Iterator[int]:
        # Rows are laid out consecutively in the universe, so the bit of
        # element (row, position) is row_offset + position.
        offsets = self._row_offsets()
        row_masks = [
            ((1 << width) - 1) << offsets[row] for row, width in enumerate(self.row_widths)
        ]
        for row_index in range(self.num_rows):
            lower_offsets = offsets[row_index + 1:]
            lower_widths = self.row_widths[row_index + 1:]
            base = row_masks[row_index]
            for representatives in itertools.product(
                *(range(width) for width in lower_widths)
            ):
                mask = base
                for lower_offset, position in zip(lower_offsets, representatives):
                    mask |= 1 << (lower_offset + position)
                yield mask

    def iter_quorums(self) -> Iterator[frozenset]:
        for mask in self.iter_quorum_masks():
            yield bitset.mask_to_frozenset(mask, self._universe)

    def num_quorums(self) -> int:
        total = 0
        for row_index in range(self.num_rows):
            product = 1
            for width in self.row_widths[row_index + 1:]:
                product *= width
            total += product
        return total

    def _row_offsets(self) -> tuple[int, ...]:
        """Universe bit offset of each row's first element (rows are contiguous)."""
        cached = getattr(self, "_row_offset_cache", None)
        if cached is None:
            offsets = []
            offset = 0
            for width in self.row_widths:
                offsets.append(offset)
                offset += width
            cached = tuple(offsets)
            self._row_offset_cache = cached
        return cached

    def sample_quorum_mask(self, rng: np.random.Generator) -> int:
        """One uniform full row plus one representative per lower row, as a bitmask."""
        offsets = self._row_offsets()
        row_index = int(rng.integers(self.num_rows))
        mask = ((1 << self.row_widths[row_index]) - 1) << offsets[row_index]
        for lower in range(row_index + 1, self.num_rows):
            position = int(rng.integers(self.row_widths[lower]))
            mask |= 1 << (offsets[lower] + position)
        return mask

    def sample_quorum(self, rng: np.random.Generator) -> frozenset:
        row_index = int(rng.integers(self.num_rows))
        quorum = set(self._rows[row_index])
        for lower_row in self._rows[row_index + 1:]:
            quorum.add(lower_row[int(rng.integers(len(lower_row)))])
        return frozenset(quorum)

    def min_quorum_size(self) -> int:
        return min(
            self.row_widths[row_index] + (self.num_rows - row_index - 1)
            for row_index in range(self.num_rows)
        )

    def min_transversal_size(self) -> int:
        # Hitting every quorum requires hitting, for every row i, either the
        # full row i or all the "representative" positions below it; the
        # cheapest transversal is the last (bottom) row when it is narrow, or
        # one element per row otherwise.  For the wall shapes used in this
        # library (bottom row of width 1 or small) the bottom row is a
        # transversal; fall back to the generic computation otherwise.
        if self.row_widths[-1] == 1:
            return 1
        return super().min_transversal_size()
