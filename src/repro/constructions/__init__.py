"""Quorum-system constructions.

The four new systems of the paper (M-Grid, RT, boostFPP, M-Path), the two
[MR98a] baselines (Threshold, Grid) they are compared against in Table 2 and
Section 8, and a few classical regular systems used as boosting inputs.
"""

from repro.constructions.boost_fpp import BoostedFPP, boost_masking
from repro.constructions.crumbling_wall import CrumblingWall
from repro.constructions.fpp import FiniteProjectivePlane
from repro.constructions.grid import MaskingGrid, RegularGrid, grid_side_for, render_grid_quorum
from repro.constructions.mgrid import MGrid
from repro.constructions.mpath import MPath
from repro.constructions.recursive_threshold import RecursiveThreshold
from repro.constructions.threshold import (
    ThresholdQuorumSystem,
    boosting_block,
    majority,
    masking_threshold,
)
from repro.constructions.tree import TreeQuorumSystem
from repro.constructions.wheel import WheelQuorumSystem

__all__ = [
    "BoostedFPP",
    "CrumblingWall",
    "FiniteProjectivePlane",
    "MGrid",
    "MPath",
    "MaskingGrid",
    "RecursiveThreshold",
    "RegularGrid",
    "ThresholdQuorumSystem",
    "TreeQuorumSystem",
    "WheelQuorumSystem",
    "boost_masking",
    "boosting_block",
    "grid_side_for",
    "majority",
    "masking_threshold",
    "render_grid_quorum",
]
