"""Recursive threshold systems RT(k, l) of Section 5.2.

The basic block is the ``l``-of-``k`` threshold system (``k > l > k/2``); the
RT system of depth ``h`` composes the block over itself ``h - 1`` times,
giving ``n = k^h`` servers.  Proposition 5.3 gives the parameters

* ``c = l^h``, ``IS = (2l - k)^h``, ``MT = (k - l + 1)^h``,

Proposition 5.5 the load ``n^-(1 - log_k l)``, and Propositions 5.6/5.7 the
availability: the crash probability follows the exact recurrence
``F(h) = g(F(h-1))`` with ``F(0) = p`` where ``g`` is the binomial tail of
the basic block, giving a critical probability ``p_c`` (0.2324 for RT(4,3))
below which ``Fp -> 0`` as the depth grows.

Elements are integers ``0 .. k^h - 1``; the base-``k`` digits of an element
are its path from the root of the recursion tree (most significant digit =
top level).
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator

import numpy as np
from scipy import stats

from repro.core import bitset
from repro.core.quorum_system import QuorumSystem
from repro.core.universe import Universe
from repro.exceptions import ConstructionError, InvalidParameterError
from repro.percolation.critical import fixed_point_of_reliability

__all__ = ["RecursiveThreshold"]


class RecursiveThreshold(QuorumSystem):
    """The RT(k, l) system of depth ``h`` (Figure 2 shows RT(4, 3), ``h = 2``).

    Parameters
    ----------
    k:
        Branching factor of the recursion (size of the basic block).
    l:
        Threshold of the basic block; must satisfy ``k > l > k/2``.
    depth:
        Recursion depth ``h >= 1``; the universe has ``k ** depth`` servers.
    """

    def __init__(self, k: int, l: int, depth: int):
        if not k > l > k / 2:
            raise ConstructionError(
                f"RT requires k > l > k/2; got k={k}, l={l}"
            )
        if depth < 1:
            raise ConstructionError(f"depth must be >= 1, got {depth}")
        self.k = k
        self.l = l
        self.depth = depth
        self._n = k ** depth
        self._universe = Universe.of_size(self._n)
        self.name = f"RT({k},{l}) depth {depth}"

    # ------------------------------------------------------------------
    # Structure.
    # ------------------------------------------------------------------
    @property
    def universe(self) -> Universe:
        return self._universe

    def _subtree_masks(self, root: int, level: int) -> Iterator[int]:
        """Yield quorum bitmasks of the subtree rooted at offset ``root``.

        Elements are the integers ``0 .. k^h - 1`` and the universe index of
        element ``i`` is ``i`` itself, so a subtree quorum is the OR of its
        chosen children's masks.
        """
        if level == 0:
            yield 1 << root
            return
        child_span = self.k ** (level - 1)
        children = [root + child * child_span for child in range(self.k)]
        for chosen in itertools.combinations(children, self.l):
            child_mask_lists = [
                list(self._subtree_masks(child, level - 1)) for child in chosen
            ]
            for combination in itertools.product(*child_mask_lists):
                mask = 0
                for part in combination:
                    mask |= part
                yield mask

    def iter_quorum_masks(self) -> Iterator[int]:
        return self._subtree_masks(0, self.depth)

    def iter_quorums(self) -> Iterator[frozenset]:
        for mask in self.iter_quorum_masks():
            yield bitset.mask_to_frozenset(mask, self._universe)

    def num_quorums(self) -> int:
        count = 1
        for _ in range(self.depth):
            count = math.comb(self.k, self.l) * count ** self.l
        return count

    def sample_quorum_mask(self, rng: np.random.Generator) -> int:
        """Sample a quorum as a bitmask: ``l`` uniform children at every level.

        Consumes the same draw sequence as :meth:`sample_quorum`, so the two
        views are stream-compatible; the recursion ORs subtree masks instead
        of unioning element sets.
        """

        def sample_subtree_mask(root: int, level: int) -> int:
            if level == 0:
                return 1 << root
            child_span = self.k ** (level - 1)
            chosen = rng.choice(self.k, size=self.l, replace=False)
            mask = 0
            for child in chosen:
                mask |= sample_subtree_mask(root + int(child) * child_span, level - 1)
            return mask

        return sample_subtree_mask(0, self.depth)

    def sample_quorum(self, rng: np.random.Generator) -> frozenset:
        """Sample a quorum by choosing ``l`` children uniformly at every level."""

        def sample_subtree(root: int, level: int) -> set[int]:
            if level == 0:
                return {root}
            child_span = self.k ** (level - 1)
            chosen = rng.choice(self.k, size=self.l, replace=False)
            members: set[int] = set()
            for child in chosen:
                members |= sample_subtree(root + int(child) * child_span, level - 1)
            return members

        return frozenset(sample_subtree(0, self.depth))

    # ------------------------------------------------------------------
    # Analytic measures (Propositions 5.3 and 5.5).
    # ------------------------------------------------------------------
    def min_quorum_size(self) -> int:
        return self.l ** self.depth

    def max_quorum_size(self) -> int:
        return self.min_quorum_size()

    def min_intersection_size(self) -> int:
        return (2 * self.l - self.k) ** self.depth

    def min_transversal_size(self) -> int:
        return (self.k - self.l + 1) ** self.depth

    def load(self) -> float:
        """Return ``(l/k)^h = n^-(1 - log_k l)`` (Proposition 5.5)."""
        return (self.l / self.k) ** self.depth

    def masking_bound(self) -> int:
        """Return Corollary 5.4's ``b = min{(IS - 1)/2, MT - 1}``."""
        return max(
            0,
            min(
                (self.min_intersection_size() - 1) // 2,
                self.min_transversal_size() - 1,
            ),
        )

    # ------------------------------------------------------------------
    # Availability (Propositions 5.6 and 5.7).
    # ------------------------------------------------------------------
    def block_crash_function(self, p: float) -> float:
        """Return ``g(p)``: the crash probability of the basic ``l``-of-``k`` block.

        ``g(p) = P(Binomial(k, p) >= k - l + 1)``; for RT(4, 3) this is the
        polynomial ``6p^2 - 8p^3 + 3p^4`` quoted in the paper.
        """
        if not 0.0 <= p <= 1.0:
            raise InvalidParameterError(f"crash probability must lie in [0, 1], got {p}")
        return float(stats.binom.sf(self.k - self.l, self.k, p))

    def crash_probability(self, p: float) -> float:
        """Return the exact ``Fp`` via the recurrence ``F(h) = g(F(h-1))``, ``F(0) = p``."""
        value = float(p)
        for _ in range(self.depth):
            value = self.block_crash_function(value)
        return value

    def critical_probability(self) -> float:
        """Return ``p_c``, the unique non-trivial fixed point of ``g`` (Proposition 5.6).

        Below ``p_c`` the crash probability decays to zero with the depth;
        above it, it tends to one.  For RT(4, 3) the value is 0.2324.
        """
        return fixed_point_of_reliability(self.block_crash_function)

    def crash_probability_upper_bound(self, p: float) -> float:
        """Return Proposition 5.7's bound ``(C(k, l-1) p)^((k - l + 1)^h)``.

        Meaningful (decaying) only when ``p < 1 / C(k, l-1)``.
        """
        base = math.comb(self.k, self.l - 1) * p
        return float(base ** ((self.k - self.l + 1) ** self.depth))
