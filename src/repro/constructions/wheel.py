"""The wheel quorum system.

A classical low-load regular quorum system: one *hub* server and ``n - 1``
*rim* servers.  The quorums are every ``{hub, rim_i}`` pair plus the full
rim.  Any two quorums intersect (two spokes share the hub; a spoke and the
rim share its rim server), the load can be balanced down to ``O(1/n)`` on the
rim at the price of a constant load on the hub, and the system survives
either the hub or any single rim server crashing.

The wheel is the textbook example of the load/fault-tolerance tension for
*regular* systems and another irregular, unfair input for the boosting
transform of Section 6.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.core.quorum_system import QuorumSystem
from repro.core.universe import Universe
from repro.exceptions import ConstructionError

__all__ = ["WheelQuorumSystem"]

#: The hub is always element 0; rim servers are 1 .. n-1.
HUB = 0


class WheelQuorumSystem(QuorumSystem):
    """The wheel over ``n`` servers (one hub, ``n - 1`` rim servers).

    Parameters
    ----------
    n:
        Total number of servers; must be at least 3 so the rim is a cycle
        worth the name.
    """

    def __init__(self, n: int):
        if n < 3:
            raise ConstructionError(f"a wheel needs at least 3 servers, got {n}")
        self._n = n
        self._universe = Universe.of_size(n)
        self.name = f"Wheel({n})"

    @property
    def universe(self) -> Universe:
        return self._universe

    @property
    def rim(self) -> frozenset:
        """The rim servers (everything but the hub)."""
        return frozenset(range(1, self._n))

    def iter_quorums(self) -> Iterator[frozenset]:
        for rim_server in range(1, self._n):
            yield frozenset({HUB, rim_server})
        yield self.rim

    def num_quorums(self) -> int:
        return self._n

    def min_quorum_size(self) -> int:
        return 2

    def min_intersection_size(self) -> int:
        return 1

    def min_transversal_size(self) -> int:
        # Hit every spoke and the rim: the hub plus any rim server, or two
        # well-chosen rim servers never suffice to hit all spokes, so the
        # cheapest transversals are {hub, any rim server}.
        return 2

    def sample_quorum(self, rng: np.random.Generator) -> frozenset:
        """Sample with the load-balancing strategy: mostly spokes, rarely the rim."""
        if rng.random() < 1.0 / self._n:
            return self.rim
        rim_server = 1 + int(rng.integers(self._n - 1))
        return frozenset({HUB, rim_server})
