"""``python -m repro lint`` — the invariant linter from the shell.

Exit status: 0 when every checked contract holds, 1 when violations were
found, 2 on usage errors.  ``--json`` emits the schema-stable report
(``schema_version`` 1) that CI uploads as a build artifact::

    {
      "schema_version": 1,
      "root": "src/repro",
      "rules_run": ["R0", "R1", ...],
      "files_checked": 63,
      "ok": true,
      "counts": {},
      "violations": []
    }

``violations`` entries are ``{rule, path, line, col, message}`` sorted by
``(path, line, col, rule)``; ``counts`` maps rule id to violation count for
the rules that fired.  The schema is locked by ``tests/test_lint.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import repro
from repro.exceptions import InvalidParameterError, ReproError
from repro.lint.ast_checks import lint_tree
from repro.lint.rules import RULES, Violation, rule_ids
from repro.lint.typing_gate import run_mypy

__all__ = ["build_report", "main"]

#: JSON report schema version; bump only with a migration note in
#: ``docs/static_analysis.md``.
SCHEMA_VERSION = 1


def _default_root() -> Path:
    """The installed ``repro`` package directory (works from any cwd)."""
    package_file = repro.__file__
    if package_file is None:  # pragma: no cover - namespace-package guard
        raise InvalidParameterError(
            "cannot locate the repro package source; pass an explicit path"
        )
    return Path(package_file).parent


def build_report(
    root: Path | str,
    violations: list[Violation],
    files_checked: int,
    rules_run: tuple[str, ...],
) -> dict[str, object]:
    """Assemble the schema-stable JSON payload from one lint run."""
    counts: dict[str, int] = {}
    for violation in violations:
        counts[violation.rule] = counts.get(violation.rule, 0) + 1
    return {
        "schema_version": SCHEMA_VERSION,
        "root": str(root),
        "rules_run": list(rules_run),
        "files_checked": files_checked,
        "ok": not violations,
        "counts": dict(sorted(counts.items())),
        "violations": [violation.to_dict() for violation in violations],
    }


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description=(
            "AST invariant linter for the paper-bound code contracts "
            "(rules R0-R5 and the T1 strict-typing gate; see "
            "docs/static_analysis.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or package roots to lint (default: the repro package)",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable report")
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="run only this rule (repeatable; R0 pragma discipline always runs)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "--pyproject",
        default=None,
        help="pyproject.toml carrying the [tool.mypy] ratchet (default: auto-detect)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also write the JSON report to FILE (for CI artifacts)",
    )
    parser.add_argument(
        "--mypy",
        action="store_true",
        help="additionally run the staged mypy gate when mypy is installed",
    )
    return parser


def _cmd_list_rules(as_json: bool) -> int:
    if as_json:
        payload = [
            {
                "id": rule.id,
                "name": rule.name,
                "scope": rule.scope,
                "summary": rule.summary,
                "rationale": rule.rationale,
            }
            for rule in RULES.values()
        ]
        print(json.dumps(payload, indent=2))
        return 0
    for rule in RULES.values():
        print(f"{rule.id}  {rule.name} [{rule.scope}]")
        print(f"    {rule.summary}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status (0 clean, 1 violations)."""
    try:
        return _main(argv)
    except BrokenPipeError:
        # Piping into `head` closes stdout early; that is not a lint failure.
        return 0


def _main(argv: list[str] | None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        return _cmd_list_rules(args.json)

    selected: frozenset[str] | None = None
    if args.rule:
        unknown = sorted(set(args.rule) - set(RULES))
        if unknown:
            print(
                f"error: unknown rule(s) {', '.join(unknown)}; "
                f"known: {', '.join(rule_ids())}",
                file=sys.stderr,
            )
            return 2
        selected = frozenset(args.rule)

    roots = [Path(raw) for raw in args.paths] if args.paths else [_default_root()]
    pyproject = Path(args.pyproject) if args.pyproject else None

    violations: list[Violation] = []
    files_checked = 0
    try:
        for root in roots:
            tree_violations, tree_files = lint_tree(
                root, rules=selected, pyproject=pyproject
            )
            violations.extend(tree_violations)
            files_checked += tree_files
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    rules_run = rule_ids() if selected is None else tuple(
        rule for rule in rule_ids() if rule in (selected | {"R0"})
    )
    report = build_report(
        roots[0] if len(roots) == 1 else Path("."), violations, files_checked, rules_run
    )

    mypy_note: str | None = None
    if args.mypy:
        mypy_result = run_mypy()
        if mypy_result is None:
            mypy_note = "mypy gate: skipped (mypy is not installed; CI runs it)"
            report["mypy"] = {"ran": False, "exit_status": None}
        else:
            status, output = mypy_result
            mypy_note = output.strip() or f"mypy gate: exit status {status}"
            report["mypy"] = {"ran": True, "exit_status": status}
            if status != 0:
                report["ok"] = False

    if args.output:
        Path(args.output).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )

    if args.json:
        print(json.dumps(report, indent=2))
    else:
        for violation in violations:
            print(violation.render())
        if mypy_note:
            print(mypy_note)
        status_word = "ok" if report["ok"] else "FAILED"
        print(
            f"repro lint: {files_checked} files, "
            f"{len(violations)} violation(s) — {status_word}"
        )
    return 0 if report["ok"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
