"""Rule and violation records for the :mod:`repro.lint` invariant linter.

A :class:`Rule` is a declared contract between the codebase and the paper
reproduction; a :class:`Violation` is one place a file breaks it.  The rule
catalogue is data, not behaviour — the checkers live in
:mod:`repro.lint.ast_checks` and :mod:`repro.lint.typing_gate` — so tools
(the CLI, the JSON report, the docs table) can enumerate rules without
importing any checker machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RULES", "Rule", "Violation", "rule_ids"]


@dataclass(frozen=True)
class Rule:
    """One machine-checked contract.

    Attributes
    ----------
    id:
        Stable short identifier (``"R1"`` ... ``"R5"``, ``"T1"``, ``"R0"``)
        used in pragmas, ``--rule`` filters and the JSON report.
    name:
        Kebab-case human name.
    summary:
        One-line statement of what the rule flags.
    rationale:
        The paper-bound invariant the rule protects, and the dynamic
        check it is the static twin of.
    scope:
        ``"file"`` rules run on every linted file; ``"hot-paths"`` rules
        only on the declared mask-native modules; ``"project"`` rules need
        the whole source tree; ``"ratchet"`` rules run on the modules the
        mypy strictness ratchet lists.
    """

    id: str
    name: str
    summary: str
    rationale: str
    scope: str = "file"


@dataclass(frozen=True)
class Violation:
    """One spot where a file breaks a rule."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict[str, object]:
        """Return the schema-stable JSON form (see ``docs/static_analysis.md``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """Return the one-line human form ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


RULES: dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            id="R0",
            name="pragma-discipline",
            summary=(
                "every '# repro-lint: disable=RULE' pragma must carry a "
                "'-- justification' and name rules that exist"
            ),
            rationale=(
                "Suppressions are part of the audited contract surface: an "
                "unexplained or dangling pragma silently widens an invariant "
                "exception, so the linter refuses it."
            ),
        ),
        Rule(
            id="R1",
            name="determinism",
            summary=(
                "no module-level random.*/np.random.* RNG and no unseeded "
                "default_rng() inside src/repro; sampling code must thread a "
                "numpy Generator or a seed"
            ),
            rationale=(
                "Every experiment must be a deterministic function of its "
                "seed (the static twin of tests/test_determinism.py); ambient "
                "entropy makes the paper-conformance envelopes unreproducible. "
                "The single audited entropy entry point is "
                "repro.core.rng.ensure_rng."
            ),
        ),
        Rule(
            id="R2",
            name="mask-native",
            summary=(
                "no frozenset-family traversal (.quorums()/.iter_quorums()/"
                ".frozensets()) inside the mask-native hot modules; use "
                "iter_quorum_masks()/support_masks()/BitsetEngine views"
            ),
            rationale=(
                "PR 1-2 moved the measure and workload hot paths onto int "
                "bitmasks (core/bitset.py); a frozenset iteration reintroduced "
                "there silently reverts the ~100x speedups the benchmarks pin."
            ),
            scope="hot-paths",
        ),
        Rule(
            id="R3",
            name="exception-taxonomy",
            summary=(
                "no bare ValueError/TypeError/RuntimeError/Exception raises "
                "inside src/repro; raise the repro.exceptions hierarchy "
                "(inside repro/storage/, raw OSError/IOError raises are "
                "banned too — wrap them in StorageError)"
            ),
            rationale=(
                "Callers catch ReproError subclasses at API boundaries and the "
                "CLI maps them onto exit codes 2/3; a bare builtin raise "
                "escapes both.  This is the static form of the registry-wide "
                "InvalidParameterError contract asserted in tests/test_api.py. "
                "The storage branch enforces the recovery contract of "
                "repro.storage — nothing escapes past StorageError, so raw "
                "I/O errors must be wrapped where they occur."
            ),
        ),
        Rule(
            id="R4",
            name="float-equality",
            summary=(
                "no ==/!= comparison against float expressions (float "
                "literals or float() casts); use the 1e-9 tolerance helpers "
                "in repro.core.floats"
            ),
            rationale=(
                "The analytic and exact engines agree to 1e-9, not exactly "
                "(core/analytic.py cross-validation); exact float equality "
                "encodes a tolerance of 0 that no measure path promises."
            ),
        ),
        Rule(
            id="R5",
            name="registry-complete",
            summary=(
                "every module under constructions/ is imported by "
                "api/registry.py and every register() entry declares typed "
                "parameter specs (checked from the AST, without importing)"
            ),
            rationale=(
                "The facade's reproducibility story (SystemSpec round-trips, "
                "CLI reachability, spec-driven workloads) holds only if the "
                "registry covers the whole catalogue; an unregistered "
                "construction is invisible to measure()/run()/compare."
            ),
            scope="project",
        ),
        Rule(
            id="T1",
            name="typing-gate",
            summary=(
                "public functions and methods of ratcheted modules must have "
                "fully annotated parameters and return types"
            ),
            rationale=(
                "The AST half of the mypy --strict ratchet: it enforces "
                "annotation completeness even where mypy is not installed, so "
                "the gate cannot silently rot between CI runs."
            ),
            scope="ratchet",
        ),
    )
}


def rule_ids() -> tuple[str, ...]:
    """Return the rule identifiers in catalogue order."""
    return tuple(RULES)
