"""``python -m repro.lint`` — direct entry to the invariant linter."""

import sys

from repro.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
