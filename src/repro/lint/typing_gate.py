"""The strict-typing ratchet: AST annotation gate + optional mypy runner.

The ratchet has two halves:

* **mypy --strict (staged)** — ``pyproject.toml`` carries a global lenient
  ``[tool.mypy]`` block plus per-module ``[[tool.mypy.overrides]]`` entries
  that switch the strictness flags on for graduated modules.  CI runs mypy
  against that config; :func:`run_mypy` shells out to it when it is
  installed locally.
* **the T1 AST gate** — mypy is an optional dev dependency, so the part of
  strictness that matters most for rot (fully annotated public surfaces)
  is *also* enforced here from the AST alone.  T1 reads the same override
  list out of ``pyproject.toml`` (any override setting
  ``disallow_untyped_defs = true`` is "ratcheted"), so the two halves can
  never disagree about which modules have graduated.

Graduating a module = adding it to the strict override list and fixing
what both gates then report.  Modules are never removed from the list.
"""

from __future__ import annotations

import ast
import fnmatch
import subprocess
import sys
import tomllib
from pathlib import Path

from repro.exceptions import InvalidParameterError
from repro.lint.rules import Violation

__all__ = [
    "DEFAULT_RATCHET",
    "check_annotations",
    "check_annotations_for_root",
    "ratchet_module_patterns",
    "run_mypy",
]

#: Modules whose public surfaces must stay fully annotated when no
#: pyproject.toml override list is available (mirrors the shipped config).
DEFAULT_RATCHET: tuple[str, ...] = (
    "repro.exceptions",
    "repro.core.*",
    "repro.api.*",
    "repro.lint.*",
    "repro.storage.*",
)

#: Dunder methods whose return type is implied by the protocol and not
#: required by the AST gate (mypy treats ``__init__`` the same way).
_RETURN_EXEMPT_DUNDERS = frozenset({"__init__", "__post_init__", "__init_subclass__"})


def ratchet_module_patterns(pyproject: Path | str | None = None) -> tuple[str, ...]:
    """Return the ratcheted module patterns (``fnmatch`` style).

    Reads ``[[tool.mypy.overrides]]`` entries from ``pyproject`` and keeps
    the module patterns of every override that sets
    ``disallow_untyped_defs = true`` — the canonical "this module has
    graduated to the strict gate" flag.  Falls back to
    :data:`DEFAULT_RATCHET` when no pyproject is given or none of its
    overrides ratchet anything.
    """
    if pyproject is None:
        return DEFAULT_RATCHET
    path = Path(pyproject)
    if not path.is_file():
        return DEFAULT_RATCHET
    try:
        config = tomllib.loads(path.read_text(encoding="utf-8"))
    except tomllib.TOMLDecodeError as exc:
        raise InvalidParameterError(f"cannot parse {path}: {exc}") from exc
    overrides = config.get("tool", {}).get("mypy", {}).get("overrides", [])
    patterns: list[str] = []
    for override in overrides:
        if not override.get("disallow_untyped_defs", False):
            continue
        modules = override.get("module", [])
        if isinstance(modules, str):
            modules = [modules]
        patterns.extend(str(module) for module in modules)
    return tuple(patterns) if patterns else DEFAULT_RATCHET


def _module_name(root: Path, file_path: Path) -> str:
    """Return the dotted module name of ``file_path`` under package ``root``."""
    relative = file_path.relative_to(root.parent)
    parts = list(relative.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _matches(module: str, patterns: tuple[str, ...]) -> bool:
    return any(fnmatch.fnmatchcase(module, pattern) for pattern in patterns)


# ----------------------------------------------------------------------
# The T1 annotation gate.
# ----------------------------------------------------------------------
def _missing_annotations(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    """Return what a def is missing to count as fully annotated."""
    missing: list[str] = []
    params = [*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs]
    for index, param in enumerate(params):
        if index == 0 and param.arg in ("self", "cls"):
            continue
        if param.annotation is None:
            missing.append(f"parameter {param.arg!r}")
    if fn.args.vararg is not None and fn.args.vararg.annotation is None:
        missing.append(f"parameter *{fn.args.vararg.arg}")
    if fn.args.kwarg is not None and fn.args.kwarg.annotation is None:
        missing.append(f"parameter **{fn.args.kwarg.arg}")
    is_dunder = fn.name.startswith("__") and fn.name.endswith("__")
    if fn.returns is None and not (is_dunder and fn.name in _RETURN_EXEMPT_DUNDERS):
        missing.append("return type")
    return missing


def _is_public(name: str) -> bool:
    return not name.startswith("_") or (name.startswith("__") and name.endswith("__"))


def _gate_module(path: str, tree: ast.Module) -> list[Violation]:
    violations: list[Violation] = []

    def visit_defs(
        body: list[ast.stmt], owner: str | None
    ) -> None:
        for node in body:
            if isinstance(node, ast.ClassDef):
                if _is_public(node.name):
                    visit_defs(node.body, node.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not _is_public(node.name):
                    continue
                missing = _missing_annotations(node)
                if missing:
                    qualified = f"{owner}.{node.name}" if owner else node.name
                    violations.append(
                        Violation(
                            rule="T1",
                            path=path,
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                f"public surface {qualified}() is missing "
                                f"annotations: {', '.join(missing)} (strict "
                                "typing ratchet, see docs/static_analysis.md)"
                            ),
                        )
                    )
    visit_defs(tree.body, None)
    return violations


def check_annotations(paths: list[Path | str] | tuple[Path | str, ...]) -> list[Violation]:
    """Run the T1 annotation gate over explicit files (fixture-test entry)."""
    violations: list[Violation] = []
    for raw in paths:
        file_path = Path(raw)
        try:
            tree = ast.parse(
                file_path.read_text(encoding="utf-8"), filename=str(file_path)
            )
        except SyntaxError as exc:
            raise InvalidParameterError(
                f"{file_path} is not parseable python: {exc}"
            ) from exc
        violations.extend(_gate_module(str(file_path), tree))
    return sorted(violations, key=lambda v: (v.path, v.line, v.col))


def check_annotations_for_root(
    root: Path | str, pyproject: Path | str | None = None
) -> list[Violation]:
    """Run T1 over the ratcheted modules of a package root.

    ``root`` is the package directory (e.g. ``src/repro``).  When
    ``pyproject`` is not given, the repository layout ``<repo>/src/<pkg>``
    is probed for ``<repo>/pyproject.toml`` so the gate and mypy read the
    same ratchet list.
    """
    root_path = Path(root)
    if not (root_path / "__init__.py").is_file():
        return []  # not a package root: nothing is ratcheted
    if pyproject is None:
        candidate = root_path.parent.parent / "pyproject.toml"
        pyproject = candidate if candidate.is_file() else None
    patterns = ratchet_module_patterns(pyproject)
    ratcheted = [
        file_path
        for file_path in sorted(root_path.rglob("*.py"))
        if _matches(_module_name(root_path, file_path), patterns)
    ]
    return check_annotations(ratcheted)


# ----------------------------------------------------------------------
# The mypy half (optional dev dependency; CI always runs it).
# ----------------------------------------------------------------------
def run_mypy(
    config: Path | str | None = None, extra_args: tuple[str, ...] = ()
) -> tuple[int, str] | None:
    """Run the staged ``mypy`` gate, or return ``None`` when not installed.

    The container image does not bake mypy in, so local runs gate on its
    availability; CI installs the ``dev`` extra and the gate is mandatory
    there.  Returns ``(exit_status, combined_output)``.
    """
    try:
        import mypy  # noqa: F401  -- availability probe only
    except ImportError:
        return None
    command = [sys.executable, "-m", "mypy"]
    if config is not None:
        command.extend(["--config-file", str(config)])
    command.extend(extra_args)
    completed = subprocess.run(
        command, capture_output=True, text=True, check=False
    )
    return completed.returncode, completed.stdout + completed.stderr
