"""``repro.lint`` — AST invariant linter for the paper-bound code contracts.

:mod:`repro.analysis.conformance` makes the paper's *runtime* guarantees
test-callable; this package makes the *code-level* contracts those checks
rely on machine-checkable **before any test runs**.  Each rule is the static
twin of a dynamic guarantee:

========  ===================  ==================================================
Rule      Name                 Invariant protected
========  ===================  ==================================================
``R1``    determinism          seed-threaded RNG everywhere (no ambient entropy)
``R2``    mask-native          hot paths stay on ``int`` bitmasks, not frozensets
``R3``    exception-taxonomy   every raise uses the :mod:`repro.exceptions` tree
``R4``    float-equality       no ``==``/``!=`` on floats; use the 1e-9 helpers
``R5``    registry-complete    every construction module is registered with
                               typed parameter specs
``T1``    typing-gate          ratcheted modules keep fully annotated public
                               surfaces (the AST half of ``mypy --strict``)
``R0``    pragma-discipline    every ``# repro-lint: disable=`` carries a
                               justification and names real rules
========  ===================  ==================================================

Run it as ``python -m repro lint [--json]`` (or ``python -m repro.lint``),
or from Python::

    >>> from repro.lint import lint_source
    >>> lint_source("raise ValueError('boom')")[0].rule
    'R3'

Deliberate exceptions are declared in-line::

    np.random.default_rng()  # repro-lint: disable=R1 -- audited entropy entry

A pragma without the ``-- justification`` text is itself a violation (R0).
``docs/static_analysis.md`` documents every rule, the invariant it protects
and how it maps onto the paper / the conformance layer.
"""

from __future__ import annotations

from repro.lint.ast_checks import (
    check_registry,
    lint_file,
    lint_paths,
    lint_source,
    lint_tree,
)
from repro.lint.rules import RULES, Rule, Violation
from repro.lint.typing_gate import (
    check_annotations,
    ratchet_module_patterns,
    run_mypy,
)

__all__ = [
    "RULES",
    "Rule",
    "Violation",
    "check_annotations",
    "check_registry",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_tree",
    "ratchet_module_patterns",
    "run_mypy",
]
