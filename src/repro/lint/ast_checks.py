"""AST checkers behind the :mod:`repro.lint` rules.

Everything here works on source text and :mod:`ast` trees only — no module
under lint is ever imported, so the linter can flag a file whose import-time
behaviour is exactly what is broken (R5 checks the construction registry
this way on purpose).

The per-file rules (R1-R4) run through :func:`lint_file` /
:func:`lint_source`; the project rule (R5) through :func:`check_registry`;
:func:`lint_tree` composes them with the typing gate over a package root the
way ``python -m repro lint`` does.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path

from repro.exceptions import InvalidParameterError
from repro.lint.rules import RULES, Violation

__all__ = [
    "HOT_MODULES",
    "STORAGE_MODULES",
    "check_registry",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_tree",
]

#: Modules whose call graphs must stay mask-native (rule R2), as path
#: suffixes relative to the linted root.
HOT_MODULES: tuple[str, ...] = (
    "core/bitset.py",
    "core/strategy.py",
    "simulation/engine.py",
)

#: Frozenset-family traversal calls R2 flags inside the hot modules.
_FROZENSET_TRAVERSALS = frozenset({"quorums", "iter_quorums", "frozensets"})

#: Builtin exception names R3 refuses to see raised inside the library.
_BANNED_RAISES = frozenset({"ValueError", "TypeError", "RuntimeError", "Exception"})

#: Modules forming the durable-storage layer (rule R3's StorageError branch),
#: as path fragments relative to the linted root.
STORAGE_MODULES: tuple[str, ...] = ("repro/storage/",)

#: OS-level exception names R3 additionally refuses inside STORAGE_MODULES:
#: the storage contract is that nothing escapes past StorageError, so raw
#: I/O errors must be wrapped at the point they occur.
_BANNED_STORAGE_RAISES = frozenset({"OSError", "IOError"})

#: ``numpy.random`` module-level functions that draw from the legacy global
#: RNG state (R1); ``default_rng``/``Generator``/``SeedSequence`` are the
#: seed-threaded API and stay legal when seeded.
_NUMPY_LEGACY_RNG = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "seed",
        "get_state",
        "set_state",
        "choice",
        "shuffle",
        "permutation",
        "bytes",
        "uniform",
        "normal",
        "standard_normal",
        "binomial",
        "poisson",
        "exponential",
        "geometric",
    }
)

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+?)\s*(?:--\s*(.*\S))?\s*$"
)


def _iter_comments(source: str) -> list[tuple[int, int, str]]:
    """Yield ``(line, col, text)`` for every comment token of ``source``.

    Tokenising (rather than scanning raw lines) keeps pragma discipline from
    firing on docstrings or string literals that merely *mention* pragmas —
    including this linter's own sources.
    """
    comments: list[tuple[int, int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.start[1], token.string))
    except tokenize.TokenError:  # pragma: no cover - ast.parse accepted it
        pass
    return comments


class _PragmaIndex:
    """Per-line ``# repro-lint: disable=RULE -- why`` suppressions of one file.

    A pragma suppresses the named rules *on its own line only*.  Pragmas
    missing the justification text, or naming rules that do not exist, are
    violations themselves (rule R0) — suppression is part of the audited
    surface, not an escape hatch.
    """

    def __init__(self, path: str, source: str):
        self._suppressed: dict[int, frozenset[str]] = {}
        self._violations: list[Violation] = []
        for lineno, col, comment in _iter_comments(source):
            if "repro-lint" not in comment:
                continue
            match = _PRAGMA_RE.search(comment)
            if match is None:
                self._violations.append(
                    Violation(
                        rule="R0",
                        path=path,
                        line=lineno,
                        col=col,
                        message=(
                            "malformed repro-lint pragma; expected "
                            "'# repro-lint: disable=RULE[,RULE] -- justification'"
                        ),
                    )
                )
                continue
            names = frozenset(
                name.strip() for name in match.group(1).split(",") if name.strip()
            )
            unknown = sorted(name for name in names if name not in RULES)
            if unknown:
                self._violations.append(
                    Violation(
                        rule="R0",
                        path=path,
                        line=lineno,
                        col=col + match.start(),
                        message=(
                            f"pragma disables unknown rule(s) {', '.join(unknown)}; "
                            f"known rules: {', '.join(RULES)}"
                        ),
                    )
                )
                continue
            if not match.group(2):
                self._violations.append(
                    Violation(
                        rule="R0",
                        path=path,
                        line=lineno,
                        col=col + match.start(),
                        message=(
                            "pragma has no justification; append "
                            "'-- <why this exception is deliberate>'"
                        ),
                    )
                )
                continue
            self._suppressed[lineno] = names

    def suppresses(self, line: int, rule: str) -> bool:
        return rule in self._suppressed.get(line, frozenset())

    @property
    def violations(self) -> list[Violation]:
        return list(self._violations)


def _dotted_name(node: ast.AST) -> str | None:
    """Resolve an ``ast.Name``/``ast.Attribute`` chain to ``"a.b.c"``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the full dotted names they import.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random import
    default_rng as rng_factory`` maps ``rng_factory -> numpy.random.default_rng``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = (
                    name.name if name.asname else name.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def _resolve_call_target(call: ast.Call, aliases: dict[str, str]) -> str | None:
    """Return the imported dotted name a call resolves to, if resolvable."""
    dotted = _dotted_name(call.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    expanded = aliases.get(head)
    if expanded is None:
        return dotted if head in ("random", "numpy") else None
    return f"{expanded}.{rest}" if rest else expanded


def _is_none_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


# ----------------------------------------------------------------------
# R1 — determinism.
# ----------------------------------------------------------------------
def _check_determinism(path: str, tree: ast.Module) -> list[Violation]:
    violations: list[Violation] = []
    aliases = _import_aliases(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        target = _resolve_call_target(node, aliases)
        if target is None:
            continue
        if target == "numpy.random.default_rng":
            argless = not node.args and not node.keywords
            none_seed = len(node.args) == 1 and _is_none_literal(node.args[0])
            if argless or none_seed:
                violations.append(
                    Violation(
                        rule="R1",
                        path=path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            "unseeded default_rng() draws ambient entropy; "
                            "thread a numpy Generator or seed (see "
                            "repro.core.rng.ensure_rng)"
                        ),
                    )
                )
        elif target.startswith("numpy.random."):
            tail = target.rsplit(".", 1)[1]
            if tail in _NUMPY_LEGACY_RNG:
                violations.append(
                    Violation(
                        rule="R1",
                        path=path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"numpy.random.{tail} uses the legacy global RNG "
                            "state; thread an explicit numpy Generator instead"
                        ),
                    )
                )
        elif target.startswith("random."):
            tail = target.rsplit(".", 1)[1]
            if tail not in ("Random", "SystemRandom"):
                violations.append(
                    Violation(
                        rule="R1",
                        path=path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"random.{tail} uses the process-global stdlib RNG; "
                            "thread an explicit numpy Generator instead"
                        ),
                    )
                )
    return violations


# ----------------------------------------------------------------------
# R2 — mask-native hot paths.
# ----------------------------------------------------------------------
def _is_hot_module(path: str) -> bool:
    normalised = path.replace("\\", "/")
    return any(normalised.endswith(suffix) for suffix in HOT_MODULES)


def _check_mask_native(path: str, tree: ast.Module) -> list[Violation]:
    if not _is_hot_module(path):
        return []
    violations: list[Violation] = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _FROZENSET_TRAVERSALS
        ):
            violations.append(
                Violation(
                    rule="R2",
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f".{node.func.attr}() materialises the frozenset "
                        "quorum family inside a mask-native hot module; use "
                        "iter_quorum_masks()/support_masks()/BitsetEngine views"
                    ),
                )
            )
    return violations


# ----------------------------------------------------------------------
# R3 — exception taxonomy.
# ----------------------------------------------------------------------
def _is_storage_module(path: str) -> bool:
    normalised = path.replace("\\", "/")
    return any(fragment in normalised for fragment in STORAGE_MODULES)


def _check_exception_taxonomy(path: str, tree: ast.Module) -> list[Violation]:
    storage = _is_storage_module(path)
    violations: list[Violation] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call):
            name = _dotted_name(exc.func)
        elif isinstance(exc, (ast.Name, ast.Attribute)):
            name = _dotted_name(exc)
        if name in _BANNED_RAISES:
            violations.append(
                Violation(
                    rule="R3",
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"bare {name} escapes the ReproError hierarchy; raise "
                        "a repro.exceptions type (InvalidParameterError for "
                        "argument validation)"
                    ),
                )
            )
        elif storage and name in _BANNED_STORAGE_RAISES:
            violations.append(
                Violation(
                    rule="R3",
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"raw {name} escapes the storage layer's StorageError "
                        "contract; wrap I/O failures in "
                        "repro.exceptions.StorageError at the point they occur"
                    ),
                )
            )
    return violations


# ----------------------------------------------------------------------
# R4 — float discipline.
# ----------------------------------------------------------------------
def _is_float_expression(node: ast.AST) -> bool:
    """Conservatively recognise expressions that are statically float-typed."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_expression(node.operand)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "float"
    return False


def _check_float_equality(path: str, tree: ast.Module) -> list[Violation]:
    violations: list[Violation] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            if _is_float_expression(left) or _is_float_expression(right):
                violations.append(
                    Violation(
                        rule="R4",
                        path=path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            "exact ==/!= against a float promises a tolerance "
                            "of 0 that no measure path provides; use "
                            "repro.core.floats.isclose/is_zero (1e-9)"
                        ),
                    )
                )
                break
    return violations


_FILE_CHECKS = (
    _check_determinism,
    _check_mask_native,
    _check_exception_taxonomy,
    _check_float_equality,
)


# ----------------------------------------------------------------------
# Per-file driver.
# ----------------------------------------------------------------------
def lint_source(
    source: str,
    path: str = "<string>",
    rules: frozenset[str] | set[str] | None = None,
) -> list[Violation]:
    """Lint one file's source text; returns violations sorted by position.

    Parameters
    ----------
    source:
        The file contents.
    path:
        Display path recorded on violations and matched against the
        hot-module list of rule R2.
    rules:
        Optional subset of rule ids to run (pragma discipline R0 always
        runs, because suppression correctness is what makes every other
        rule trustworthy).
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise InvalidParameterError(f"{path} is not parseable python: {exc}") from exc
    pragmas = _PragmaIndex(path, source)
    violations = [
        violation
        for check in _FILE_CHECKS
        for violation in check(path, tree)
        if not pragmas.suppresses(violation.line, violation.rule)
    ]
    violations.extend(pragmas.violations)
    if rules is not None:
        wanted = set(rules) | {"R0"}
        violations = [v for v in violations if v.rule in wanted]
    return sorted(violations, key=lambda v: (v.path, v.line, v.col, v.rule))


def lint_file(
    path: Path | str, rules: frozenset[str] | set[str] | None = None
) -> list[Violation]:
    """Lint one file on disk (see :func:`lint_source`)."""
    file_path = Path(path)
    return lint_source(file_path.read_text(encoding="utf-8"), str(file_path), rules)


def lint_paths(
    paths: list[Path | str] | tuple[Path | str, ...],
    rules: frozenset[str] | set[str] | None = None,
) -> list[Violation]:
    """Lint files and directories (recursively, ``*.py``), merged and sorted."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    violations: list[Violation] = []
    for file_path in files:
        violations.extend(lint_file(file_path, rules))
    return sorted(violations, key=lambda v: (v.path, v.line, v.col, v.rule))


# ----------------------------------------------------------------------
# R5 — registry completeness (project scope, AST only).
# ----------------------------------------------------------------------
def _public_classes(tree: ast.Module) -> list[str]:
    return [
        node.name
        for node in tree.body
        if isinstance(node, ast.ClassDef) and not node.name.startswith("_")
    ]


def check_registry(
    constructions_dir: Path | str,
    registry_path: Path | str,
    package: str = "repro.constructions",
) -> list[Violation]:
    """Check registry completeness from the AST, without importing anything.

    Three contracts:

    1. every module under ``constructions_dir`` (except ``__init__``) is
       imported by the registry module from ``package``;
    2. every public class a construction module defines is referenced by the
       registry (imported, so it can appear as a ``factory``/``instance_of``);
    3. every ``register(ConstructionEntry(...))`` call declares ``params=``
       — the typed parameter specs the facade's validation contract needs.
    """
    constructions = Path(constructions_dir)
    registry_file = Path(registry_path)
    registry_display = str(registry_file)
    try:
        registry_tree = ast.parse(
            registry_file.read_text(encoding="utf-8"), filename=registry_display
        )
    except (OSError, SyntaxError) as exc:
        raise InvalidParameterError(f"cannot parse registry {registry_file}: {exc}") from exc

    imported_modules: set[str] = set()
    imported_names: set[str] = set()
    for node in ast.walk(registry_tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if node.module == package or node.module.startswith(package + "."):
                imported_modules.add(node.module)
                imported_names.update(alias.name for alias in node.names)

    violations: list[Violation] = []
    for module_path in sorted(constructions.glob("*.py")):
        if module_path.stem.startswith("_"):
            continue
        module_name = f"{package}.{module_path.stem}"
        try:
            module_tree = ast.parse(
                module_path.read_text(encoding="utf-8"), filename=str(module_path)
            )
        except SyntaxError as exc:
            raise InvalidParameterError(
                f"cannot parse construction module {module_path}: {exc}"
            ) from exc
        classes = _public_classes(module_tree)
        if module_name not in imported_modules:
            violations.append(
                Violation(
                    rule="R5",
                    path=str(module_path),
                    line=1,
                    col=0,
                    message=(
                        f"construction module {module_name} is not imported by "
                        f"{registry_display}; unregistered constructions are "
                        "invisible to the facade"
                    ),
                )
            )
            continue
        for class_name in classes:
            if class_name not in imported_names:
                violations.append(
                    Violation(
                        rule="R5",
                        path=str(module_path),
                        line=1,
                        col=0,
                        message=(
                            f"public construction class {class_name} is not "
                            f"imported by {registry_display}; register it or "
                            "prefix it with '_'"
                        ),
                    )
                )

    for node in ast.walk(registry_tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "register"
        ):
            continue
        for arg in node.args:
            if not (
                isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Name)
                and arg.func.id == "ConstructionEntry"
            ):
                continue
            keywords = {kw.arg for kw in arg.keywords if kw.arg}
            if "params" not in keywords:
                violations.append(
                    Violation(
                        rule="R5",
                        path=registry_display,
                        line=arg.lineno,
                        col=arg.col_offset,
                        message=(
                            "register() entry declares no typed parameter "
                            "specs (params=...); the facade's uniform "
                            "validation contract needs them"
                        ),
                    )
                )
    return sorted(violations, key=lambda v: (v.path, v.line, v.col, v.rule))


# ----------------------------------------------------------------------
# Tree driver: per-file rules + project rules + the typing gate.
# ----------------------------------------------------------------------
def lint_tree(
    root: Path | str,
    rules: frozenset[str] | set[str] | None = None,
    pyproject: Path | str | None = None,
) -> tuple[list[Violation], int]:
    """Lint a package root the way ``python -m repro lint`` does.

    Runs the per-file rules over every ``*.py`` under ``root``, the registry
    rule R5 when ``root`` contains the ``constructions/`` + ``api/registry.py``
    layout, and the typing gate T1 over the modules the mypy ratchet in
    ``pyproject`` (when given) or the built-in default lists.

    Returns ``(violations, files_checked)``.
    """
    from repro.lint import typing_gate

    root_path = Path(root)
    if not root_path.exists():
        raise InvalidParameterError(f"lint root {root_path} does not exist")
    files = sorted(root_path.rglob("*.py")) if root_path.is_dir() else [root_path]
    wanted = None if rules is None else set(rules) | {"R0"}

    violations: list[Violation] = []
    for file_path in files:
        violations.extend(lint_file(file_path, wanted))

    constructions_dir = root_path / "constructions"
    registry_path = root_path / "api" / "registry.py"
    if (
        (wanted is None or "R5" in wanted)
        and constructions_dir.is_dir()
        and registry_path.is_file()
    ):
        violations.extend(check_registry(constructions_dir, registry_path))

    if wanted is None or "T1" in wanted:
        violations.extend(
            typing_gate.check_annotations_for_root(root_path, pyproject=pyproject)
        )

    return (
        sorted(violations, key=lambda v: (v.path, v.line, v.col, v.rule)),
        len(files),
    )
