"""Snapshots and log compaction for the durable register.

A snapshot is the register's entire state — one ``(value, timestamp)``
pair — plus the write-ahead-log sequence number it covers, so after a
snapshot the log can be truncated (:meth:`repro.storage.WriteAheadLog.reset`)
and recovery replays only records journalled since.

The file format mirrors one WAL record behind its own magic::

    file := MAGIC length:u32 crc:u32 body
    body := JSON {"seq": int, "ts": [counter, client_id], "value": ...}

Snapshots are written *atomically*: the new state goes to a temporary file
which is fsynced and then renamed over the old snapshot, so a crash during
compaction leaves either the previous snapshot or the new one — never a
torn hybrid.  A snapshot that is nevertheless corrupt (bit rot, foreign
file) makes :func:`read_snapshot` raise :class:`StorageError`;
:class:`repro.storage.DurableStore` catches that and falls back to the log
alone, because the log still holds every record since the *previous*
compaction only when the snapshot was never written — which is exactly the
crash-before-rename case the atomic write rules out.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import StorageError
from repro.simulation.history import freeze_value
from repro.simulation.messages import Timestamp, ValueTimestampPair

__all__ = ["SNAPSHOT_MAGIC", "Snapshot", "read_snapshot", "write_snapshot"]

#: File preamble distinguishing a snapshot from a log (and anything else).
SNAPSHOT_MAGIC = b"RPROSNP1"

_HEADER = struct.Struct("!II")


@dataclass(frozen=True)
class Snapshot:
    """One compacted register state: the pair plus the WAL seq it covers."""

    seq: int
    timestamp: Timestamp
    value: object

    @property
    def pair(self) -> ValueTimestampPair:
        return ValueTimestampPair(value=self.value, timestamp=self.timestamp)


def write_snapshot(path: str | Path, snapshot: Snapshot) -> None:
    """Atomically persist one snapshot (tmp file + fsync + rename)."""
    target = Path(path)
    try:
        body = json.dumps(
            {
                "seq": int(snapshot.seq),
                "ts": [int(snapshot.timestamp.counter), int(snapshot.timestamp.client_id)],
                "value": snapshot.value,
            },
            separators=(",", ":"),
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise StorageError(
            f"snapshot value {snapshot.value!r} is not JSON-serialisable: {exc}"
        ) from None
    blob = SNAPSHOT_MAGIC + _HEADER.pack(len(body), zlib.crc32(body)) + body
    tmp = target.with_suffix(target.suffix + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(target)
    except OSError as exc:
        raise StorageError(f"cannot write snapshot {target}: {exc}") from None


def read_snapshot(path: str | Path) -> Snapshot | None:
    """Load a snapshot; ``None`` when the file does not exist.

    A present-but-invalid snapshot (bad magic, torn frame, CRC mismatch,
    malformed body) raises :class:`StorageError` — the *caller* decides
    whether that is fatal; :class:`repro.storage.DurableStore` treats it as
    crash damage and recovers from the log alone.
    """
    target = Path(path)
    try:
        data = target.read_bytes()
    except FileNotFoundError:
        return None
    except OSError as exc:
        raise StorageError(f"cannot read snapshot {target}: {exc}") from None
    prefix = len(SNAPSHOT_MAGIC)
    if not data.startswith(SNAPSHOT_MAGIC) or len(data) < prefix + _HEADER.size:
        raise StorageError(f"snapshot {target} is corrupt: bad magic or torn header")
    length, crc = _HEADER.unpack_from(data, prefix)
    body = data[prefix + _HEADER.size :]
    if len(body) != length:
        raise StorageError(
            f"snapshot {target} is corrupt: header announces {length} bytes, "
            f"{len(body)} present"
        )
    if zlib.crc32(body) != crc:
        raise StorageError(f"snapshot {target} is corrupt: CRC mismatch")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StorageError(f"snapshot {target} is corrupt: {exc}") from None
    if not isinstance(payload, dict):
        raise StorageError(f"snapshot {target} is corrupt: body is not an object")
    seq = payload.get("seq")
    raw_ts = payload.get("ts")
    if (
        not isinstance(seq, int)
        or isinstance(seq, bool)
        or not isinstance(raw_ts, list)
        or len(raw_ts) != 2
        or not all(isinstance(part, int) and not isinstance(part, bool) for part in raw_ts)
    ):
        raise StorageError(f"snapshot {target} is corrupt: malformed seq/ts fields")
    return Snapshot(
        seq=seq,
        timestamp=Timestamp(counter=raw_ts[0], client_id=raw_ts[1]),
        value=freeze_value(payload.get("value")),
    )
