"""CRC-framed, length-prefixed write-ahead log for replica state.

The on-disk format reuses the framing discipline of
:mod:`repro.service.wire` — a fixed-size big-endian header followed by a
UTF-8 JSON body — hardened for storage: every record adds a CRC-32 of the
body, and the file opens with an 8-byte magic string so a foreign file is
never misparsed as a log.

::

    file   := MAGIC record*
    record := length:u32 crc:u32 body          (both big-endian)
    body   := JSON {"seq": int, "ts": [counter, client_id], "value": ...}

The log is append-only.  Crash damage therefore always lives at the *tail*:
a torn header, a truncated body, or a bit-flip under the last buffered
pages.  :func:`scan_wal` walks records front to back and stops at the first
frame that fails any check (length sanity, CRC, JSON shape); everything
before it is intact by CRC, everything from it on is discarded.  Opening a
:class:`WriteAheadLog` truncates that corrupt suffix so the next append
produces a clean log again — recovery never raises for corruption, only for
environmental failures (unreadable path, unserialisable value), and those
are always :class:`~repro.exceptions.StorageError`.

Durability is governed by a pluggable :class:`FsyncPolicy`:

* ``always`` — ``fsync`` after every append (a SIGKILL *or* a machine crash
  loses nothing that was acked);
* ``interval:N`` — ``fsync`` every ``N`` appends (bounded loss window on
  machine crash; still loses nothing on process SIGKILL, because every
  append is flushed to the OS);
* ``never`` — flush to the OS but never force the disk (process crashes are
  survived, machine crashes may drop the tail — which recovery then
  tolerates).

``benchmarks/test_bench_storage.py`` measures the throughput each policy
buys and records it in ``BENCH_storage.json``.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO

from repro.exceptions import StorageError
from repro.simulation.history import freeze_value
from repro.simulation.messages import Timestamp

__all__ = [
    "FSYNC_MODES",
    "MAGIC",
    "MAX_RECORD_BYTES",
    "FsyncPolicy",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "scan_wal",
]

#: File preamble; a file not starting with this is not (no longer) a log.
MAGIC = b"RPROWAL1"

#: Hard ceiling on one record's JSON body — same bound as a wire frame, so
#: anything the service accepted over the wire can be journalled.
MAX_RECORD_BYTES = 1 << 20

#: Per-record header: body length, CRC-32 of the body (both big-endian u32).
_HEADER = struct.Struct("!II")

#: The fsync policy modes :meth:`FsyncPolicy.parse` understands.
FSYNC_MODES = ("always", "interval", "never")


@dataclass(frozen=True)
class FsyncPolicy:
    """When the log forces appended records onto the disk.

    ``mode`` is one of :data:`FSYNC_MODES`; ``interval`` is the number of
    appends between forced syncs in ``interval`` mode (ignored otherwise).
    """

    mode: str
    interval: int = 32

    def __post_init__(self) -> None:
        if self.mode not in FSYNC_MODES:
            raise StorageError(
                f"unknown fsync mode {self.mode!r}; choose one of {FSYNC_MODES}"
            )
        if self.mode == "interval" and self.interval < 1:
            raise StorageError(
                f"fsync interval must be >= 1, got {self.interval}"
            )

    @classmethod
    def parse(cls, spec: "FsyncPolicy | str") -> "FsyncPolicy":
        """Parse ``"always"`` / ``"never"`` / ``"interval"`` / ``"interval:N"``."""
        if isinstance(spec, FsyncPolicy):
            return spec
        mode, _, raw_interval = spec.partition(":")
        if not raw_interval:
            return cls(mode=mode)
        try:
            interval = int(raw_interval)
        except ValueError:
            raise StorageError(
                f"fsync policy {spec!r}: interval must be an integer"
            ) from None
        if mode != "interval":
            raise StorageError(
                f"fsync policy {spec!r}: only 'interval' takes a :N suffix"
            )
        return cls(mode=mode, interval=interval)

    def __str__(self) -> str:
        if self.mode == "interval":
            return f"interval:{self.interval}"
        return self.mode


@dataclass(frozen=True)
class WalRecord:
    """One journalled write: a monotone sequence number plus the pair."""

    seq: int
    timestamp: Timestamp
    value: object


@dataclass(frozen=True)
class WalScan:
    """What a front-to-back scan of a log file found.

    ``valid_bytes`` is the offset of the first byte that failed validation
    (the whole file when clean); ``dropped_bytes`` is everything after it.
    ``reason`` names the first failure (``""`` when the tail was clean):
    ``bad-magic``, ``torn-header``, ``bad-length``, ``torn-body``,
    ``crc-mismatch``, ``corrupt-body``.
    """

    records: tuple[WalRecord, ...]
    valid_bytes: int
    dropped_bytes: int
    reason: str = ""


def _encode_timestamp(timestamp: Timestamp) -> list[int]:
    return [int(timestamp.counter), int(timestamp.client_id)]


def _decode_timestamp(raw: object) -> Timestamp:
    if (
        not isinstance(raw, (list, tuple))
        or len(raw) != 2
        or not all(isinstance(part, int) and not isinstance(part, bool) for part in raw)
    ):
        raise StorageError(
            f"a stored timestamp must be a [counter, client_id] integer pair, got {raw!r}"
        )
    return Timestamp(counter=raw[0], client_id=raw[1])


def encode_record(record: WalRecord) -> bytes:
    """Encode one record: header (length, CRC-32) + JSON body."""
    try:
        body = json.dumps(
            {
                "seq": int(record.seq),
                "ts": _encode_timestamp(record.timestamp),
                "value": record.value,
            },
            separators=(",", ":"),
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise StorageError(
            f"value {record.value!r} is not JSON-serialisable: {exc}"
        ) from None
    if len(body) > MAX_RECORD_BYTES:
        raise StorageError(
            f"record body of {len(body)} bytes exceeds the {MAX_RECORD_BYTES}-byte limit"
        )
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


def _decode_body(body: bytes) -> WalRecord | None:
    """Decode one CRC-verified body; ``None`` when the shape is wrong."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    seq = payload.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool):
        return None
    try:
        timestamp = _decode_timestamp(payload.get("ts"))
    except StorageError:
        return None
    return WalRecord(seq=seq, timestamp=timestamp, value=freeze_value(payload.get("value")))


def scan_wal(path: str | Path) -> WalScan:
    """Scan a log file, keeping the longest valid prefix of records.

    Missing and empty files are clean (zero records).  Any framing, CRC or
    shape failure stops the scan at that record's offset; the suffix from
    there is reported as dropped, never raised.  Only environmental
    failures (an unreadable path) raise :class:`StorageError`.
    """
    try:
        data = Path(path).read_bytes()
    except FileNotFoundError:
        return WalScan(records=(), valid_bytes=0, dropped_bytes=0)
    except OSError as exc:
        raise StorageError(f"cannot read write-ahead log {path}: {exc}") from None
    if not data:
        return WalScan(records=(), valid_bytes=0, dropped_bytes=0)
    if not data.startswith(MAGIC):
        return WalScan(
            records=(), valid_bytes=0, dropped_bytes=len(data), reason="bad-magic"
        )

    records: list[WalRecord] = []
    offset = len(MAGIC)
    reason = ""
    while offset < len(data):
        if len(data) - offset < _HEADER.size:
            reason = "torn-header"
            break
        length, crc = _HEADER.unpack_from(data, offset)
        if length == 0 or length > MAX_RECORD_BYTES:
            reason = "bad-length"
            break
        body_start = offset + _HEADER.size
        body_end = body_start + length
        if body_end > len(data):
            reason = "torn-body"
            break
        body = data[body_start:body_end]
        if zlib.crc32(body) != crc:
            reason = "crc-mismatch"
            break
        record = _decode_body(body)
        if record is None:
            reason = "corrupt-body"
            break
        records.append(record)
        offset = body_end
    return WalScan(
        records=tuple(records),
        valid_bytes=offset,
        dropped_bytes=len(data) - offset,
        reason=reason,
    )


class WriteAheadLog:
    """An open, append-only log handle over one file.

    Opening scans the file, truncates any corrupt suffix (see
    :func:`scan_wal`) and positions the handle for appends; the scan result
    — including what recovery had to drop — stays available as
    :attr:`scan`.  Sequence numbers continue from the highest surviving
    record, so a log reset by compaction keeps a monotone sequence across
    its whole lifetime.
    """

    def __init__(self, path: str | Path, *, fsync: FsyncPolicy | str = "always"):
        self.path = Path(path)
        self.fsync = FsyncPolicy.parse(fsync)
        self.scan = scan_wal(self.path)
        self._next_seq = max((r.seq for r in self.scan.records), default=0) + 1
        self._record_count = len(self.scan.records)
        self._sync_count = 0
        self._unsynced = 0
        try:
            if self.scan.valid_bytes < len(MAGIC):
                # New, empty or magic-less file: start a fresh log.
                self._handle: BinaryIO = open(self.path, "wb")
                self._handle.write(MAGIC)
                self._flush(force=True)
                self._byte_size = len(MAGIC)
            else:
                if self.scan.dropped_bytes:
                    with open(self.path, "rb+") as damaged:
                        damaged.truncate(self.scan.valid_bytes)
                self._handle = open(self.path, "ab")
                self._byte_size = self.scan.valid_bytes
        except OSError as exc:
            raise StorageError(
                f"cannot open write-ahead log {self.path}: {exc}"
            ) from None

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def record_count(self) -> int:
        """Records currently in the file (surviving scan + appended)."""
        return self._record_count

    @property
    def byte_size(self) -> int:
        """File size in bytes (magic included)."""
        return self._byte_size

    @property
    def last_seq(self) -> int:
        """Highest sequence number written so far (0 before any append)."""
        return self._next_seq - 1

    @property
    def sync_count(self) -> int:
        """How many times the log forced an ``fsync``."""
        return self._sync_count

    @property
    def unsynced_appends(self) -> int:
        """Appends flushed to the OS but not yet forced onto the disk."""
        return self._unsynced

    # ------------------------------------------------------------------
    # Appending.
    # ------------------------------------------------------------------
    def append(self, timestamp: Timestamp, value: object) -> WalRecord:
        """Journal one ``(timestamp, value)`` pair; returns its record.

        Every append is flushed to the OS (a SIGKILL of the process loses
        nothing); whether the disk is forced too is the fsync policy's call.
        """
        record = WalRecord(seq=self._next_seq, timestamp=timestamp, value=value)
        frame = encode_record(record)
        try:
            self._handle.write(frame)
        except OSError as exc:
            raise StorageError(f"cannot append to {self.path}: {exc}") from None
        self._next_seq += 1
        self._record_count += 1
        self._byte_size += len(frame)
        self._unsynced += 1
        if self.fsync.mode == "always":
            self._flush(force=True)
        elif self.fsync.mode == "interval" and self._unsynced >= self.fsync.interval:
            self._flush(force=True)
        else:
            self._flush(force=False)
        return record

    def sync(self) -> None:
        """Force everything appended so far onto the disk."""
        self._flush(force=True)

    def reset(self) -> None:
        """Truncate the log back to just the magic (after a snapshot).

        Sequence numbering continues — the snapshot remembers the highest
        sequence it covers, so replay stays idempotent across compactions.
        """
        try:
            self._handle.close()
            self._handle = open(self.path, "wb")
            self._handle.write(MAGIC)
            self._flush(force=True)
        except OSError as exc:
            raise StorageError(f"cannot reset {self.path}: {exc}") from None
        self._record_count = 0
        self._byte_size = len(MAGIC)
        self._unsynced = 0

    def close(self) -> None:
        """Flush, force the disk once, and close the handle."""
        if self._handle.closed:
            return
        try:
            self._flush(force=True)
        finally:
            self._handle.close()

    def _flush(self, *, force: bool) -> None:
        try:
            self._handle.flush()
            if force:
                os.fsync(self._handle.fileno())
        except OSError as exc:
            raise StorageError(f"cannot flush {self.path}: {exc}") from None
        if force:
            self._sync_count += 1
            self._unsynced = 0

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
