"""The durable register: write-ahead log + snapshot behind one store.

:class:`DurableStore` owns one replica's data directory::

    <data_dir>/wal.log       append-only journal (repro.storage.wal)
    <data_dir>/snapshot.bin  last compacted state (repro.storage.snapshot)

Opening the store *is* recovery: read the snapshot (tolerating a corrupt
one), scan the log (truncating any corrupt suffix), and fold the surviving
records over the snapshot state with the replica's own install rule —
a record applies iff its timestamp exceeds the current one.  That rule
makes replay **idempotent**: duplicated or out-of-order records (a crash
between append and ack can leave either) converge to the same final pair
as a clean history.  The outcome is summarised in a :class:`RecoveryResult`
so the service layer can report what a restart cost.

After recovery, :meth:`DurableStore.journal` appends each accepted write
*before* the service acks it, and every ``snapshot_every`` journalled
writes the store compacts: snapshot the current pair (atomically), then
truncate the log.  A crash between those two steps only means the next
recovery replays records the snapshot already covers — harmless, by
idempotence.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import StorageError
from repro.simulation.messages import Timestamp, ValueTimestampPair
from repro.storage.snapshot import Snapshot, read_snapshot, write_snapshot
from repro.storage.wal import FsyncPolicy, WalRecord, WriteAheadLog

__all__ = ["DurableStore", "RecoveryResult"]

WAL_NAME = "wal.log"
SNAPSHOT_NAME = "snapshot.bin"


@dataclass(frozen=True)
class RecoveryResult:
    """What opening a :class:`DurableStore` recovered (and what it cost).

    ``pair`` is the recovered register state (the zero pair on a fresh
    directory).  ``wal_records`` counts records that survived the scan,
    ``applied_records`` how many of them actually advanced the state (the
    rest were duplicates or out-of-order).  ``dropped_bytes`` / ``reason``
    describe the corrupt log suffix recovery discarded (``0`` / ``""`` when
    clean); ``snapshot_used`` says the snapshot seeded the state and
    ``snapshot_corrupt`` that one existed but failed validation and was
    ignored.
    """

    pair: ValueTimestampPair
    wal_records: int
    applied_records: int
    dropped_bytes: int
    reason: str
    snapshot_used: bool
    snapshot_corrupt: bool


class DurableStore:
    """One replica's durable ``(value, timestamp)`` register.

    ``fsync`` takes a :class:`~repro.storage.wal.FsyncPolicy` or its string
    form (``"always"``, ``"interval:N"``, ``"never"``); ``snapshot_every``
    is the compaction threshold in journalled writes (``0`` disables
    automatic compaction).  Construction performs recovery; the result is
    available as :attr:`recovery` and the live state as :attr:`pair`.
    """

    def __init__(
        self,
        data_dir: str | Path,
        *,
        fsync: FsyncPolicy | str = "always",
        snapshot_every: int = 1024,
        initial_value: object = None,
    ):
        if snapshot_every < 0:
            raise StorageError(
                f"snapshot_every must be >= 0, got {snapshot_every}"
            )
        self.data_dir = Path(data_dir)
        self.snapshot_every = snapshot_every
        try:
            self.data_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise StorageError(
                f"cannot create data directory {self.data_dir}: {exc}"
            ) from None

        snapshot_path = self.data_dir / SNAPSHOT_NAME
        snapshot: Snapshot | None = None
        snapshot_corrupt = False
        try:
            snapshot = read_snapshot(snapshot_path)
        except StorageError:
            # Crash damage, not an environment failure: recover from the
            # log alone and let RecoveryResult report the loss.
            snapshot_corrupt = True

        self._wal = WriteAheadLog(self.data_dir / WAL_NAME, fsync=fsync)

        pair = ValueTimestampPair(value=initial_value, timestamp=Timestamp.zero())
        if snapshot is not None:
            pair = snapshot.pair
        applied = 0
        for record in self._wal.scan.records:
            if record.timestamp > pair.timestamp:
                pair = ValueTimestampPair(value=record.value, timestamp=record.timestamp)
                applied += 1
        self.pair = pair
        self.recovery = RecoveryResult(
            pair=pair,
            wal_records=len(self._wal.scan.records),
            applied_records=applied,
            dropped_bytes=self._wal.scan.dropped_bytes,
            reason=self._wal.scan.reason,
            snapshot_used=snapshot is not None,
            snapshot_corrupt=snapshot_corrupt,
        )
        self._since_snapshot = len(self._wal.scan.records)
        self._snapshot_time: float | None = None
        if snapshot is not None or snapshot_corrupt:
            try:
                self._snapshot_time = os.stat(snapshot_path).st_mtime
            except OSError:
                self._snapshot_time = None
        self._maybe_compact()

    # ------------------------------------------------------------------
    # The write path.
    # ------------------------------------------------------------------
    def journal(self, pair: ValueTimestampPair) -> WalRecord:
        """Persist one accepted write; call *before* acking it.

        Also advances the in-memory state when the pair is newer, so a
        store used standalone (without a replica state machine in front)
        stays consistent with what recovery would rebuild.
        """
        record = self._wal.append(pair.timestamp, pair.value)
        if pair.timestamp > self.pair.timestamp:
            self.pair = pair
        self._since_snapshot += 1
        self._maybe_compact()
        return record

    def compact(self) -> Snapshot:
        """Snapshot the current state atomically, then truncate the log."""
        snapshot = Snapshot(
            seq=self._wal.last_seq,
            timestamp=self.pair.timestamp,
            value=self.pair.value,
        )
        write_snapshot(self.data_dir / SNAPSHOT_NAME, snapshot)
        self._wal.reset()
        self._since_snapshot = 0
        self._snapshot_time = time.time()
        return snapshot

    def _maybe_compact(self) -> None:
        if self.snapshot_every and self._since_snapshot >= self.snapshot_every:
            self.compact()

    def sync(self) -> None:
        """Force everything journalled so far onto the disk."""
        self._wal.sync()

    def close(self) -> None:
        """Flush, sync and release the log handle."""
        self._wal.close()

    # ------------------------------------------------------------------
    # Introspection (surfaces in the service's STATUS/METRICS frames).
    # ------------------------------------------------------------------
    def status(self) -> dict:
        """JSON-safe storage health: WAL length, snapshot age, fsync policy."""
        age = (
            time.time() - self._snapshot_time
            if self._snapshot_time is not None
            else None
        )
        return {
            "durable": True,
            "path": str(self.data_dir),
            "fsync": str(self._wal.fsync),
            "wal_records": self._wal.record_count,
            "wal_bytes": self._wal.byte_size,
            "wal_last_seq": self._wal.last_seq,
            "snapshot_age_seconds": age,
            "sync_count": self._wal.sync_count,
            "recovered_records": self.recovery.wal_records,
            "recovery_dropped_bytes": self.recovery.dropped_bytes,
            "recovery_reason": self.recovery.reason,
            "snapshot_used": self.recovery.snapshot_used,
            "snapshot_corrupt": self.recovery.snapshot_corrupt,
        }

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
