"""Durable replica state: write-ahead log, snapshots, crash recovery.

The persistence layer under the networked service
(:mod:`repro.service`).  A replica journals every accepted write to a
CRC-framed, length-prefixed :class:`WriteAheadLog` *before* acking it,
periodically compacts the log into an atomic :class:`Snapshot`, and on
restart a :class:`DurableStore` rebuilds the register from snapshot + log
— tolerating the torn tails and bit-flipped records a real crash leaves by
discarding only the corrupt suffix (never raising past
:class:`~repro.exceptions.StorageError`).

See ``docs/storage.md`` for the file formats, the fsync policy trade-off
(``always`` / ``interval:N`` / ``never``, benchmarked in
``BENCH_storage.json``) and the recovery guarantees.
"""

from repro.storage.snapshot import Snapshot, read_snapshot, write_snapshot
from repro.storage.store import DurableStore, RecoveryResult
from repro.storage.wal import (
    FSYNC_MODES,
    FsyncPolicy,
    WalRecord,
    WalScan,
    WriteAheadLog,
    scan_wal,
)

__all__ = [
    "FSYNC_MODES",
    "DurableStore",
    "FsyncPolicy",
    "RecoveryResult",
    "Snapshot",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "read_snapshot",
    "scan_wal",
    "write_snapshot",
]
