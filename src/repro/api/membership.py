"""Declarative membership specs: JSON-stable reconfiguration timelines.

:class:`MembershipSpec` is to :class:`~repro.core.membership.Membership` what
:class:`~repro.api.registry.SystemSpec` is to a quorum system: a JSON-stable,
round-trippable description.  Events are *count-based* — ``("sever", k)``
evicts the last ``k`` servers of the current member order and ``("join", k)``
re-admits the most recently severed block first (minting fresh ids once the
severed pool is empty) — so a spec serialises without naming servers and
expands deterministically over any universe via
:func:`~repro.core.membership.plan_events`.

:class:`ReconfigScenario` wraps a spec under a catalogue name so the facade
(:func:`repro.api.workloads.run`) and the CLI can run reconfiguration
workloads like any other scenario; see ``docs/membership.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.membership import EVENT_KINDS, Membership, plan_events
from repro.core.universe import Universe
from repro.exceptions import InvalidParameterError
from repro.simulation.reconfig import REOPTIMISE_POLICIES, MembershipTimeline

__all__ = ["MembershipSpec", "ReconfigScenario"]


@dataclass(frozen=True)
class MembershipSpec:
    """A JSON-stable description of a membership timeline.

    Attributes
    ----------
    events:
        ``(kind, count)`` steps, in order; each step opens a new epoch.
        ``kind`` is ``"sever"`` or ``"join"``, ``count`` the number of
        servers the step removes or admits.
    fractions:
        Optional per-epoch workload fractions (``len(events) + 1`` values,
        positive, summing to 1); equal split when omitted.
    policy:
        Strategy re-optimisation policy applied on epoch change
        (:data:`~repro.simulation.reconfig.REOPTIMISE_POLICIES`).
    """

    events: tuple = ()
    fractions: tuple = ()
    policy: str = "reweight"

    def __post_init__(self):
        events = tuple((str(kind), int(count)) for kind, count in self.events)
        if not events:
            raise InvalidParameterError(
                "a membership spec needs at least one join/sever event"
            )
        for kind, count in events:
            if kind not in EVENT_KINDS:
                raise InvalidParameterError(
                    f"unknown membership event kind {kind!r}; "
                    f"choose one of {EVENT_KINDS}"
                )
            if count < 1:
                raise InvalidParameterError(
                    f"membership event counts must be >= 1, got {count}"
                )
        object.__setattr__(self, "events", events)
        fractions = tuple(float(value) for value in self.fractions)
        if fractions and len(fractions) != len(events) + 1:
            raise InvalidParameterError(
                f"{len(events) + 1} epochs but {len(fractions)} fractions"
            )
        object.__setattr__(self, "fractions", fractions)
        if self.policy not in REOPTIMISE_POLICIES:
            raise InvalidParameterError(
                f"unknown re-optimisation policy {self.policy!r}; "
                f"choose one of {REOPTIMISE_POLICIES}"
            )

    @property
    def num_epochs(self) -> int:
        return len(self.events) + 1

    def to_dict(self) -> dict:
        """The JSON-stable form (round-trips through :meth:`from_dict`)."""
        return {
            "events": [
                {"kind": kind, "count": count} for kind, count in self.events
            ],
            "fractions": list(self.fractions) if self.fractions else None,
            "policy": self.policy,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MembershipSpec":
        if not isinstance(payload, dict) or "events" not in payload:
            raise InvalidParameterError(
                "a membership spec dict needs an 'events' list"
            )
        events = []
        for entry in payload["events"]:
            if isinstance(entry, dict):
                events.append((entry.get("kind"), entry.get("count")))
            else:
                kind, count = entry
                events.append((kind, count))
        fractions = payload.get("fractions") or ()
        policy = payload.get("policy", "reweight")
        return cls(events=tuple(events), fractions=tuple(fractions), policy=policy)

    def build(self, universe: Universe) -> MembershipTimeline:
        """Expand the spec over a concrete universe into a runnable timeline."""
        membership = Membership(universe, plan_events(universe, self.events))
        return MembershipTimeline(membership=membership, fractions=self.fractions)


@dataclass(frozen=True)
class ReconfigScenario:
    """A named reconfiguration scenario: a membership spec under a label.

    The reconfiguration analogue of
    :class:`~repro.simulation.adversary.AdaptiveScenario` — a marker object
    the facade routes to :func:`~repro.simulation.reconfig.run_reconfig_workload`
    (vectorised) or
    :func:`~repro.simulation.reconfig.run_reconfig_event_workload` (event).
    """

    name: str
    membership: MembershipSpec = field(
        default_factory=lambda: MembershipSpec(events=(("sever", 1), ("join", 1)))
    )
