"""Unified workload runner: one spec, two engines, one report.

PRs 2–3 left the repo with two workload engines with different call
conventions and result shapes: the vectorised scenario engine
(:func:`repro.simulation.runner.run_workload` returning
:class:`~repro.simulation.engine.WorkloadResult`) and the event-driven
concurrent core (:func:`repro.simulation.runner.run_event_workload`
returning :class:`~repro.simulation.runner.EventWorkloadResult`).  The
facade accepts one declarative :class:`WorkloadSpec`, picks the engine
(``engine="auto"``: timed scenarios need the event core's clock, everything
else runs vectorised), transparently switches to sampled-quorum mode for
universes whose family cannot be enumerated
(:class:`~repro.core.quorum_system.ImplicitQuorumSystem`, the PR-4
machinery), and normalises both engines' outputs into one JSON-stable
:class:`WorkloadReport` — so cross-engine checks reduce to comparing two
reports (see :func:`repro.analysis.empirical.engine_agreement`).

>>> from repro.api import WorkloadSpec, run
>>> report = run(WorkloadSpec(system="mgrid", params={"side": 4, "b": 1},
...                           scenario="crash", operations=50, seed=7))
>>> report.engine
'vectorized'
>>> report.consistent and 0.0 <= report.availability <= 1.0
True
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.api.membership import MembershipSpec, ReconfigScenario
from repro.api.registry import SystemSpec, build, spec_of
from repro.api.scenarios import build_scenario
from repro.core.quorum_system import ImplicitQuorumSystem, QuorumSystem
from repro.core.strategy import Strategy
from repro.exceptions import ComputationError, InvalidParameterError
from repro.simulation.adversary import AdaptiveScenario, run_adversarial_workload
from repro.simulation.faults import FaultScenario
from repro.simulation.reconfig import (
    run_reconfig_event_workload,
    run_reconfig_workload,
)
from repro.simulation.runner import run_event_workload, run_workload
from repro.simulation.scenarios import TimingScenario, WorkloadScenario
from repro.simulation.traces import TraceScenario, run_trace_workload

__all__ = ["WorkloadReport", "WorkloadSpec", "run"]

#: Above this family size the facade switches to sampled-quorum mode
#: (ImplicitQuorumSystem) instead of enumerating.
ENUMERATION_CEILING = 100_000

ENGINES = ("auto", "vectorized", "event")


@dataclass(frozen=True)
class WorkloadSpec:
    """A declarative description of one workload experiment.

    Attributes
    ----------
    system:
        A registry name, a :class:`~repro.api.registry.SystemSpec` or an
        already-built :class:`~repro.core.quorum_system.QuorumSystem`.
    params:
        Construction parameters, when ``system`` is a registry name.
    b:
        Masking parameter for the protocol; default is the system's own
        masking bound.
    scenario:
        A catalogue name (:func:`repro.api.scenarios.available_scenarios`),
        a :class:`~repro.simulation.scenarios.WorkloadScenario`, a
        :class:`~repro.simulation.scenarios.TimingScenario`, a static
        :class:`~repro.simulation.faults.FaultScenario`, or ``None`` for
        fault-free.
    operations:
        Total operations across all clients.  The event engine hands every
        client the same share, so a count that is not a multiple of
        ``clients`` is rounded **up** there (``report.operations`` records
        what actually ran); the vectorised engine runs the count exactly.
    clients:
        Concurrent clients (event engine; the vectorised engine's
        accounting is client-count independent).
    write_fraction:
        Probability that an operation is a write.
    strategy:
        ``None`` (the system's natural strategy), ``"uniform"``,
        ``"optimal"`` (the load LP's strategy) or an explicit
        :class:`~repro.core.strategy.Strategy`.
    seed:
        The single seed every random draw of the run derives from.
    max_attempts:
        Probe budget per operation.
    allow_overload:
        Permit more Byzantine servers than ``b`` (negative tests).
    num_samples:
        Sample size when the facade must switch to sampled-quorum mode.
    membership:
        Optional :class:`~repro.api.membership.MembershipSpec` turning the
        run into a membership-reconfiguration workload (mutually exclusive
        with ``scenario``; named ``reconfig-*`` catalogue scenarios carry
        their own membership specs).
    """

    system: SystemSpec | QuorumSystem | str
    params: dict = field(default_factory=dict)
    b: int | None = None
    scenario: object = None
    operations: int = 200
    clients: int = 4
    write_fraction: float = 0.5
    strategy: object = None
    seed: int = 0
    max_attempts: int = 10
    allow_overload: bool = False
    num_samples: int = 256
    membership: MembershipSpec | None = None

    def __post_init__(self):
        if self.membership is not None and self.scenario is not None:
            raise InvalidParameterError(
                "membership and scenario are mutually exclusive: a membership "
                "spec is itself the reconfiguration scenario"
            )
        if self.operations < 1:
            raise InvalidParameterError(
                f"operations must be >= 1, got {self.operations}"
            )
        if self.clients < 1:
            raise InvalidParameterError(f"clients must be >= 1, got {self.clients}")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise InvalidParameterError(
                f"write_fraction must lie in [0, 1], got {self.write_fraction}"
            )
        if self.num_samples < 1:
            raise InvalidParameterError(
                f"num_samples must be >= 1, got {self.num_samples}"
            )


@dataclass(frozen=True)
class WorkloadReport:
    """Engine-independent summary of one workload run (JSON-stable).

    Both engines produce exactly this shape: fields only one engine can
    measure (latency percentiles, timeouts, simulated duration) are
    ``None`` on the other engine's reports, but the key set never changes —
    that is what lets ``analysis/empirical.py`` compare engines
    result-vs-result and lets ``python -m repro run --json`` feed dashboards.

    Attributes
    ----------
    engine:
        ``"vectorized"`` or ``"event"`` — which engine actually ran.
    system / n / b / scenario / strategy / seed:
        The resolved experiment coordinates (``spec`` carries the registry
        spec when the system came from one).
    sampled:
        Whether the run used sampled-quorum mode
        (:class:`~repro.core.quorum_system.ImplicitQuorumSystem`).
    operations / successful_reads / successful_writes / failed_operations:
        Operation accounting.
    availability:
        Fraction of operations that completed.
    consistent / consistency_violations / stale_reads:
        The consistency verdict (violations must be 0 whenever the
        Byzantine count is within ``b``).
    empirical_load / busiest_server:
        The busiest server's measured access frequency over successful
        operations (Definition 3.8's empirical counterpart) and which
        server it was.
    latency_mean / latency_p50 / latency_p90 / latency_p99 / duration /
    timeouts / events_processed:
        Event-engine clock measurements (``None`` under the vectorised
        engine; operation-weighted means of the per-epoch statistics on
        reconfiguration runs).
    epochs:
        Per-epoch accounting of a membership-reconfiguration run (one dict
        per epoch: n, b, rebound system, re-optimisation policy, operations,
        availability, empirical load); ``None`` on fixed-membership runs.
    """

    engine: str
    system: str
    n: int
    b: int
    scenario: str
    strategy: str
    seed: int
    sampled: bool
    operations: int
    successful_reads: int
    successful_writes: int
    failed_operations: int
    availability: float
    consistent: bool
    consistency_violations: int
    stale_reads: int
    empirical_load: float
    busiest_server: str
    spec: dict | None = None
    latency_mean: float | None = None
    latency_p50: float | None = None
    latency_p90: float | None = None
    latency_p99: float | None = None
    duration: float | None = None
    timeouts: int | None = None
    events_processed: int | None = None
    epochs: list | None = None

    #: The key set every report's to_dict() emits, in order (schema contract).
    SCHEMA = (
        "engine", "system", "spec", "n", "b", "scenario", "strategy", "seed",
        "sampled", "operations", "successful_reads", "successful_writes",
        "failed_operations", "availability", "consistent",
        "consistency_violations", "stale_reads", "empirical_load",
        "busiest_server", "latency_mean", "latency_p50", "latency_p90",
        "latency_p99", "duration", "timeouts", "events_processed", "epochs",
    )

    def to_dict(self) -> dict:
        """Return the JSON-stable dict (always the full :data:`SCHEMA`)."""
        return {key: getattr(self, key) for key in self.SCHEMA}


def _scenario_label(scenario: object) -> str:
    if scenario is None:
        return "fault-free"
    if isinstance(scenario, str):
        return scenario
    name = getattr(scenario, "name", None)
    return name if name else type(scenario).__name__


def _strategy_label(strategy: object) -> str:
    if strategy is None:
        return "default"
    if isinstance(strategy, str):
        return strategy
    if isinstance(strategy, Strategy):
        return "explicit"
    return type(strategy).__name__


def _resolve_system(spec: WorkloadSpec) -> tuple[QuorumSystem, dict | None]:
    if isinstance(spec.system, QuorumSystem):
        if spec.params:
            raise InvalidParameterError(
                "WorkloadSpec.params only applies when system is a registry name"
            )
        system = spec.system
    else:
        system = build(spec.system, **spec.params)
    try:
        registry_spec = spec_of(system).to_dict()
    except InvalidParameterError:
        registry_spec = None
    return system, registry_spec


def _resolve_b(spec: WorkloadSpec, system: QuorumSystem) -> int:
    if spec.b is not None:
        if spec.b < 0:
            raise InvalidParameterError(f"b must be >= 0, got {spec.b}")
        return spec.b
    base = system.base if isinstance(system, ImplicitQuorumSystem) else system
    return base.masking_bound()


def _maybe_sampled(spec: WorkloadSpec, system: QuorumSystem) -> tuple[QuorumSystem, bool]:
    """Switch to sampled-quorum mode when the family cannot be enumerated."""
    if isinstance(system, ImplicitQuorumSystem):
        return system, True
    base_enumerable = system.enumerates_all_quorums
    if base_enumerable:
        try:
            if system.num_quorums() <= ENUMERATION_CEILING:
                return system, False
        except ComputationError:
            pass
    if not callable(getattr(system, "sample_quorum_mask", None)):
        raise ComputationError(
            f"{system.name} can neither enumerate its family nor sample from it"
        )
    implicit = ImplicitQuorumSystem(
        system, num_samples=spec.num_samples, seed=spec.seed
    )
    return implicit, True


def _resolve_scenario(
    spec: WorkloadSpec, system: QuorumSystem, b: int
) -> (
    WorkloadScenario
    | TimingScenario
    | FaultScenario
    | AdaptiveScenario
    | TraceScenario
    | ReconfigScenario
):
    if spec.membership is not None:
        # The __post_init__ guard guarantees scenario is None here.
        return ReconfigScenario(name="reconfig-custom", membership=spec.membership)
    scenario = spec.scenario
    if scenario is None:
        scenario = "fault-free"
    if isinstance(scenario, str):
        # A stream separate from the workload's own rng, so scenario
        # placement never perturbs the operation draws.
        rng = np.random.default_rng([spec.seed, 0x5CE7A210])
        return build_scenario(scenario, system.universe, b=b, rng=rng)
    if isinstance(
        scenario,
        (
            WorkloadScenario,
            TimingScenario,
            FaultScenario,
            AdaptiveScenario,
            TraceScenario,
            ReconfigScenario,
        ),
    ):
        return scenario
    raise InvalidParameterError(
        "scenario must be a catalogue name, WorkloadScenario, TimingScenario, "
        "AdaptiveScenario, TraceScenario, ReconfigScenario or FaultScenario, "
        f"got {type(scenario).__name__}"
    )


def _pick_engine(engine: str, scenario: object) -> str:
    if engine not in ENGINES:
        raise InvalidParameterError(
            f"unknown engine {engine!r}; choose one of {', '.join(ENGINES)}"
        )
    timed = isinstance(scenario, (TimingScenario, TraceScenario))
    if engine == "auto":
        return "event" if timed else "vectorized"
    if engine == "vectorized" and timed:
        raise InvalidParameterError(
            f"scenario {getattr(scenario, 'name', scenario)!r} carries timing "
            "(latency models, mid-run transitions); it needs engine='event'"
        )
    if engine == "event" and isinstance(scenario, AdaptiveScenario):
        raise InvalidParameterError(
            f"scenario {scenario.name!r} adapts between operation rounds, which "
            "only the vectorised engine's batch semantics express; use "
            "engine='auto' or 'vectorized'"
        )
    return engine


def _event_scenario(
    scenario: object,
) -> tuple[TimingScenario | FaultScenario, str | None]:
    """Translate an untimed scenario for the event engine.

    Single-phase :class:`WorkloadScenario` unwraps to its fault state (plus
    the matching replica behaviour); multi-phase schedules are fractions of
    an *operation batch*, which a clock-driven engine cannot honour, so they
    are rejected rather than silently misinterpreted.
    """
    if isinstance(scenario, (TimingScenario, FaultScenario)):
        return scenario, None
    if isinstance(scenario, WorkloadScenario):
        if scenario.num_phases != 1:
            raise InvalidParameterError(
                f"scenario {scenario.name!r} has {scenario.num_phases} "
                "operation-fraction phases; the event engine needs a timed "
                "scenario (TimingScenario) for mid-run transitions"
            )
        behaviour = (
            "equivocate"
            if scenario.byzantine_model == "equivocate"
            else "fabricate-timestamp"
        )
        return scenario.phases[0], behaviour
    raise InvalidParameterError(f"cannot run {type(scenario).__name__} on the event engine")


def _run_reconfig(
    spec: WorkloadSpec,
    system: QuorumSystem,
    b: int,
    scenario: ReconfigScenario,
    chosen: str,
    rng: np.random.Generator,
    *,
    sampled: bool,
    registry_spec: dict | None,
) -> WorkloadReport:
    """Route a reconfiguration scenario to the matching epoch driver.

    The per-epoch masking parameter is the spec's ``b`` clamped to each
    epoch's own bound (each epoch's bound directly when the spec left ``b``
    unset); ``report.b`` records the fixed-membership resolution and the
    ``epochs`` list carries the per-epoch values.  ``empirical_load`` is the
    worst per-epoch load, and the event engine's latency fields are
    operation-weighted means of the per-epoch statistics (the stitched
    timeline has no single latency distribution).
    """
    timeline = scenario.membership.build(system.universe)
    policy = scenario.membership.policy
    if chosen == "vectorized":
        result = run_reconfig_workload(
            system,
            timeline=timeline,
            b=spec.b,
            num_operations=spec.operations,
            policy=policy,
            strategy=spec.strategy,
            rng=rng,
            write_fraction=spec.write_fraction,
            max_attempts=spec.max_attempts,
            allow_overload=spec.allow_overload,
        )
        consistent = result.is_consistent
        violations = result.consistency_violations
        stale = result.stale_reads
        extras: dict = {}
    else:
        per_client = max(
            timeline.num_epochs, math.ceil(spec.operations / spec.clients)
        )
        result = run_reconfig_event_workload(
            system,
            timeline=timeline,
            b=spec.b,
            num_clients=spec.clients,
            operations_per_client=per_client,
            policy=policy,
            strategy=spec.strategy,
            rng=rng,
            write_fraction=spec.write_fraction,
            max_attempts=spec.max_attempts,
        )
        check = result.check
        consistent = check.ok
        violations = (
            check.fabricated_reads
            + check.write_order_violations
            + check.duplicate_write_timestamps
            + check.cross_epoch_reads
            + check.foreign_quorum_members
        )
        stale = check.stale_reads
        total = sum(o.result.operations for o in result.outcomes)

        def weighted(attr: str) -> float:
            return float(
                sum(
                    getattr(o.result, attr) * o.result.operations
                    for o in result.outcomes
                )
                / total
            )

        extras = {
            "latency_mean": weighted("latency_mean"),
            "latency_p50": weighted("latency_p50"),
            "latency_p90": weighted("latency_p90"),
            "latency_p99": weighted("latency_p99"),
            "duration": float(sum(o.result.duration for o in result.outcomes)),
            "timeouts": int(sum(o.result.timeouts for o in result.outcomes)),
            "events_processed": int(
                sum(o.result.events_processed for o in result.outcomes)
            ),
        }

    operations = sum(o.result.operations for o in result.outcomes)
    failed = sum(o.result.failed_operations for o in result.outcomes)
    return WorkloadReport(
        engine=chosen,
        system=system.name,
        n=system.n,
        b=b,
        scenario=scenario.name,
        strategy=_strategy_label(spec.strategy),
        seed=spec.seed,
        sampled=sampled,
        operations=operations,
        successful_reads=sum(o.result.successful_reads for o in result.outcomes),
        successful_writes=sum(o.result.successful_writes for o in result.outcomes),
        failed_operations=failed,
        availability=(operations - failed) / operations if operations else 0.0,
        consistent=bool(consistent),
        consistency_violations=int(violations),
        stale_reads=int(stale),
        empirical_load=max(o.result.empirical_load for o in result.outcomes),
        busiest_server="",
        spec=registry_spec,
        epochs=[o.to_dict() for o in result.outcomes],
        **extras,
    )


def run(spec: WorkloadSpec, *, engine: str = "auto") -> WorkloadReport:
    """Run one workload experiment and return its :class:`WorkloadReport`.

    ``engine="auto"`` routes timed scenarios (latency models, mid-run
    crash/recover) to the event-driven core and everything else to the
    vectorised engine; forcing ``"vectorized"`` on a timed scenario is an
    error, while forcing ``"event"`` on an untimed one runs it at zero
    latency.  On the event engine each client runs
    ``ceil(operations / clients)`` operations, so a non-divisible total is
    rounded up — ``report.operations`` always records the executed count
    (:func:`repro.analysis.empirical.engine_agreement` pre-rounds specs so
    both engines execute identical totals).  Universes whose quorum family
    exceeds the enumeration ceiling
    are switched to sampled-quorum mode automatically (``report.sampled``
    records it), which is what lets
    ``python -m repro run --construction mgrid --n 4096 --scenario crash``
    complete without materialising the ``> 10^6``-quorum family.
    """
    if not isinstance(spec, WorkloadSpec):
        raise InvalidParameterError(
            f"run() takes a WorkloadSpec, got {type(spec).__name__}"
        )
    system, registry_spec = _resolve_system(spec)
    b = _resolve_b(spec, system)
    system, sampled = _maybe_sampled(spec, system)
    scenario = _resolve_scenario(spec, system, b)
    chosen = _pick_engine(engine, scenario)
    rng = np.random.default_rng(spec.seed)

    if isinstance(scenario, ReconfigScenario):
        return _run_reconfig(
            spec, system, b, scenario, chosen, rng,
            sampled=sampled, registry_spec=registry_spec,
        )
    if isinstance(scenario, AdaptiveScenario):
        result = run_adversarial_workload(
            system,
            b=b,
            policy=scenario.policy,
            num_operations=spec.operations,
            rounds=scenario.rounds,
            strategy=spec.strategy,
            rng=rng,
            write_fraction=spec.write_fraction,
            max_attempts=spec.max_attempts,
            allow_overload=spec.allow_overload,
            byzantine_model=scenario.byzantine_model,
        )
        extras: dict = {}
    elif isinstance(scenario, TraceScenario):
        result = run_trace_workload(
            system,
            b=b,
            trace=scenario,
            num_operations=spec.operations,
            num_clients=spec.clients,
            write_fraction=spec.write_fraction,
            strategy=spec.strategy,
            rng=rng,
            max_attempts=spec.max_attempts,
            allow_overload=spec.allow_overload,
        )
        extras = {
            "latency_mean": float(result.latency_mean),
            "latency_p50": float(result.latency_p50),
            "latency_p90": float(result.latency_p90),
            "latency_p99": float(result.latency_p99),
            "duration": float(result.duration),
            "timeouts": int(result.timeouts),
            "events_processed": int(result.events_processed),
        }
    elif chosen == "vectorized":
        if isinstance(scenario, FaultScenario):
            scenario = WorkloadScenario.from_fault_scenario(scenario)
        result = run_workload(
            system,
            b=b,
            num_operations=spec.operations,
            scenario=scenario,
            strategy=spec.strategy,
            rng=rng,
            write_fraction=spec.write_fraction,
            max_attempts=spec.max_attempts,
            allow_overload=spec.allow_overload,
        )
        extras: dict = {}
    else:
        event_scenario, behaviour = _event_scenario(scenario)
        per_client = max(1, math.ceil(spec.operations / spec.clients))
        result = run_event_workload(
            system,
            b=b,
            num_clients=spec.clients,
            operations_per_client=per_client,
            scenario=event_scenario,
            byzantine_behaviour=behaviour,
            write_fraction=spec.write_fraction,
            max_attempts=spec.max_attempts,
            strategy=spec.strategy,
            rng=rng,
            allow_overload=spec.allow_overload,
        )
        extras = {
            "latency_mean": float(result.latency_mean),
            "latency_p50": float(result.latency_p50),
            "latency_p90": float(result.latency_p90),
            "latency_p99": float(result.latency_p99),
            "duration": float(result.duration),
            "timeouts": int(result.timeouts),
            "events_processed": int(result.events_processed),
        }

    busiest = ""
    if result.per_server_load and result.empirical_load > 0.0:
        busiest = repr(max(result.per_server_load, key=result.per_server_load.get))
    return WorkloadReport(
        engine=chosen,
        system=system.name,
        n=system.n,
        b=b,
        scenario=_scenario_label(spec.scenario),
        strategy=_strategy_label(spec.strategy),
        seed=spec.seed,
        sampled=sampled,
        operations=int(result.operations),
        successful_reads=int(result.successful_reads),
        successful_writes=int(result.successful_writes),
        failed_operations=int(result.failed_operations),
        availability=float(result.availability),
        consistent=bool(result.is_consistent),
        consistency_violations=int(result.consistency_violations),
        stale_reads=int(result.stale_reads),
        empirical_load=float(result.empirical_load),
        busiest_server=busiest,
        spec=registry_spec,
        **extras,
    )
